"""Scrape manager: pulls exporter metrics into the TSDB.

Models Prometheus's scrape layer (paper Fig. 1: *"A hot TSDB instance
will scrape these compute nodes at a configured interval"*):

* **targets** are HTTP apps (the in-process :class:`~repro.common.
  httpx.App` of an exporter) with attached identity labels
  (``instance``, ``job``) and optional basic-auth credentials;
* **target groups** carry extra labels — this is how Jean-Zay's node
  classes are told apart so that the right Eq. (1) rule variant
  applies (§III.A: *"grouping them in different scrape target groups
  and defining the recording rules accordingly"*);
* each scrape GETs ``/metrics``, parses the exposition text and
  appends every sample at the scrape timestamp;
* scrape health is recorded as the synthetic ``up`` series, exactly
  like Prometheus, and per-scrape duration/sample counts are kept for
  the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.auth import make_basic_auth_header
from repro.common.errors import ScrapeError
from repro.common.httpx import App, Request
from repro.tsdb import exposition
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB


@dataclass
class ScrapeTarget:
    """One scrape endpoint plus its identity labels."""

    app: App
    instance: str
    job: str = "ceems"
    group_labels: dict[str, str] = field(default_factory=dict)
    metrics_path: str = "/metrics"
    username: str = ""
    password: str = ""

    #: health bookkeeping
    last_scrape_ok: bool = False
    last_scrape_duration: float = 0.0
    last_scrape_samples: int = 0
    scrapes_total: int = 0
    scrape_failures_total: int = 0
    #: Series seen in the previous successful scrape; series absent
    #: from the next scrape get a staleness marker.
    _previous_series: set = field(default_factory=set, repr=False)

    def identity_labels(self) -> dict[str, str]:
        labels = {"instance": self.instance, "job": self.job}
        labels.update(self.group_labels)
        return labels


@dataclass
class ScrapeConfig:
    """Scrape loop settings."""

    interval: float = 15.0
    timeout: float = 10.0
    #: Run storage retention every this many scrape cycles.
    retention_every: int = 40


class ScrapeManager:
    """Scrapes a set of targets into one TSDB."""

    def __init__(self, storage: TSDB, config: ScrapeConfig | None = None, telemetry=None) -> None:
        self.storage = storage
        self.config = config or ScrapeConfig()
        self.targets: list[ScrapeTarget] = []
        # (job, instance) identity index: registering N targets was a
        # quadratic scan (felt at Jean-Zay scale, ~1400 nodes).
        self._target_index: set[tuple[str, str]] = set()
        self._cycles = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry`; when set,
        #: every scrape cycle roots a ``scrape.cycle`` trace.
        self.telemetry = telemetry
        self.samples_appended_total = 0
        self.cycles_total = 0

    def add_target(self, target: ScrapeTarget) -> None:
        key = (target.job, target.instance)
        if key in self._target_index:
            raise ScrapeError(f"duplicate target {target.job}/{target.instance}")
        self._target_index.add(key)
        self.targets.append(target)

    def add_targets(self, targets: list[ScrapeTarget]) -> None:
        for t in targets:
            self.add_target(t)

    # -- scraping ---------------------------------------------------------
    def scrape_target(self, target: ScrapeTarget, now: float) -> int:
        """Scrape one target at logical time ``now``.

        Returns the number of samples ingested (not counting ``up``).
        Failures are recorded as ``up == 0`` rather than raised, so one
        bad node never stalls the cluster scrape — Prometheus
        behaviour the Jean-Zay scale bench depends on.
        """
        target.scrapes_total += 1
        identity = target.identity_labels()
        started = time.perf_counter()
        samples = 0
        try:
            headers = {}
            if target.username:
                headers["authorization"] = make_basic_auth_header(target.username, target.password)
            response = target.app.handle(Request.from_url("GET", target.metrics_path, headers=headers))
            if response.status != 200:
                raise ScrapeError(f"scrape returned HTTP {response.status}")
            families = exposition.parse(response.body.decode())
            seen: set[Labels] = set()
            for family in families:
                for point in family.points:
                    labels = exposition.to_labels(family.name, point, identity)
                    self.storage.append(labels, now, point.value)
                    seen.add(labels)
                    samples += 1
            # Staleness markers: series this target exposed last time
            # but not now have disappeared (e.g. a finished job's
            # cgroup) — mark them stale so instant queries stop
            # returning zombie values during the lookback window.
            for labels in target._previous_series - seen:
                self.storage.append(labels, now, float("nan"))
            target._previous_series = seen
            target.last_scrape_ok = True
        except ScrapeError:
            target.last_scrape_ok = False
            target.scrape_failures_total += 1
        target.last_scrape_duration = time.perf_counter() - started
        target.last_scrape_samples = samples
        up_labels = Labels({"__name__": "up", **identity})
        self.storage.append(up_labels, now, 1.0 if target.last_scrape_ok else 0.0)
        return samples

    def scrape_all(self, now: float) -> int:
        """One scrape cycle over every target; applies retention."""
        if self.telemetry is not None:
            with self.telemetry.span("scrape.cycle", targets=len(self.targets)) as span:
                total = self._scrape_all(now)
                span.attrs["samples"] = total
                return total
        return self._scrape_all(now)

    def _scrape_all(self, now: float) -> int:
        total = sum(self.scrape_target(target, now) for target in self.targets)
        self._cycles += 1
        self.cycles_total += 1
        self.samples_appended_total += total
        if self.config.retention_every and self._cycles % self.config.retention_every == 0:
            self.storage.apply_retention(now)
        return total

    def register_timer(self, clock) -> None:
        """Drive the scrape loop from a :class:`SimClock`."""
        clock.every(self.config.interval, lambda now: self.scrape_all(now))

    def register_metrics(self, registry) -> None:
        """Expose scrape-loop totals on a component's registry."""
        registry.gauge_func(
            "ceems_scrape_samples_appended_total",
            lambda: float(self.samples_appended_total),
            help="Samples appended by the scrape loop (excluding up).",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_cycles_total",
            lambda: float(self.cycles_total),
            help="Completed scrape cycles.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_targets",
            lambda: float(len(self.targets)),
            help="Registered scrape targets.",
        )
        registry.gauge_func(
            "ceems_scrape_targets_healthy",
            lambda: float(self.healthy_targets()),
            help="Targets whose last scrape succeeded.",
        )

    # -- health ------------------------------------------------------------
    def healthy_targets(self) -> int:
        return sum(1 for t in self.targets if t.last_scrape_ok)
