"""Scrape manager: pulls exporter metrics into the TSDB.

Models Prometheus's scrape layer (paper Fig. 1: *"A hot TSDB instance
will scrape these compute nodes at a configured interval"*):

* **targets** are HTTP apps (the in-process :class:`~repro.common.
  httpx.App` of an exporter) with attached identity labels
  (``instance``, ``job``) and optional basic-auth credentials;
* **target groups** carry extra labels — this is how Jean-Zay's node
  classes are told apart so that the right Eq. (1) rule variant
  applies (§III.A: *"grouping them in different scrape target groups
  and defining the recording rules accordingly"*);
* each scrape GETs ``/metrics``, parses the exposition text and
  appends every sample at the scrape timestamp;
* scrape health is recorded as the synthetic ``up`` series, exactly
  like Prometheus, and per-scrape duration/sample counts are kept for
  the benchmarks.

Scrape fast lane
----------------
At Jean-Zay scale (~1700 targets) re-parsing every label set and
re-hashing every ``Labels`` key each cycle dominates the duty cycle,
so the manager mirrors Prometheus's ingest optimisations:

* a per-target :class:`ScrapeCache` keyed on each sample line's raw
  ``name{labels}`` text maps straight to an interned ``Labels`` and a
  TSDB series ref — a repeat scrape of unchanged structure skips
  label parsing, validation and sorting entirely (Prometheus
  ``scrapeCache``).  Any text change is a cache miss (per-line
  invalidation); lines that stop appearing are evicted by generation.
* samples are appended by ref through :meth:`TSDB.append_refs`; refs
  that died since the last cycle (retention, ``delete_series``) are
  re-resolved through their labels, exactly like Prometheus re-lodges
  a head ref miss.
* each cycle is split into a **fetch** phase (HTTP + decode + parse +
  cache resolution, safe to run on a worker pool because it never
  touches storage) and an **apply** phase that commits per-target
  batches to the TSDB in registration order — results are identical
  for any worker count, see DESIGN.md.

The cache-disabled path (``ScrapeConfig(use_cache=False)``) keeps the
original parse-everything implementation and is the differential
reference the fast lane is tested against bit-for-bit.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.auth import make_basic_auth_header
from repro.common.errors import ScrapeError
from repro.common.httpx import App, Request
from repro.obs import prof
from repro.obs.registry import Histogram
from repro.tsdb import exposition
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB

_STALE = float("nan")


@dataclass(slots=True)
class _CacheEntry:
    """Resolved identity of one raw series-text prefix."""

    labels: Labels
    #: TSDB series ref; 0 until the apply phase first resolves it
    #: (workers must not touch storage).
    ref: int
    last_gen: int


class ScrapeCache:
    """Per-target sample-line cache (Prometheus ``scrapeCache``).

    Keys are the raw ``name{labels}`` prefix of each sample line, so
    any byte-level change in how a target renders a series is simply
    a miss that re-parses and re-validates — the cache can serve
    stale *work*, never stale *identity*.  ``gen`` advances once per
    parsed scrape; entries untouched by the latest generation are
    evicted so a disappeared series cannot pin its ``Labels`` forever.
    """

    __slots__ = ("entries", "comments", "gen", "hits", "misses", "evictions")

    #: Cap on memoised comment lines per target; cleared wholesale at
    #: the cap so a pathological target cannot grow it without bound.
    COMMENTS_MAX = 4096

    def __init__(self) -> None:
        self.entries: dict[str, _CacheEntry] = {}
        #: Comment lines that already passed ``comment_parts``
        #: validation — HELP/TYPE headers are byte-identical every
        #: scrape, so re-validating them each cycle is pure waste.
        #: Only *accepted* lines enter the set; a bad TYPE line is
        #: never cached and re-raises on every scrape.
        self.comments: set[str] = set()
        self.gen = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def evict_stale(self) -> int:
        """Drop entries not seen in the current generation."""
        gen = self.gen
        doomed = [key for key, entry in self.entries.items() if entry.last_gen != gen]
        for key in doomed:
            del self.entries[key]
        self.evictions += len(doomed)
        return len(doomed)


@dataclass
class ScrapeTarget:
    """One scrape endpoint plus its identity labels."""

    app: App
    instance: str
    job: str = "ceems"
    group_labels: dict[str, str] = field(default_factory=dict)
    metrics_path: str = "/metrics"
    username: str = ""
    password: str = ""

    #: health bookkeeping
    last_scrape_ok: bool = False
    last_scrape_duration: float = 0.0
    last_scrape_samples: int = 0
    scrapes_total: int = 0
    scrape_failures_total: int = 0
    #: Series seen in the previous successful scrape; series absent
    #: from the next scrape get a staleness marker.  The reference
    #: (cache-disabled) path tracks ``Labels``; the fast lane tracks
    #: ``ref -> Labels`` so the staleness pass stays on refs.
    _previous_series: set = field(default_factory=set, repr=False)
    _previous_refs: dict = field(default_factory=dict, repr=False)
    _cache: ScrapeCache = field(default_factory=ScrapeCache, repr=False)
    _up_labels: Labels | None = field(default=None, repr=False)

    def identity_labels(self) -> dict[str, str]:
        labels = {"instance": self.instance, "job": self.job}
        labels.update(self.group_labels)
        return labels

    def up_labels(self) -> Labels:
        if self._up_labels is None:
            self._up_labels = Labels({"__name__": "up", **self.identity_labels()})
        return self._up_labels


@dataclass
class ScrapeConfig:
    """Scrape loop settings."""

    interval: float = 15.0
    timeout: float = 10.0
    #: Run storage retention every this many scrape cycles.
    retention_every: int = 40
    #: Fetch-phase worker threads; <=1 scrapes serially.  Apply stays
    #: single-threaded and ordered either way.
    workers: int = 0
    #: Disable to force the reference parse-everything path (the
    #: differential baseline; also what ``--no-scrape-cache`` sets).
    use_cache: bool = True


@dataclass
class _ScrapeResult:
    """Everything a fetch produced; applied to storage later."""

    target: ScrapeTarget
    ok: bool = False
    error: str = ""
    duration: float = 0.0
    #: fast lane: line-ordered (cache entry, value) pairs
    ref_batch: list | None = None
    #: reference path: family-ordered (Labels, value) pairs
    labels_batch: list | None = None
    #: exemplar-carrying lines, in line order: ``(entry, Exemplar)``
    #: on the fast lane, ``(Labels, Exemplar)`` on the reference path.
    #: Kept separate from the sample batches so the sample hot loops
    #: stay two-tuples.
    exemplars: list | None = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class ScrapeManager:
    """Scrapes a set of targets into one TSDB."""

    def __init__(self, storage: TSDB, config: ScrapeConfig | None = None, telemetry=None) -> None:
        self.storage = storage
        self.config = config or ScrapeConfig()
        self.targets: list[ScrapeTarget] = []
        # (job, instance) identity index: registering N targets was a
        # quadratic scan (felt at Jean-Zay scale, ~1400 nodes).
        self._target_index: set[tuple[str, str]] = set()
        self._cycles = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry`; when set,
        #: every scrape cycle roots a ``scrape.cycle`` trace.
        self.telemetry = telemetry
        self.samples_appended_total = 0
        self.cycles_total = 0
        self.cache_hits_total = 0
        self.cache_misses_total = 0
        self.cache_evictions_total = 0
        self.cycle_seconds = Histogram(
            "ceems_scrape_cycle_seconds",
            help="Wall seconds per full scrape cycle (fetch + apply).",
        )

    def add_target(self, target: ScrapeTarget) -> None:
        key = (target.job, target.instance)
        if key in self._target_index:
            raise ScrapeError(f"duplicate target {target.job}/{target.instance}")
        self._target_index.add(key)
        self.targets.append(target)

    def add_targets(self, targets: list[ScrapeTarget]) -> None:
        for t in targets:
            self.add_target(t)

    # -- fetch phase (storage-free; may run on worker threads) -----------
    def _parse_cached(
        self, target: ScrapeTarget, text: str
    ) -> tuple[list, list, int, int]:
        """Parse exposition text through the target's scrape cache.

        Returns ``(batch, exemplars, hits, misses)`` with ``batch``
        holding line-ordered ``(entry, value)`` pairs and
        ``exemplars`` line-ordered ``(entry, Exemplar)`` pairs.  Error
        behaviour is bit-identical to :func:`exposition.parse`:
        comment validation, every cache miss and every exemplar suffix
        go through the same shared helpers, and the hit path re-checks
        value/timestamp tokens the same way — a payload is accepted or
        rejected identically on both paths.
        """
        cache = target._cache
        cache.gen += 1
        gen = cache.gen
        entries = cache.entries
        identity = target.identity_labels()
        parse_value = exposition._parse_value
        entries_get = entries.get
        comments = cache.comments
        batch: list = []
        append = batch.append
        exemplars: list = []
        hits = 0
        misses = 0
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line[0] == "#":
                if line not in comments:
                    exposition.comment_parts(line, lineno)
                    if len(comments) >= ScrapeCache.COMMENTS_MAX:
                        comments.clear()
                    comments.add(line)
                continue
            # Carve off an exemplar suffix first (the `'#' in line`
            # guard keeps exemplar-free lines — the vast majority — on
            # the original C-speed path).  This must happen before the
            # rfind below: an exemplar's own label set ends in '}', so
            # on exemplar-carrying lines the *last* '}' is no longer
            # the series' closing brace.
            ex_text = None
            full_line = line
            if "#" in line:
                line, ex_text = exposition.split_exemplar(line)
            # Split the raw `name{labels}` prefix (the cache key) from
            # the value/timestamp tail.  rfind is sound: value and
            # timestamp tokens of any *valid* line cannot contain '}',
            # so the last '}' is the closing brace; lines without one
            # are bare `name value [ts]`; anything structurally odd
            # falls through to the reference parser and fails
            # identically (keys only enter the cache after a full
            # reference parse succeeds).
            end = line.rfind("}")
            if end != -1:
                key = line[: end + 1]
                tail = line[end + 1 :]
            else:
                parts = line.split(None, 1)
                key = parts[0]
                tail = parts[1] if len(parts) > 1 else ""
            entry = entries_get(key)
            if entry is not None:
                tokens = tail.split()
                if tokens:
                    token = tokens[0]
                    try:
                        # float() accepts the full value grammar
                        # (NaN/+Inf/-Inf included); _parse_value only
                        # differs in the error it raises, so fall back
                        # to it on failure for identical rejection.
                        value = float(token)
                    except ValueError:
                        value = parse_value(token, lineno)
                    if len(tokens) > 1:
                        # scrape appends at the cycle timestamp, but a
                        # malformed timestamp must still reject the
                        # payload (parity with parse_sample_line's
                        # int()).
                        int(tokens[1])
                    # Exemplar last, mirroring parse_sample_line's
                    # validation order on doubly-malformed lines.
                    if ex_text is not None:
                        exemplars.append(
                            (entry, exposition.parse_exemplar(ex_text, lineno))
                        )
                    entry.last_gen = gen
                    append((entry, value))
                    hits += 1
                    continue
            # miss (or structurally odd line): reference parse + full
            # Labels validation before anything enters the cache.  The
            # *full* line goes through, so the exemplar suffix is
            # parsed by exactly the reference helper too.
            name, labels, value, _ts, exemplar = exposition.parse_sample_line(
                full_line, lineno
            )
            point = exposition.MetricPoint(labels=labels, value=value)
            full = exposition.to_labels(name, point, identity)
            misses += 1
            entry = _CacheEntry(labels=full, ref=0, last_gen=gen)
            entries[key] = entry
            if exemplar is not None:
                exemplars.append((entry, exemplar))
            append((entry, value))
        cache.hits += hits
        cache.misses += misses
        return batch, exemplars, hits, misses

    def _fetch(self, target: ScrapeTarget, now: float) -> _ScrapeResult:
        """HTTP + decode + parse + cache resolution for one target.

        Touches only the target and its private cache — never the
        TSDB — so any number of fetches may run concurrently while
        the apply phase stays single-threaded and deterministic.
        """
        target.scrapes_total += 1
        started = time.perf_counter()
        result = _ScrapeResult(target=target)
        try:
            headers = {}
            if target.username:
                headers["authorization"] = make_basic_auth_header(target.username, target.password)
            response = target.app.handle(Request.from_url("GET", target.metrics_path, headers=headers))
            if response.status != 200:
                raise ScrapeError(f"scrape returned HTTP {response.status}")
            body = response.body.decode()
            with prof.profile("scrape.parse"):
                if self.config.use_cache:
                    batch, exemplars, hits, misses = self._parse_cached(target, body)
                    result.ref_batch = batch
                    result.exemplars = exemplars
                    result.hits = hits
                    result.misses = misses
                    result.evictions = target._cache.evict_stale()
                else:
                    identity = target.identity_labels()
                    labels_batch: list = []
                    exemplars = []
                    for family in exposition.parse(body):
                        for point in family.points:
                            labels = exposition.to_labels(family.name, point, identity)
                            labels_batch.append((labels, point.value))
                            if point.exemplar is not None:
                                exemplars.append((labels, point.exemplar))
                    result.labels_batch = labels_batch
                    result.exemplars = exemplars
            result.ok = True
        except Exception as exc:  # noqa: BLE001 — one bad node must
            # never stall the cluster scrape: a non-UTF-8 body, a bad
            # Labels name or a collector crash all count as a failed
            # scrape (``up == 0``), like ScrapeError always did.
            result.ok = False
            result.error = repr(exc)
        result.duration = time.perf_counter() - started
        return result

    # -- apply phase (single-threaded, registration order) ---------------
    def _apply(self, result: _ScrapeResult, now: float) -> int:
        """Commit one fetch result: samples, staleness markers, ``up``."""
        target = result.target
        storage = self.storage
        samples = 0
        if result.ok:
            if result.ref_batch is not None:
                samples = self._apply_refs(
                    target, result.ref_batch, now, result.exemplars
                )
            else:
                samples = self._apply_labels(
                    target, result.labels_batch, now, result.exemplars
                )
            target.last_scrape_ok = True
        else:
            target.scrape_failures_total += 1
            target.last_scrape_ok = False
            # Prometheus writes staleness markers for every series of
            # a failed target so instant queries stop returning zombie
            # values the moment the node dies, instead of after the
            # lookback window.
            for labels in target._previous_series:
                storage.append(labels, now, _STALE)
            target._previous_series = set()
            for ref, labels in target._previous_refs.items():
                if storage.resolve_ref(ref) is not None:
                    storage.append_ref(ref, now, _STALE)
                else:
                    storage.append(labels, now, _STALE)
            target._previous_refs = {}
        target.last_scrape_duration = result.duration
        target.last_scrape_samples = samples
        storage.append(target.up_labels(), now, 1.0 if target.last_scrape_ok else 0.0)
        self.cache_hits_total += result.hits
        self.cache_misses_total += result.misses
        self.cache_evictions_total += result.evictions
        return samples

    def _apply_refs(
        self, target: ScrapeTarget, batch: list, now: float, exemplars: list | None = None
    ) -> int:
        """Fast lane: batched append by ref + ref-set staleness pass."""
        storage = self.storage
        get_ref = storage.get_ref
        pairs: list[tuple[int, float]] = []
        pairs_append = pairs.append
        for entry, value in batch:
            if entry.ref == 0:
                entry.ref = get_ref(entry.labels)
            pairs_append((entry.ref, value))
        samples, dead = storage.append_refs(now, pairs)
        if dead:
            # Refs that died since the last cycle (retention or
            # delete_series dropped the series): re-resolve through
            # labels — recreating the series exactly like the
            # reference path's plain append — and heal the cache
            # entries so the next cycle is back on the fast path.
            dead_refs = {ref for ref, _ in dead}
            for i, (entry, value) in enumerate(batch):
                if pairs[i][0] in dead_refs:
                    entry.ref = get_ref(entry.labels)
                    storage.append_ref(entry.ref, now, value)
                    samples += 1
        if exemplars:
            # After the sample loop: dead refs have been healed above,
            # so entry.ref is always live here and the exemplar lands
            # on the same series the sample did.
            for entry, exemplar in exemplars:
                storage.append_exemplar_ref(entry.ref, entry.labels, exemplar, now)
        # Staleness markers: series this target exposed last time but
        # not now have disappeared (e.g. a finished job's cgroup) —
        # mark them stale so instant queries stop returning zombie
        # values during the lookback window.
        new_prev: dict[int, Labels] = {}
        for entry, _value in batch:
            new_prev[entry.ref] = entry.labels
        prev = target._previous_refs
        if prev:
            seen_labels = None
            for ref, labels in prev.items():
                if ref in new_prev:
                    continue
                series = storage.resolve_ref(ref)
                if series is not None:
                    storage.append_ref(ref, now, _STALE)
                    continue
                # The prev ref died; its labels may have been
                # re-scraped this cycle under a fresh ref, in which
                # case the series is live, not stale (the reference
                # path compares Labels sets and would skip it).
                if seen_labels is None:
                    seen_labels = set(new_prev.values())
                if labels not in seen_labels:
                    storage.append(labels, now, _STALE)
        target._previous_refs = new_prev
        return samples

    def _apply_labels(
        self, target: ScrapeTarget, batch: list, now: float, exemplars: list | None = None
    ) -> int:
        """Reference path: per-sample append by Labels (the baseline)."""
        storage = self.storage
        seen: set[Labels] = set()
        samples = 0
        for labels, value in batch:
            storage.append(labels, now, value)
            seen.add(labels)
            samples += 1
        if exemplars:
            for labels, exemplar in exemplars:
                storage.append_exemplar(labels, exemplar, now)
        for labels in target._previous_series - seen:
            storage.append(labels, now, _STALE)
        target._previous_series = seen
        return samples

    # -- scraping ---------------------------------------------------------
    def scrape_target(self, target: ScrapeTarget, now: float) -> int:
        """Scrape one target at logical time ``now``.

        Returns the number of samples ingested (not counting ``up``).
        Failures are recorded as ``up == 0`` rather than raised, so one
        bad node never stalls the cluster scrape — Prometheus
        behaviour the Jean-Zay scale bench depends on.
        """
        return self._apply(self._fetch(target, now), now)

    def scrape_all(self, now: float) -> int:
        """One scrape cycle over every target; applies retention."""
        if self.telemetry is not None:
            with self.telemetry.span("scrape.cycle", targets=len(self.targets)) as span:
                total = self._scrape_all(now)
                span.attrs["samples"] = total
                return total
        return self._scrape_all(now)

    def _scrape_all(self, now: float) -> int:
        started = time.perf_counter()
        workers = self.config.workers
        if workers > 1 and len(self.targets) > 1:
            # Workers only fetch (HTTP + parse + cache resolution);
            # map() yields results in submission order, and the apply
            # loop below commits them to storage one at a time — so
            # the TSDB sees the exact same operations in the exact
            # same order as a serial cycle, for any worker count.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(lambda t: self._fetch(t, now), self.targets))
        else:
            results = [self._fetch(target, now) for target in self.targets]
        with prof.profile("scrape.append"):
            total = sum(self._apply(result, now) for result in results)
        self._cycles += 1
        self.cycles_total += 1
        self.samples_appended_total += total
        if self.config.retention_every and self._cycles % self.config.retention_every == 0:
            self.storage.apply_retention(now)
        self.cycle_seconds.observe(time.perf_counter() - started)
        return total

    def register_timer(self, clock) -> None:
        """Drive the scrape loop from a :class:`SimClock`."""
        clock.every(self.config.interval, lambda now: self.scrape_all(now))

    def register_metrics(self, registry) -> None:
        """Expose scrape-loop totals on a component's registry."""
        registry.gauge_func(
            "ceems_scrape_samples_appended_total",
            lambda: float(self.samples_appended_total),
            help="Samples appended by the scrape loop (excluding up).",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_cycles_total",
            lambda: float(self.cycles_total),
            help="Completed scrape cycles.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_targets",
            lambda: float(len(self.targets)),
            help="Registered scrape targets.",
        )
        registry.gauge_func(
            "ceems_scrape_targets_healthy",
            lambda: float(self.healthy_targets()),
            help="Targets whose last scrape succeeded.",
        )
        registry.gauge_func(
            "ceems_scrape_cache_hits_total",
            lambda: float(self.cache_hits_total),
            help="Sample lines resolved from the per-target scrape cache.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_cache_misses_total",
            lambda: float(self.cache_misses_total),
            help="Sample lines that required a full parse + Labels build.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_scrape_cache_evictions_total",
            lambda: float(self.cache_evictions_total),
            help="Scrape cache entries evicted after their series disappeared.",
            type="counter",
        )
        exemplars = getattr(self.storage, "exemplars", None)
        if exemplars is not None:
            registry.gauge_func(
                "ceems_exemplars_appended_total",
                lambda: float(exemplars.appended_total),
                help="Exemplars accepted into the circular exemplar storage.",
                type="counter",
            )
            registry.gauge_func(
                "ceems_exemplars_dropped_total",
                lambda: float(exemplars.dropped_total),
                help="Exemplars dropped (duplicates or capacity eviction).",
                type="counter",
            )
            registry.gauge_func(
                "ceems_exemplar_storage_exemplars",
                lambda: float(len(exemplars)),
                help="Live exemplars currently held by the storage ring.",
            )
        registry.collector(self.cycle_seconds.collect)

    # -- health ------------------------------------------------------------
    def healthy_targets(self) -> int:
        return sum(1 for t in self.targets if t.last_scrape_ok)
