"""TSDB data model: label sets, samples and label matchers.

Follows the Prometheus data model: a *series* is identified by a set
of label name/value pairs, with the metric name stored in the
reserved ``__name__`` label.  Matchers select series by exact or
regular-expression label comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping

METRIC_NAME_LABEL = "__name__"

_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Labels:
    """An immutable, hashable label set.

    Construction validates label names (Prometheus rules); values may
    be any string.  Instances are interned-friendly: equality and hash
    are value-based, and the canonical ordering is by label name.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, str] | None = None, **kwargs: str) -> None:
        merged: dict[str, str] = dict(mapping or {})
        merged.update(kwargs)
        for name, value in merged.items():
            pattern = _METRIC_NAME_RE if name == METRIC_NAME_LABEL else _LABEL_NAME_RE
            checked = merged[name] if name == METRIC_NAME_LABEL else name
            if not pattern.match(checked):
                raise ValueError(f"invalid label {'value' if name == METRIC_NAME_LABEL else 'name'}: {checked!r}")
            if not isinstance(value, str):
                raise ValueError(f"label value for {name!r} must be a string, got {type(value).__name__}")
        self._items: tuple[tuple[str, str], ...] = tuple(sorted(merged.items()))
        self._hash = hash(self._items)

    @classmethod
    def from_sorted_items(cls, items: Iterable[tuple[str, str]]) -> "Labels":
        """Trusted constructor: items must already be sorted and valid.

        Derivations of an existing ``Labels`` (``drop``/``keep``) keep
        both invariants, so re-validating and re-sorting on those hot
        paths (PromQL grouping, staleness bookkeeping) is pure waste.
        Never feed this parser output — the validating constructor is
        what rejects bad metric/label names.
        """
        self = cls.__new__(cls)
        self._items = tuple(items)
        self._hash = hash(self._items)
        return self

    # -- accessors ------------------------------------------------------
    @property
    def metric_name(self) -> str:
        return self.get(METRIC_NAME_LABEL, "")

    def get(self, name: str, default: str = "") -> str:
        for key, value in self._items:
            if key == name:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self._items)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def as_dict(self) -> dict[str, str]:
        return dict(self._items)

    # -- derivation -----------------------------------------------------
    def with_name(self, metric_name: str) -> "Labels":
        d = self.as_dict()
        d[METRIC_NAME_LABEL] = metric_name
        return Labels(d)

    def without_name(self) -> "Labels":
        return self.drop(METRIC_NAME_LABEL)

    def drop(self, *names: str) -> "Labels":
        return Labels.from_sorted_items(
            (k, v) for k, v in self._items if k not in names
        )

    def keep(self, names: Iterable[str]) -> "Labels":
        wanted = set(names)
        return Labels.from_sorted_items(
            (k, v) for k, v in self._items if k in wanted
        )

    def merge(self, other: "Labels | Mapping[str, str]") -> "Labels":
        d = self.as_dict()
        d.update(other.as_dict() if isinstance(other, Labels) else other)
        return Labels(d)

    # -- value semantics --------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Labels) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"Labels({inner})"

    def __str__(self) -> str:
        name = self.metric_name
        rest = ", ".join(f'{k}="{v}"' for k, v in self._items if k != METRIC_NAME_LABEL)
        return f"{name}{{{rest}}}" if rest else (name or "{}")


EMPTY_LABELS = Labels()


@dataclass(frozen=True, slots=True)
class Sample:
    """One (timestamp, value) point.  Timestamps are UNIX seconds."""

    timestamp: float
    value: float


class MatchOp(Enum):
    """Label matcher operators, as in PromQL selectors."""

    EQ = "="
    NEQ = "!="
    RE = "=~"
    NRE = "!~"


@dataclass(frozen=True)
class Matcher:
    """One label matcher (``name <op> value``)."""

    name: str
    op: MatchOp
    value: str

    def __post_init__(self) -> None:
        if self.op in (MatchOp.RE, MatchOp.NRE):
            # Prometheus fully anchors regex matchers.
            object.__setattr__(self, "_regex", re.compile(f"^(?:{self.value})$"))
        else:
            object.__setattr__(self, "_regex", None)

    def matches(self, labels: Labels) -> bool:
        actual = labels.get(self.name, "")
        if self.op is MatchOp.EQ:
            return actual == self.value
        if self.op is MatchOp.NEQ:
            return actual != self.value
        regex: re.Pattern[str] = self._regex  # type: ignore[attr-defined]
        if self.op is MatchOp.RE:
            return regex.match(actual) is not None
        return regex.match(actual) is None

    @classmethod
    def eq(cls, name: str, value: str) -> "Matcher":
        return cls(name, MatchOp.EQ, value)

    @classmethod
    def re(cls, name: str, value: str) -> "Matcher":
        return cls(name, MatchOp.RE, value)

    @classmethod
    def name_eq(cls, metric_name: str) -> "Matcher":
        return cls(METRIC_NAME_LABEL, MatchOp.EQ, metric_name)

    def __str__(self) -> str:
        return f'{self.name}{self.op.value}"{self.value}"'


def match_all(matchers: Iterable[Matcher], labels: Labels) -> bool:
    """True when every matcher accepts the label set."""
    return all(m.matches(labels) for m in matchers)
