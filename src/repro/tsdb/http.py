"""Prometheus HTTP API facade over a storage + engine pair.

The load balancer proxies to, and Grafana reads from, the Prometheus
HTTP API.  This app reproduces the endpoints the stack uses, with the
documented response envelope (``{"status":"success","data":{...}}``):

* ``GET/POST /api/v1/query`` — instant query (``query``, ``time``),
* ``GET/POST /api/v1/query_range`` — range query (``query``,
  ``start``, ``end``, ``step``),

  Both accept an optional ``strategy`` parameter (``columnar`` /
  ``per_step``) selecting the evaluator — an escape hatch for
  debugging; an unknown value is a 400.  ``stats=all`` attaches the
  per-query statistics (phase timings, series/samples counts) to the
  response, as in Prometheus.

* ``GET /api/v1/series`` — series metadata for ``match[]`` selectors,
* ``GET /api/v1/label/{name}/values``,
* ``GET /debug/queries`` — the active-query tracker (queued/running/
  recent queries with live phase timings) plus the slow-query log,
* ``GET /-/healthy``.

POST form bodies are honoured (Grafana sends long queries that way),
which matters for the LB: it must introspect both transports.

Every query runs through the introspection pipeline of
:mod:`repro.obs.query`: a :class:`~repro.obs.query.QueryStats` is
activated around evaluation (the engine's selector paths report into
it), the :class:`~repro.obs.query.ActiveQueryTracker` gates admission
(503 when all slots stay busy past the queue timeout), and the
:class:`~repro.obs.query.SlowQueryLog` records queries over the
threshold together with the trace id they ran under.
"""

from __future__ import annotations

import math
import time

from repro.common.errors import QueryError, StorageError
from repro.common.httpx import App, Request, Response
from repro.frontend.limits import QueryLimits
from repro.obs.query import (
    ActiveQueryTracker,
    QueryQueueFullError,
    QueryStats,
    SlowQueryLog,
    activate_stats,
    deactivate_stats,
)
from repro.obs.trace import current_trace
from repro.tsdb.model import Matcher, MatchOp
from repro.tsdb.promql.ast import VectorSelector, iter_selectors
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr


def _selector_matchers(selector_text: str) -> list[Matcher]:
    ast = parse_expr(selector_text)
    if not isinstance(ast, VectorSelector):
        raise QueryError("match[] must be a plain series selector")
    return list(ast.matchers)


class PromAPI:
    """One queryable Prometheus endpoint (hot TSDB or Thanos querier)."""

    def __init__(
        self,
        storage,
        name: str = "prometheus",
        lookback: float = 300.0,
        *,
        slow_query_ms: float = 100.0,
        query_log_path: str = "",
        active_query_journal: str = "",
        max_concurrent_queries: int = 20,
        queue_timeout: float = 5.0,
        limits: QueryLimits | None = None,
        rules=None,
        alertmanager=None,
        exemplars=None,
    ) -> None:
        self.storage = storage
        #: Pre-evaluation guardrails (query length / range duration /
        #: resolved steps), enforced here too so the limits hold even
        #: for clients that reach a backend directly, not only through
        #: the query frontend.
        self.limits = limits
        self.queue_timeout = queue_timeout
        #: optional RuleEvaluator — backs /api/v1/rules and /api/v1/alerts
        self.rules = rules
        #: optional Alertmanager — silences plus alert suppression status
        self.alertmanager = alertmanager
        #: Exemplar storage backing /api/v1/query_exemplars.  Passed
        #: explicitly when ``storage`` is a fan-out querier (exemplars
        #: live in the hot TSDB, not the fan-out); falls back to the
        #: storage's own ring when it has one.
        self.exemplars = exemplars if exemplars is not None else getattr(
            storage, "exemplars", None
        )
        self.started_at = time.time()
        self.engine = PromQLEngine(storage, lookback=lookback)
        self.app = App(name=name)
        self.app.expose_telemetry()
        self.tracker = ActiveQueryTracker(
            max_concurrent_queries,
            journal_path=active_query_journal,
            queue_timeout=queue_timeout,
            logger=self.app.telemetry.log,
        )
        self.slow_log = SlowQueryLog(slow_query_ms, sink_path=query_log_path)
        r = self.app.router
        r.get("/debug/queries", self._debug_queries)
        r.get("/api/v1/query", self._query)
        r.post("/api/v1/query", self._query)
        r.get("/api/v1/query_range", self._query_range)
        r.post("/api/v1/query_range", self._query_range)
        r.get("/api/v1/query_exemplars", self._query_exemplars)
        r.post("/api/v1/query_exemplars", self._query_exemplars)
        r.get("/api/v1/status/buildinfo", self._buildinfo)
        r.get("/api/v1/status/runtimeinfo", self._runtimeinfo)
        r.get("/api/v1/series", self._series)
        r.get("/api/v1/label/{name}/values", self._label_values)
        r.get("/api/v1/rules", self._rules)
        r.get("/api/v1/alerts", self._alerts)
        r.get("/api/v1/silences", self._silences_proxy)
        r.post("/api/v1/silences", self._silences_proxy)
        r.get("/api/v1/silence/{id}", self._silences_proxy)
        r.delete("/api/v1/silence/{id}", self._silences_proxy)
        r.get("/-/healthy", lambda _req: Response.text("ok"))
        self.queries_served = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose engine/storage internals on this endpoint's /metrics."""
        registry = self.app.telemetry.registry
        registry.gauge_func(
            "ceems_promapi_queries_served_total",
            lambda: float(self.queries_served),
            help="PromQL queries served by this endpoint.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_promapi_queries_inflight",
            lambda: float(len(self.tracker.active())),
            help="Queries currently queued or running.",
        )
        registry.gauge_func(
            "ceems_promapi_query_queue_timeouts_total",
            lambda: float(self.tracker.queue_timeouts),
            help="Queries rejected because every tracker slot stayed busy.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_promapi_slow_queries_total",
            lambda: float(self.slow_log.total_slow),
            help="Queries that exceeded the slow-query threshold.",
            type="counter",
        )
        registry.collector(self._collect_engine_stats)

    def _collect_engine_stats(self):
        from repro.tsdb.exposition import MetricFamily
        from repro.tsdb.persist.chunkio import DECODE_CACHE_STATS
        from repro.tsdb.promql.columnar import COLUMNAR_STATS
        from repro.tsdb.storage import SNAPSHOT_STATS

        families = []
        seconds = MetricFamily(
            "ceems_promql_eval_seconds_total",
            help="Wall seconds spent evaluating PromQL, per strategy.",
            type="counter",
        )
        queries = MetricFamily(
            "ceems_promql_eval_queries_total",
            help="PromQL evaluations, per strategy.",
            type="counter",
        )
        for strategy, stats in self.engine.strategy_stats().items():
            seconds.add(stats["seconds"], strategy=strategy)
            queries.add(stats["queries"], strategy=strategy)
        families.extend([seconds, queries])

        # Storage selector memo.  The hot TSDB and the Thanos fan-out
        # expose flat {hits, misses} stats; an ObjectStore backend
        # returns one such dict per resolution — emit those as
        # resolution-labelled samples of the same families.
        stats_fn = getattr(self.storage, "selector_cache_stats", None)
        if stats_fn is not None:
            stats = stats_fn()
            hits = MetricFamily(
                "ceems_tsdb_select_cache_hits_total",
                help="Selector memo hits in the storage backend.",
                type="counter",
            )
            misses = MetricFamily(
                "ceems_tsdb_select_cache_misses_total",
                help="Selector memo misses in the storage backend.",
                type="counter",
            )
            if isinstance(stats.get("hits"), dict) or "hits" not in stats:
                for resolution, sub in stats.items():
                    hits.add(float(sub["hits"]), resolution=resolution)
                    misses.add(float(sub["misses"]), resolution=resolution)
            else:
                hits.add(float(stats["hits"]))
                misses.add(float(stats["misses"]))
            families.extend([hits, misses])

        snapshots = MetricFamily(
            "ceems_tsdb_snapshot_cache_total",
            help="Series.arrays() snapshot-cache events, process-wide.",
            type="counter",
        )
        snapshots.add(float(SNAPSHOT_STATS["hits"]), event="hit")
        snapshots.add(float(SNAPSHOT_STATS["builds"]), event="build")
        families.append(snapshots)

        # Flat aliases of the snapshot counters (a build is a cache
        # miss): one sample per family, the conventional Prometheus
        # shape for recording rules and dashboards.
        snap_hits = MetricFamily(
            "ceems_tsdb_snapshot_cache_hits_total",
            help="Series.arrays() snapshot-cache hits, process-wide.",
            type="counter",
        )
        snap_hits.add(float(SNAPSHOT_STATS["hits"]))
        snap_misses = MetricFamily(
            "ceems_tsdb_snapshot_cache_misses_total",
            help="Series.arrays() snapshot rebuilds (cache misses), process-wide.",
            type="counter",
        )
        snap_misses.add(float(SNAPSHOT_STATS["builds"]))
        families.extend([snap_hits, snap_misses])

        # Decoded-chunk LRU (query-over-chunks): hit/miss/eviction
        # counters of the process-wide Gorilla decode cache.
        for event in ("hits", "misses", "evictions"):
            family = MetricFamily(
                f"ceems_tsdb_chunk_decode_cache_{event}_total",
                help=f"Decoded-chunk LRU {event}, process-wide.",
                type="counter",
            )
            family.add(float(DECODE_CACHE_STATS[event]))
            families.append(family)

        columnar = MetricFamily(
            "ceems_promql_columnar_total",
            help="Columnar-evaluator events, process-wide.",
            type="counter",
        )
        for event, count in COLUMNAR_STATS.items():
            columnar.add(float(count), event=event)
        families.append(columnar)

        # Tail-sampler totals, process-wide (every component's sampler
        # feeds the same aggregate; see repro.obs.trace.SAMPLER_STATS).
        from repro.obs.trace import SAMPLER_STATS

        for outcome in ("kept", "dropped"):
            family = MetricFamily(
                f"ceems_trace_sampler_{outcome}_total",
                help=f"Spans {outcome} by tail-based sampling, process-wide.",
                type="counter",
            )
            family.add(float(SAMPLER_STATS[outcome]))
            families.append(family)
        return families

    # -- parameter handling -------------------------------------------------
    @staticmethod
    def _param(request: Request, name: str) -> str | None:
        value = request.param(name)
        if value is None:
            form = request.form
            values = form.get(name)
            value = values[0] if values else None
        return value

    # -- query introspection pipeline ---------------------------------------
    def _introspected(self, request: Request, query: str, strategy: str, eval_fn, render_fn) -> Response:
        """Parse, admit, evaluate and render one query with accounting.

        ``eval_fn(ast)`` runs the engine; ``render_fn(result)`` builds
        the response ``data`` payload.  Stats are active for the whole
        pipeline; the tracker gates the eval phase only (parse/render
        are cheap and must not hold a concurrency slot).
        """
        stats = QueryStats(query=query, strategy=strategy)
        ctx = current_trace()
        trace_id = ctx.trace_id if ctx is not None else ""
        token = activate_stats(stats)
        started = time.perf_counter()
        try:
            try:
                with stats.phase("parse"), self.app.telemetry.child_span("promql.parse"):
                    ast = parse_expr(query)
            except (QueryError, ValueError) as exc:
                return Response.error(400, str(exc))
            fingerprint = tuple(str(sel) for sel in iter_selectors(ast))
            try:
                with self.tracker.track(
                    query, fingerprint=fingerprint, strategy=strategy, stats=stats
                ) as record:
                    record.trace_id = trace_id
                    with self.app.telemetry.child_span(
                        "promql.eval", strategy=strategy
                    ) as span:
                        with stats.phase("eval"):
                            result = eval_fn(ast)
                        if span is not None:
                            # Exemplar-style span event: the finished
                            # eval-phase breakdown rides on the span.
                            span.attrs["stats"] = stats.to_dict()
            except QueryQueueFullError as exc:
                # 503 with Retry-After: the client (and the LB, which
                # must forward both verbatim) knows when to back off
                # until a tracker slot is likely free again.
                return Response.json(
                    {"status": "error", "error": str(exc)},
                    status=503,
                    retry_after=f"{max(1, math.ceil(self.queue_timeout))}",
                )
            except (QueryError, StorageError, ValueError) as exc:
                return Response.error(400, str(exc))
            with stats.phase("render"):
                payload = render_fn(result)
            if (self._param(request, "stats") or "") == "all":
                payload["stats"] = stats.to_dict()
            return Response.json({"status": "success", "data": payload})
        finally:
            deactivate_stats(token)
            self.slow_log.observe(
                query,
                time.perf_counter() - started,
                stats=stats,
                trace_id=trace_id,
                endpoint=request.path,
            )

    # -- endpoints ---------------------------------------------------------------
    def _query(self, request: Request) -> Response:
        query = self._param(request, "query")
        if not query:
            return Response.error(400, "missing query parameter")
        if self.limits is not None:
            failed = self.limits.check_query(query)
            if failed is not None:
                return failed
        time_param = self._param(request, "time")
        if time_param is None:
            return Response.error(400, "missing time parameter (no wall clock in simulation)")
        self.queries_served += 1
        strategy = self._param(request, "strategy") or "per_step"

        def render(result):
            if result.is_scalar:
                return {
                    "resultType": "scalar",
                    "result": [result.timestamp, str(result.scalar)],
                }
            return {
                "resultType": "vector",
                "result": [
                    {
                        "metric": el.labels.as_dict(),
                        "value": [result.timestamp, str(el.value)],
                    }
                    for el in result.vector
                ],
            }

        return self._introspected(
            request,
            query,
            strategy,
            lambda ast: self.engine.query(ast, float(time_param), strategy=strategy),
            render,
        )

    def _query_range(self, request: Request) -> Response:
        query = self._param(request, "query")
        if not query:
            return Response.error(400, "missing query parameter")
        try:
            start = float(self._param(request, "start"))
            end = float(self._param(request, "end"))
            step = float(self._param(request, "step"))
        except (TypeError, ValueError):
            return Response.error(400, "start/end/step must be numbers")
        if self.limits is not None:
            failed = self.limits.check_query(query) or self.limits.check_range(
                start, end, step
            )
            if failed is not None:
                return failed
        self.queries_served += 1
        strategy = self._param(request, "strategy") or "columnar"

        def render(result):
            return {
                "resultType": "matrix",
                "result": [
                    {
                        "metric": labels.as_dict(),
                        "values": [
                            [float(t), str(v)] for t, v in zip(ts.tolist(), vs.tolist())
                        ],
                    }
                    for labels, (ts, vs) in sorted(
                        result.series.items(), key=lambda kv: tuple(kv[0])
                    )
                ],
            }

        return self._introspected(
            request,
            query,
            strategy,
            lambda ast: self.engine.query_range(ast, start, end, step, strategy=strategy),
            render,
        )

    def _query_exemplars(self, request: Request) -> Response:
        """Prometheus ``/api/v1/query_exemplars``: exemplars of every
        series matched by the query's selectors, within [start, end].

        Grafana sends the *panel expression* (e.g. a
        ``histogram_quantile(...)`` over buckets), so the handler
        walks the AST for vector selectors instead of requiring a
        plain selector, exactly like Prometheus.
        """
        query = self._param(request, "query")
        if not query:
            return Response.error(400, "missing query parameter")
        try:
            start_param = self._param(request, "start")
            end_param = self._param(request, "end")
            start = float(start_param) if start_param is not None else float("-inf")
            end = float(end_param) if end_param is not None else float("inf")
        except ValueError:
            return Response.error(400, "start/end must be numbers")
        try:
            ast = parse_expr(query)
        except (QueryError, ValueError) as exc:
            return Response.error(400, str(exc))
        self.queries_served += 1
        if self.exemplars is None:
            return Response.json({"status": "success", "data": []})
        merged: dict = {}
        for selector in iter_selectors(ast):
            for labels, records in self.exemplars.select(
                list(selector.matchers), start, end
            ):
                merged.setdefault(labels, []).extend(records)
        data = []
        for labels, records in sorted(merged.items(), key=lambda kv: tuple(kv[0])):
            # A series matched by several selectors must not repeat
            # its exemplars; identity dedup is enough because select()
            # hands back the same record objects.
            seen_ids: set[int] = set()
            exemplars = []
            for record in sorted(records, key=lambda r: r.timestamp):
                if id(record) in seen_ids:
                    continue
                seen_ids.add(id(record))
                exemplars.append(
                    {
                        "labels": dict(record.labels),
                        "value": str(record.value),
                        "timestamp": record.timestamp,
                    }
                )
            data.append({"seriesLabels": labels.as_dict(), "exemplars": exemplars})
        return Response.json({"status": "success", "data": data})

    def _buildinfo(self, request: Request) -> Response:
        """Prometheus ``/api/v1/status/buildinfo`` (Grafana probes it
        on data-source load to pick API features)."""
        from repro import __version__

        return Response.json(
            {
                "status": "success",
                "data": {
                    "version": __version__,
                    "revision": "ceems-sim",
                    "branch": "main",
                    "buildUser": "",
                    "buildDate": "",
                    "goVersion": "",
                    "features": {"exemplar-storage": "true"},
                },
            }
        )

    def _runtimeinfo(self, request: Request) -> Response:
        """Prometheus ``/api/v1/status/runtimeinfo``."""
        retention = getattr(self.storage, "retention", 0.0)
        num_series = getattr(self.storage, "num_series", 0)
        data = {
            "startTime": self.started_at,
            "reloadConfigSuccess": True,
            "corruptionCount": 0,
            "storageRetention": f"{float(retention):g}s",
            "timeSeriesCount": int(num_series() if callable(num_series) else num_series),
            "queriesServed": self.queries_served,
        }
        if self.exemplars is not None:
            data["exemplarCount"] = len(self.exemplars)
        return Response.json({"status": "success", "data": data})

    def _series(self, request: Request) -> Response:
        selectors = request.params("match[]")
        if not selectors:
            return Response.error(400, "missing match[] parameter")
        try:
            out = []
            seen = set()
            for selector in selectors:
                for series in self.storage.select(_selector_matchers(selector)):
                    if series.labels not in seen:
                        seen.add(series.labels)
                        out.append(series.labels.as_dict())
        except (QueryError, StorageError) as exc:
            return Response.error(400, str(exc))
        return Response.json({"status": "success", "data": out})

    def _label_values(self, request: Request) -> Response:
        name = request.path_params["name"]
        values = self.storage.label_values(name)
        return Response.json({"status": "success", "data": values})

    def _debug_queries(self, request: Request) -> Response:
        """Active-query tracker state plus the slow-query log."""
        data = self.tracker.to_dict()
        data["slow_query_threshold_ms"] = self.slow_log.threshold_ms
        data["slow_queries"] = self.slow_log.entries()
        return Response.json({"status": "success", "component": self.app.name, **data})

    # -- alerting surface ---------------------------------------------

    def _alert_status(self, labels) -> dict:
        if self.alertmanager is None:
            return {"state": "active", "silencedBy": [], "inhibitedBy": []}
        return self.alertmanager.status_of(labels)

    def _rules(self, request: Request) -> Response:
        """Prometheus ``/api/v1/rules``: recording + alerting groups."""
        groups = []
        if self.rules is not None:
            for group in self.rules.groups:
                groups.append(
                    {
                        "name": group.name,
                        "interval": group.interval,
                        "evaluations": group.evaluations,
                        "lastError": group.last_error,
                        "rules": [
                            {
                                "type": "recording",
                                "name": rule.record,
                                "query": rule.expr,
                                "labels": dict(rule.labels),
                                "health": "ok",
                            }
                            for rule in group.rules
                        ],
                    }
                )
            for group in getattr(self.rules, "alert_groups", []):
                groups.append(
                    {
                        "name": group.name,
                        "interval": group.interval,
                        "evaluations": group.evaluations,
                        "lastError": group.last_error,
                        "rules": [
                            {
                                "type": "alerting",
                                "name": rule.name,
                                "query": rule.expr,
                                "duration": rule.hold,
                                "labels": dict(rule.labels),
                                "annotations": dict(rule.annotations),
                                "health": "err" if rule.last_error else "ok",
                                "state": rule.state.value if rule.state else "inactive",
                                "alerts": [
                                    {
                                        "labels": {
                                            "alertname": a.name,
                                            **a.labels.as_dict(),
                                        },
                                        "state": a.state.value,
                                        "activeAt": a.active_since,
                                        "value": a.value,
                                    }
                                    for a in rule.active_alerts()
                                ],
                            }
                            for rule in group.rules
                        ],
                    }
                )
        return Response.json({"status": "success", "data": {"groups": groups}})

    def _alerts(self, request: Request) -> Response:
        """Prometheus ``/api/v1/alerts``: pending + firing instances,
        annotated with the Alertmanager suppression status."""
        alerts = []
        if self.rules is not None and hasattr(self.rules, "active_alerts"):
            for a in self.rules.active_alerts():
                alerts.append(
                    {
                        "labels": {"alertname": a.name, **a.labels.as_dict()},
                        "annotations": dict(a.annotations),
                        "state": a.state.value,
                        "activeAt": a.active_since,
                        "value": a.value,
                        "status": self._alert_status(
                            a.labels.merge({"alertname": a.name})
                        ),
                    }
                )
        return Response.json({"status": "success", "data": {"alerts": alerts}})

    def _silences_proxy(self, request: Request) -> Response:
        """Delegate silence CRUD to the wired Alertmanager."""
        if self.alertmanager is None:
            return Response.error(404, "no alertmanager configured")
        return self.alertmanager.app.handle(request)


def delete_series_matchers(uuid: str) -> list[Matcher]:
    """Matchers selecting every series of one compute unit.

    Used by the API server's cardinality cleanup (Admin API analogue
    of ``/api/v1/admin/tsdb/delete_series?match[]={uuid="..."}``).
    """
    return [Matcher("uuid", MatchOp.EQ, uuid)]
