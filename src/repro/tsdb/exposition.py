"""Prometheus text exposition format — renderer and parser.

The exporter renders its metrics in this format (paper §II.B.a: the
exporter *"sends the metrics response to every request in a format
understandable by Prometheus"*); the scrape manager parses it back.
Both directions are implemented so the wire contract is real text, not
shared Python objects.

Supported format features: ``# HELP`` / ``# TYPE`` comments, label
escaping (``\\``, ``\"``, ``\\n``), ``NaN``/``+Inf``/``-Inf`` values,
and optional millisecond timestamps — the subset the Prometheus
ecosystem actually exchanges for counters and gauges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ScrapeError
from repro.tsdb.model import METRIC_NAME_LABEL, Labels

VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


@dataclass
class MetricPoint:
    """One exposed sample: labels (without ``__name__``) + value."""

    labels: dict[str, str]
    value: float
    timestamp_ms: int | None = None


@dataclass
class MetricFamily:
    """A named metric with HELP/TYPE metadata and its points."""

    name: str
    help: str = ""
    type: str = "gauge"
    points: list[MetricPoint] = field(default_factory=list)

    def add(self, value: float, timestamp_ms: int | None = None, **labels: str) -> None:
        self.points.append(MetricPoint(labels=labels, value=value, timestamp_ms=timestamp_ms))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render(families: list[MetricFamily]) -> str:
    """Render metric families to exposition text."""
    lines: list[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for point in family.points:
            if point.labels:
                label_str = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in sorted(point.labels.items())
                )
                series = f"{family.name}{{{label_str}}}"
            else:
                series = family.name
            line = f"{series} {_format_value(point.value)}"
            if point.timestamp_ms is not None:
                line += f" {point.timestamp_ms}"
            lines.append(line)
    return "\n".join(lines) + "\n"


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        # label name
        j = i
        while j < len(text) and (text[j].isalnum() or text[j] == "_"):
            j += 1
        name = text[i:j]
        if not name:
            raise ScrapeError(f"line {lineno}: empty label name in {text!r}")
        if j >= len(text) or text[j] != "=":
            raise ScrapeError(f"line {lineno}: expected '=' after label {name!r}")
        j += 1
        if j >= len(text) or text[j] != '"':
            raise ScrapeError(f"line {lineno}: expected '\"' for label {name!r}")
        j += 1
        value_chars: list[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                if j + 1 >= len(text):
                    raise ScrapeError(f"line {lineno}: dangling escape")
                nxt = text[j + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ScrapeError(f"line {lineno}: unterminated label value")
        labels[name] = "".join(value_chars)
        j += 1  # past closing quote
        if j < len(text) and text[j] == ",":
            j += 1
        i = j
    return labels


def _parse_value(token: str, lineno: int) -> float:
    try:
        if token == "NaN":
            return math.nan
        if token in ("+Inf", "Inf"):
            return math.inf
        if token == "-Inf":
            return -math.inf
        return float(token)
    except ValueError as exc:
        raise ScrapeError(f"line {lineno}: bad value {token!r}") from exc


def parse(text: str) -> list[MetricFamily]:
    """Parse exposition text back into metric families.

    Families are keyed by name; TYPE/HELP comments ahead of samples
    attach metadata.  Unknown comment lines are ignored (Prometheus
    behaviour).
    """
    families: dict[str, MetricFamily] = {}

    def family(name: str) -> MetricFamily:
        if name not in families:
            families[name] = MetricFamily(name=name, type="untyped")
        return families[name]

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in VALID_TYPES:
                    raise ScrapeError(f"line {lineno}: bad TYPE line {line!r}")
                family(parts[2]).type = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2]).help = parts[3] if len(parts) > 3 else ""
            continue
        # sample line: name{labels} value [timestamp]
        if "{" in line:
            name_part, _, rest = line.partition("{")
            # Find the closing brace outside quoted label values —
            # values may legally contain '}' inside quotes.
            quote = False
            escaped = False
            end = -1
            for idx, ch in enumerate(rest):
                if escaped:
                    escaped = False
                    continue
                if ch == "\\":
                    escaped = True
                elif ch == '"':
                    quote = not quote
                elif ch == "}" and not quote:
                    end = idx
                    break
            if end == -1:
                raise ScrapeError(f"line {lineno}: unterminated label set")
            labels = _parse_labels(rest[:end], lineno)
            tokens = rest[end + 1 :].split()
        else:
            tokens = line.split()
            name_part = tokens[0]
            labels = {}
            tokens = tokens[1:]
        if not tokens:
            raise ScrapeError(f"line {lineno}: sample without value")
        name = name_part.strip()
        if not name:
            raise ScrapeError(f"line {lineno}: sample without metric name")
        value = _parse_value(tokens[0], lineno)
        timestamp_ms = int(tokens[1]) if len(tokens) > 1 else None
        family(name).points.append(MetricPoint(labels=labels, value=value, timestamp_ms=timestamp_ms))
    return list(families.values())


def to_labels(family_name: str, point: MetricPoint, extra: dict[str, str] | None = None) -> Labels:
    """Combine a parsed point with target labels into a series identity.

    ``extra`` (the scrape target's labels, e.g. ``instance``/``job``)
    loses against metric-own labels on conflict, matching Prometheus's
    ``honor_labels: true`` mode which CEEMS uses for exporter-supplied
    identity labels like ``uuid``.
    """
    merged: dict[str, str] = dict(extra or {})
    merged.update(point.labels)
    merged[METRIC_NAME_LABEL] = family_name
    return Labels(merged)
