"""Prometheus text exposition format — renderer and parser.

The exporter renders its metrics in this format (paper §II.B.a: the
exporter *"sends the metrics response to every request in a format
understandable by Prometheus"*); the scrape manager parses it back.
Both directions are implemented so the wire contract is real text, not
shared Python objects.

Supported format features: ``# HELP`` / ``# TYPE`` comments, label
escaping (``\\``, ``\"``, ``\\n``), ``NaN``/``+Inf``/``-Inf`` values,
optional millisecond timestamps, and OpenMetrics-style exemplars
(``# {trace_id="..."} value [ts]`` suffixes on counter and histogram
bucket lines) — the subset the Prometheus ecosystem actually
exchanges for counters, gauges and histograms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ScrapeError
from repro.tsdb.model import METRIC_NAME_LABEL, Labels

VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


@dataclass(slots=True)
class Exemplar:
    """An OpenMetrics exemplar: a sampled reference riding on a point.

    ``labels`` is the exemplar's own label set (conventionally a
    single ``trace_id``); ``timestamp`` is in **seconds** (the
    OpenMetrics wire unit) and optional — the scrape layer substitutes
    the scrape timestamp when absent.
    """

    labels: dict[str, str]
    value: float
    timestamp: float | None = None


@dataclass(slots=True)
class MetricPoint:
    """One exposed sample: labels (without ``__name__``) + value."""

    labels: dict[str, str]
    value: float
    timestamp_ms: int | None = None
    exemplar: Exemplar | None = None


@dataclass(slots=True)
class MetricFamily:
    """A named metric with HELP/TYPE metadata and its points."""

    name: str
    help: str = ""
    type: str = "gauge"
    points: list[MetricPoint] = field(default_factory=list)

    def add(
        self,
        value: float,
        timestamp_ms: int | None = None,
        exemplar: Exemplar | None = None,
        **labels: str,
    ) -> None:
        self.points.append(
            MetricPoint(labels=labels, value=value, timestamp_ms=timestamp_ms, exemplar=exemplar)
        )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


#: Render-side memoisation.  An exporter re-collects every scrape, but
#: the *identity* parts of its output — family headers and the
#: ``name{escaped labels}`` line skeletons — are stable across
#: collections; only values change.  The caches below mean a repeat
#: render pays label sorting/escaping exactly once per distinct series
#: shape.  Keys are raw (unsorted) label item tuples so a hit costs no
#: sort; two insertion orders of the same labels simply occupy two
#: slots pointing at the same canonical skeleton text.  Cleared
#: wholesale at the cap so high-churn label values (per-job uuids)
#: cannot grow them without bound.
_SKELETON_CACHE: dict[tuple, str] = {}
_SKELETON_CACHE_MAX = 65536
_HEADER_CACHE: dict[tuple[str, str, str], str] = {}
_HEADER_CACHE_MAX = 4096
_VALUE_CACHE: dict[float, str] = {}
_VALUE_CACHE_MAX = 4096


def _format_value_uncached(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    cached = _VALUE_CACHE.get(value)
    if cached is None:
        cached = _format_value_uncached(value)
        if len(_VALUE_CACHE) >= _VALUE_CACHE_MAX:
            _VALUE_CACHE.clear()
        _VALUE_CACHE[value] = cached
    return cached


def _family_header(name: str, help: str, type: str) -> str:
    key = (name, help, type)
    header = _HEADER_CACHE.get(key)
    if header is None:
        if help:
            header = f"# HELP {name} {_escape_help(help)}\n# TYPE {name} {type}"
        else:
            header = f"# TYPE {name} {type}"
        if len(_HEADER_CACHE) >= _HEADER_CACHE_MAX:
            _HEADER_CACHE.clear()
        _HEADER_CACHE[key] = header
    return header


def _series_skeleton(name: str, labels: dict[str, str]) -> str:
    key = (name, *labels.items())
    skeleton = _SKELETON_CACHE.get(key)
    if skeleton is None:
        label_str = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
        )
        skeleton = f"{name}{{{label_str}}}"
        if len(_SKELETON_CACHE) >= _SKELETON_CACHE_MAX:
            _SKELETON_CACHE.clear()
        _SKELETON_CACHE[key] = skeleton
    return skeleton


def clear_render_caches() -> None:
    """Drop the render memos (tests and memory-pressure hooks)."""
    _SKELETON_CACHE.clear()
    _HEADER_CACHE.clear()
    _VALUE_CACHE.clear()


def _render_exemplar(exemplar: Exemplar) -> str:
    """The ``# {labels} value [ts]`` suffix of an exemplar-carrying line.

    Deliberately **not** memoised: exemplar label values (trace ids)
    and values churn on nearly every scrape, so caching them would
    thrash the skeleton/value memos that earn their keep on the stable
    series-identity text.  The output is a pure function of the
    exemplar, so cold and warm renders stay byte-identical.
    """
    label_str = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(exemplar.labels.items())
    )
    suffix = f"# {{{label_str}}} {_format_value_uncached(exemplar.value)}"
    if exemplar.timestamp is not None:
        suffix = f"{suffix} {_format_value_uncached(exemplar.timestamp)}"
    return suffix


def render(families: list[MetricFamily]) -> str:
    """Render metric families to exposition text."""
    lines: list[str] = []
    append = lines.append
    for family in families:
        name = family.name
        append(_family_header(name, family.help, family.type))
        for point in family.points:
            labels = point.labels
            series = _series_skeleton(name, labels) if labels else name
            if point.timestamp_ms is not None:
                line = f"{series} {_format_value(point.value)} {point.timestamp_ms}"
            else:
                line = f"{series} {_format_value(point.value)}"
            if point.exemplar is not None:
                line = f"{line} {_render_exemplar(point.exemplar)}"
            append(line)
    return "\n".join(lines) + "\n"


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        # label name
        j = i
        while j < len(text) and (text[j].isalnum() or text[j] == "_"):
            j += 1
        name = text[i:j]
        if not name:
            raise ScrapeError(f"line {lineno}: empty label name in {text!r}")
        if j >= len(text) or text[j] != "=":
            raise ScrapeError(f"line {lineno}: expected '=' after label {name!r}")
        j += 1
        if j >= len(text) or text[j] != '"':
            raise ScrapeError(f"line {lineno}: expected '\"' for label {name!r}")
        j += 1
        value_chars: list[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                if j + 1 >= len(text):
                    raise ScrapeError(f"line {lineno}: dangling escape")
                nxt = text[j + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ScrapeError(f"line {lineno}: unterminated label value")
        labels[name] = "".join(value_chars)
        j += 1  # past closing quote
        if j < len(text) and text[j] == ",":
            j += 1
        i = j
    return labels


def _parse_value(token: str, lineno: int) -> float:
    try:
        if token == "NaN":
            return math.nan
        if token in ("+Inf", "Inf"):
            return math.inf
        if token == "-Inf":
            return -math.inf
        return float(token)
    except ValueError as exc:
        raise ScrapeError(f"line {lineno}: bad value {token!r}") from exc


def split_exemplar(line: str) -> tuple[str, str | None]:
    """Split a sample line into ``(sample_part, exemplar_text)``.

    The exemplar suffix starts at the first ``#`` outside quoted label
    values (quoted values may legally contain ``#``).  Lines without
    one return ``(line, None)``.  Shared by :func:`parse_sample_line`
    and the scrape fast lane so both carve the line identically.
    """
    quote = False
    escaped = False
    for idx, ch in enumerate(line):
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
        elif ch == '"':
            quote = not quote
        elif ch == "#" and not quote:
            return line[:idx].rstrip(), line[idx:]
    return line, None


def parse_exemplar(text: str, lineno: int = 0) -> Exemplar:
    """Parse an exemplar suffix (``text`` starts at the ``#``)."""
    body = text[1:].lstrip()
    if not body.startswith("{"):
        raise ScrapeError(f"line {lineno}: exemplar must carry a {{...}} label set")
    rest = body[1:]
    quote = False
    escaped = False
    end = -1
    for idx, ch in enumerate(rest):
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
        elif ch == '"':
            quote = not quote
        elif ch == "}" and not quote:
            end = idx
            break
    if end == -1:
        raise ScrapeError(f"line {lineno}: unterminated exemplar label set")
    labels = _parse_labels(rest[:end], lineno) if rest[:end] else {}
    tokens = rest[end + 1 :].split()
    if not tokens:
        raise ScrapeError(f"line {lineno}: exemplar without value")
    if len(tokens) > 2:
        raise ScrapeError(f"line {lineno}: trailing tokens after exemplar timestamp")
    value = _parse_value(tokens[0], lineno)
    timestamp: float | None = None
    if len(tokens) == 2:
        try:
            timestamp = float(tokens[1])
        except ValueError as exc:
            raise ScrapeError(
                f"line {lineno}: bad exemplar timestamp {tokens[1]!r}"
            ) from exc
    return Exemplar(labels=labels, value=value, timestamp=timestamp)


def comment_parts(line: str, lineno: int) -> list[str]:
    """Split and validate a ``#`` comment line.

    TYPE lines must name a valid metric type (Prometheus rejects the
    scrape otherwise); everything else is free-form.  Shared by
    :func:`parse` and the scrape fast lane so both reject exactly the
    same payloads.
    """
    parts = line.split(None, 3)
    if len(parts) >= 3 and parts[1] == "TYPE":
        if len(parts) < 4 or parts[3] not in VALID_TYPES:
            raise ScrapeError(f"line {lineno}: bad TYPE line {line!r}")
    return parts


def parse_sample_line(
    line: str, lineno: int = 0
) -> tuple[str, dict[str, str], float, int | None, Exemplar | None]:
    """Parse one (non-empty, non-comment) sample line.

    Returns ``(name, labels, value, timestamp_ms, exemplar)``.  This
    is the single authority on sample-line syntax: :func:`parse` uses
    it for every line and the scrape cache uses it on cache misses, so
    the fast lane can never accept a line the reference parser rejects
    (or vice versa).
    """
    # sample line: name{labels} value [timestamp] [# {labels} value [ts]]
    exemplar_text: str | None = None
    if "#" in line:  # cheap C-speed guard; the scan below is Python
        line, exemplar_text = split_exemplar(line)
    if "{" in line:
        name_part, _, rest = line.partition("{")
        # Find the closing brace outside quoted label values —
        # values may legally contain '}' inside quotes.
        quote = False
        escaped = False
        end = -1
        for idx, ch in enumerate(rest):
            if escaped:
                escaped = False
                continue
            if ch == "\\":
                escaped = True
            elif ch == '"':
                quote = not quote
            elif ch == "}" and not quote:
                end = idx
                break
        if end == -1:
            raise ScrapeError(f"line {lineno}: unterminated label set")
        labels = _parse_labels(rest[:end], lineno)
        tokens = rest[end + 1 :].split()
    else:
        tokens = line.split()
        name_part = tokens[0]
        labels = {}
        tokens = tokens[1:]
    if not tokens:
        raise ScrapeError(f"line {lineno}: sample without value")
    name = name_part.strip()
    if not name:
        raise ScrapeError(f"line {lineno}: sample without metric name")
    value = _parse_value(tokens[0], lineno)
    timestamp_ms = int(tokens[1]) if len(tokens) > 1 else None
    # Exemplar errors surface only after the sample part validated, so
    # the fast lane (which validates its cached sample prefix first)
    # raises in the same order on doubly-malformed lines.
    exemplar = parse_exemplar(exemplar_text, lineno) if exemplar_text is not None else None
    return name, labels, value, timestamp_ms, exemplar


def parse(text: str) -> list[MetricFamily]:
    """Parse exposition text back into metric families.

    Families are keyed by name; TYPE/HELP comments ahead of samples
    attach metadata.  Unknown comment lines are ignored (Prometheus
    behaviour).
    """
    families: dict[str, MetricFamily] = {}

    def family(name: str) -> MetricFamily:
        if name not in families:
            families[name] = MetricFamily(name=name, type="untyped")
        return families[name]

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = comment_parts(line, lineno)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family(parts[2]).type = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2]).help = parts[3] if len(parts) > 3 else ""
            continue
        name, labels, value, timestamp_ms, exemplar = parse_sample_line(line, lineno)
        family(name).points.append(
            MetricPoint(labels=labels, value=value, timestamp_ms=timestamp_ms, exemplar=exemplar)
        )
    return list(families.values())


def to_labels(family_name: str, point: MetricPoint, extra: dict[str, str] | None = None) -> Labels:
    """Combine a parsed point with target labels into a series identity.

    ``extra`` (the scrape target's labels, e.g. ``instance``/``job``)
    loses against metric-own labels on conflict, matching Prometheus's
    ``honor_labels: true`` mode which CEEMS uses for exporter-supplied
    identity labels like ``uuid``.
    """
    merged: dict[str, str] = dict(extra or {})
    merged.update(point.labels)
    merged[METRIC_NAME_LABEL] = family_name
    return Labels(merged)
