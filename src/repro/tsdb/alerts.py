"""Alerting rules and a miniature Alertmanager.

The real CEEMS deployment ships Prometheus alerting rules alongside
its recording rules (node down, exporter collector failures, power
anomalies).  This module adds the alerting half of the rules engine:

* :class:`AlertingRule` — a PromQL expression plus a ``for`` hold
  duration; series matching the expression become *pending* and fire
  once they have matched continuously for the hold period (Prometheus
  semantics);
* :class:`AlertManager` — groups firing alerts, deduplicates
  notifications, and resolves alerts whose condition cleared.
  Notifications go to pluggable receivers (the tests use a list; a
  real deployment would post to Slack/email).

Operator alert packs for the CEEMS deployment are in
:func:`ceems_alert_rules`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import QueryError
from repro.tsdb.model import Labels
from repro.tsdb.promql.ast import Expr
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr


class AlertState(str, enum.Enum):
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


@dataclass
class AlertInstance:
    """One alert for one label set."""

    name: str
    labels: Labels
    state: AlertState
    active_since: float
    value: float
    annotations: dict[str, str] = field(default_factory=dict)
    fired_at: float | None = None
    resolved_at: float | None = None


@dataclass
class AlertingRule:
    """``alert: <name>  expr: <promql>  for: <hold>`` (Prometheus)."""

    name: str
    expr: str
    hold: float = 0.0
    labels: dict[str, str] = field(default_factory=dict)
    annotations: dict[str, str] = field(default_factory=dict)
    _ast: Expr | None = field(default=None, repr=False)
    #: label-set -> first time the condition matched continuously
    _pending: dict[Labels, float] = field(default_factory=dict, repr=False)
    _firing: set = field(default_factory=set, repr=False)
    #: label-set -> value from the most recent evaluation
    _values: dict[Labels, float] = field(default_factory=dict, repr=False)
    last_error: str = field(default="", repr=False)

    def ast(self) -> Expr:
        if self._ast is None:
            self._ast = parse_expr(self.expr)
        return self._ast

    def evaluate(self, engine: PromQLEngine, now: float) -> list[AlertInstance]:
        """One evaluation; returns state *transitions* (fire/resolve)."""
        self.last_error = ""
        try:
            result = engine.query(self.ast(), now)
        except (QueryError, ZeroDivisionError) as exc:
            self.last_error = str(exc)
            return []
        current = {el.labels.drop("__name__"): el.value for el in result.vector}
        self._values = dict(current)
        transitions: list[AlertInstance] = []

        # new or continuing matches
        for labels, value in current.items():
            if labels not in self._pending:
                self._pending[labels] = now
            active_since = self._pending[labels]
            if labels not in self._firing and now - active_since >= self.hold:
                self._firing.add(labels)
                transitions.append(
                    AlertInstance(
                        name=self.name,
                        labels=labels.merge(self.labels),
                        state=AlertState.FIRING,
                        active_since=active_since,
                        value=value,
                        annotations=dict(self.annotations),
                        fired_at=now,
                    )
                )

        # cleared matches
        for labels in list(self._pending):
            if labels in current:
                continue
            del self._pending[labels]
            if labels in self._firing:
                self._firing.discard(labels)
                transitions.append(
                    AlertInstance(
                        name=self.name,
                        labels=labels.merge(self.labels),
                        state=AlertState.RESOLVED,
                        active_since=now,
                        value=0.0,
                        annotations=dict(self.annotations),
                        resolved_at=now,
                    )
                )
        return transitions

    @property
    def firing_count(self) -> int:
        return len(self._firing)

    @property
    def pending_count(self) -> int:
        return len(self._pending) - len(self._firing)

    @property
    def state(self) -> AlertState | None:
        """Worst state across instances (``firing`` > ``pending``),
        ``None`` when the rule is inactive."""
        if self._firing:
            return AlertState.FIRING
        if self._pending:
            return AlertState.PENDING
        return None

    def active_alerts(self) -> list[AlertInstance]:
        """Every currently pending or firing alert instance (a *view*,
        unlike :meth:`evaluate` which returns only transitions)."""
        out: list[AlertInstance] = []
        for labels, active_since in sorted(self._pending.items(), key=lambda kv: str(kv[0])):
            firing = labels in self._firing
            out.append(
                AlertInstance(
                    name=self.name,
                    labels=labels.merge(self.labels),
                    state=AlertState.FIRING if firing else AlertState.PENDING,
                    active_since=active_since,
                    value=self._values.get(labels, 0.0),
                    annotations=dict(self.annotations),
                )
            )
        return out


@dataclass
class AlertingRuleGroup:
    """A named group of alerting rules sharing an evaluation interval.

    The alerting twin of :class:`repro.tsdb.rules.RuleGroup` — the
    :class:`~repro.tsdb.rules.RuleEvaluator` runs both kinds on the
    sim clock.
    """

    name: str
    interval: float
    rules: list[AlertingRule] = field(default_factory=list)

    evaluations: int = 0
    last_error: str = ""

    def evaluate(self, engine: PromQLEngine, now: float) -> list[AlertInstance]:
        """Evaluate every rule; returns the concatenated transitions."""
        transitions: list[AlertInstance] = []
        self.last_error = ""
        for rule in self.rules:
            transitions.extend(rule.evaluate(engine, now))
            if rule.last_error:
                self.last_error = f"{rule.name}: {rule.last_error}"
        self.evaluations += 1
        return transitions

    def active_alerts(self) -> list[AlertInstance]:
        return [alert for rule in self.rules for alert in rule.active_alerts()]


Receiver = Callable[[AlertInstance], None]


class AlertManager:
    """Evaluates alerting rules and routes notifications."""

    def __init__(self, engine: PromQLEngine, interval: float = 60.0) -> None:
        self.engine = engine
        self.interval = interval
        self.rules: list[AlertingRule] = []
        self.receivers: list[Receiver] = []
        self.notifications: list[AlertInstance] = []
        self.evaluations = 0

    def add_rule(self, rule: AlertingRule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise QueryError(f"duplicate alerting rule {rule.name!r}")
        self.rules.append(rule)

    def add_receiver(self, receiver: Receiver) -> None:
        self.receivers.append(receiver)

    def evaluate(self, now: float) -> list[AlertInstance]:
        """One evaluation pass over every rule; dispatches transitions."""
        self.evaluations += 1
        transitions: list[AlertInstance] = []
        for rule in self.rules:
            transitions.extend(rule.evaluate(self.engine, now))
        for alert in transitions:
            self.notifications.append(alert)
            for receiver in self.receivers:
                receiver(alert)
        return transitions

    def firing(self) -> dict[str, int]:
        """Currently-firing alert counts per rule name."""
        return {rule.name: rule.firing_count for rule in self.rules if rule.firing_count}

    def register_timer(self, clock) -> None:
        clock.every(self.interval, self.evaluate)


def ceems_alert_rules() -> list[AlertingRule]:
    """The operator alert pack for a CEEMS deployment."""
    return [
        AlertingRule(
            name="CEEMSTargetDown",
            expr="up == 0",
            hold=120.0,
            labels={"severity": "critical"},
            annotations={"summary": "scrape target has been down for 2 minutes"},
        ),
        AlertingRule(
            name="CEEMSCollectorFailed",
            expr="ceems_exporter_collector_success == 0",
            hold=300.0,
            labels={"severity": "warning"},
            annotations={"summary": "an exporter collector keeps failing"},
        ),
        AlertingRule(
            name="NodePowerAnomaly",
            # a node drawing >95% of the cluster's per-node maximum for
            # 10 minutes; placeholder threshold per deployment.
            expr="instance:ipmi_watts > 2500",
            hold=600.0,
            labels={"severity": "warning"},
            annotations={"summary": "node power draw near PSU limit"},
        ),
        AlertingRule(
            name="JobLowCpuEfficiency",
            # a unit using <5% of its allocated cores for 30 minutes
            expr=(
                "(instance:unit_cpu_rate / on(hostname, nodegroup, uuid, manager) "
                "sum by (hostname, nodegroup, uuid, manager) (ceems_compute_unit_cpus)) < 0.05"
            ),
            hold=1800.0,
            labels={"severity": "info"},
            annotations={"summary": "job is using <5% of its allocated CPUs"},
        ),
        AlertingRule(
            name="EmissionFactorStale",
            expr='absent(ceems_emissions_gCo2_kWh{provider="resolved"})',
            hold=900.0,
            labels={"severity": "warning"},
            annotations={"summary": "no emission factor has been scraped recently"},
        ),
    ]
