"""A miniature Prometheus: the TSDB substrate of the stack.

The paper builds CEEMS around Prometheus: exporters expose metrics in
the text exposition format, a scrape manager pulls them on an
interval, recording rules derive the per-job power series (Eq. 1),
and Grafana / the API server query the result with PromQL.  This
package reproduces each of those pieces:

``repro.tsdb.model``
    Label sets, samples, matchers.
``repro.tsdb.storage``
    An append-optimised in-memory TSDB with an inverted label index,
    retention, and series deletion (the cardinality-cleanup target).
``repro.tsdb.exposition``
    The Prometheus text exposition format — renderer and parser.
``repro.tsdb.scrape``
    Scrape targets, target groups, and the scrape loop.
``repro.tsdb.promql``
    A PromQL subset: lexer, parser and evaluation engine (instant and
    range queries, rate/increase, aggregations, binary operators with
    vector matching — everything Eq. (1) and the dashboards need).
``repro.tsdb.rules``
    Recording-rule groups evaluated on an interval.
"""

from repro.tsdb.model import Labels, Matcher, MatchOp, Sample
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RecordingRule, RuleGroup
from repro.tsdb.scrape import ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB

__all__ = [
    "Labels",
    "Matcher",
    "MatchOp",
    "Sample",
    "TSDB",
    "PromQLEngine",
    "RecordingRule",
    "RuleGroup",
    "ScrapeConfig",
    "ScrapeManager",
    "ScrapeTarget",
]
