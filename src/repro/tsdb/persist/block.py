"""Immutable on-disk block format (``meta.json`` + index + chunks).

A block is one directory named by its ULID::

    <root>/<ulid>/
        meta.json        block metadata (times, stats, compaction lineage)
        index.json       series -> chunk references
        chunks/000001    CRC-framed Gorilla chunks, concatenated

``meta.json`` mirrors Prometheus's block meta (ULID, minTime/maxTime,
stats, compaction level + sources) plus this stack's resolution tag
and codec accounting (raw vs. encoded bytes).  The index is JSON
rather than Prometheus's binary postings — debuggable with ``jq`` and
two orders of magnitude smaller than the chunk payload it points at;
the *chunk files* use the real bit-packed codec, which is where the
bytes are.  Chunk frames reuse the WAL framing
(``[u32 len][u32 crc32][chunk]``) so torn or bit-rotted chunks are
detected on read.

Reads are mmap-backed: :class:`BlockReader` maps each chunk file once
(:class:`ChunkFile`) and slices CRC-validated payloads out of the
mapping on demand, so opening a block costs the index JSON only and a
query pays decode for exactly the chunks it touches
(:meth:`BlockReader.chunk_series` + ``persist/chunkio.py``).

Blocks are immutable: the sidecar writes a directory once and
registers it; the compactor *rewrites* (new ULID, new directory) and
deletes the sources, never edits in place.
"""

from __future__ import annotations

import itertools
import json
import mmap
import os
import shutil
import struct
import zlib
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.obs import prof
from repro.tsdb.model import Labels
from repro.tsdb.persist.chunk import DEFAULT_CHUNK_SAMPLES, decode_chunk, iter_chunks
from repro.tsdb.persist.chunkio import FileChunk

_FRAME = struct.Struct("<II")

META_FILENAME = "meta.json"
INDEX_FILENAME = "index.json"
CHUNKS_DIRNAME = "chunks"
#: One chunk file per block is plenty at simulation scale; the format
#: carries the filename per chunk ref so multi-file blocks stay valid.
CHUNK_FILENAME = "000001"


def block_dir(root: str, ulid: str) -> str:
    return os.path.join(root, ulid)


def list_block_ulids(root: str) -> list[str]:
    """ULIDs of every complete block directory under ``root``."""
    if not os.path.isdir(root):
        return []
    out = []
    for entry in sorted(os.listdir(root)):
        if os.path.isfile(os.path.join(root, entry, META_FILENAME)):
            out.append(entry)
    return out


def read_meta(root: str, ulid: str) -> dict:
    with open(os.path.join(block_dir(root, ulid), META_FILENAME), encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("ulid") != ulid:
        raise StorageError(f"block {ulid}: meta.json names {meta.get('ulid')!r}")
    return meta


def write_block(
    root: str,
    ulid: str,
    series: Iterable[tuple[Labels, np.ndarray, np.ndarray]],
    *,
    min_time: float,
    max_time: float,
    resolution: str = "raw",
    level: int = 1,
    sources: tuple[str, ...] = (),
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
) -> dict:
    """Write one immutable block directory; returns its meta dict.

    ``series`` yields ``(labels, timestamps, values)``; empty series
    are skipped.  The write is staged in ``<ulid>.tmp`` and renamed
    into place so a crash mid-write never leaves a half block that
    :func:`list_block_ulids` would pick up.
    """
    with prof.profile("block.write"):
        return _write_block(
            root,
            ulid,
            series,
            min_time=min_time,
            max_time=max_time,
            resolution=resolution,
            level=level,
            sources=sources,
            chunk_samples=chunk_samples,
        )


def _write_block(
    root: str,
    ulid: str,
    series: Iterable[tuple[Labels, np.ndarray, np.ndarray]],
    *,
    min_time: float,
    max_time: float,
    resolution: str,
    level: int,
    sources: tuple[str, ...],
    chunk_samples: int,
) -> dict:
    final_dir = block_dir(root, ulid)
    tmp_dir = final_dir + ".tmp"
    if os.path.exists(final_dir):
        raise StorageError(f"block {ulid} already exists")
    shutil.rmtree(tmp_dir, ignore_errors=True)
    os.makedirs(os.path.join(tmp_dir, CHUNKS_DIRNAME))

    index: list[dict] = []
    num_samples = 0
    num_chunks = 0
    raw_bytes = 0
    encoded_bytes = 0
    chunk_rel = f"{CHUNKS_DIRNAME}/{CHUNK_FILENAME}"
    with open(os.path.join(tmp_dir, CHUNKS_DIRNAME, CHUNK_FILENAME), "wb") as chunks_fh:
        offset = 0
        for labels, ts, vs in series:
            if len(ts) == 0:
                continue
            refs = []
            for encoded, count, lo_t, hi_t in iter_chunks(ts, vs, chunk_samples):
                frame = _FRAME.pack(len(encoded), zlib.crc32(encoded)) + encoded
                chunks_fh.write(frame)
                refs.append(
                    {
                        "file": chunk_rel,
                        "offset": offset,
                        "length": len(encoded),
                        "count": count,
                        "minTime": lo_t,
                        "maxTime": hi_t,
                    }
                )
                offset += len(frame)
                num_samples += count
                num_chunks += 1
                raw_bytes += 16 * count
                encoded_bytes += len(encoded)
            index.append({"labels": labels.as_dict(), "chunks": refs})

    meta = {
        "ulid": ulid,
        "minTime": min_time,
        "maxTime": max_time,
        "resolution": resolution,
        "stats": {
            "numSamples": num_samples,
            "numSeries": len(index),
            "numChunks": num_chunks,
        },
        "compaction": {"level": level, "sources": list(sources)},
        "codec": {"rawBytes": raw_bytes, "encodedBytes": encoded_bytes},
    }
    with open(os.path.join(tmp_dir, INDEX_FILENAME), "w", encoding="utf-8") as fh:
        json.dump(index, fh)
    # meta.json written last inside the staging dir, then one rename
    # publishes the block atomically (same-filesystem rename).
    with open(os.path.join(tmp_dir, META_FILENAME), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2)
    os.rename(tmp_dir, final_dir)
    return meta


def delete_block(root: str, ulid: str) -> bool:
    """Remove a block directory; True when something was deleted."""
    path = block_dir(root, ulid)
    if not os.path.isdir(path):
        return False
    shutil.rmtree(path)
    return True


class ChunkFile:
    """One mmap'd chunk file; validates CRC frames on demand.

    ``key`` is process-unique and keys the decoded-chunk LRU together
    with the frame offset, so two readers over the same path never
    collide with a reopened (different-generation) mapping.
    """

    _keys = itertools.count()

    def __init__(self, path: str, name: str = "") -> None:
        self.path = path
        self.name = name or path
        self.key = next(ChunkFile._keys)
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if size:
                self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            else:
                self._mm = b""  # mmap rejects empty files

    def payload(self, offset: int, length: int) -> bytes:
        """CRC-checked chunk payload at frame ``offset``."""
        header = self._mm[offset : offset + _FRAME.size]
        if len(header) < _FRAME.size:
            raise StorageError(f"{self.name}: truncated chunk frame")
        frame_length, crc = _FRAME.unpack(header)
        if frame_length != length:
            raise StorageError(f"{self.name}: chunk length mismatch")
        start = offset + _FRAME.size
        payload = self._mm[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise StorageError(f"{self.name}: chunk CRC mismatch")
        return payload

    def close(self) -> None:
        if not isinstance(self._mm, bytes):
            self._mm.close()
            self._mm = b""


class BlockReader:
    """Lazy reader over one block directory.

    Chunk files are mmap'd on first touch and kept mapped for the
    reader's lifetime; :meth:`chunk_series` exposes decode-on-demand
    chunk handles, :meth:`series` eagerly decodes (legacy path and
    eager store loads).
    """

    def __init__(self, root: str, ulid: str) -> None:
        self.root = root
        self.ulid = ulid
        self.dir = block_dir(root, ulid)
        self.meta = read_meta(root, ulid)
        with open(os.path.join(self.dir, INDEX_FILENAME), encoding="utf-8") as fh:
            self.index = json.load(fh)
        self._chunk_files: dict[str, ChunkFile] = {}

    def _chunk_file(self, rel: str) -> ChunkFile:
        cf = self._chunk_files.get(rel)
        if cf is None:
            path = os.path.join(self.dir, *rel.split("/"))
            cf = ChunkFile(path, name=f"block {self.ulid}")
            self._chunk_files[rel] = cf
        return cf

    def close(self) -> None:
        """Unmap every chunk file (drop before deleting the block)."""
        for cf in self._chunk_files.values():
            cf.close()
        self._chunk_files.clear()

    def _read_chunk(self, ref: dict) -> tuple[np.ndarray, np.ndarray]:
        payload = self._chunk_file(ref["file"]).payload(ref["offset"], ref["length"])
        return decode_chunk(payload)

    def chunk_series(self) -> Iterator[tuple[Labels, list[FileChunk]]]:
        """Yield ``(labels, [FileChunk, ...])`` per series — no decode.

        The handles carry per-chunk (count, minTime, maxTime) straight
        from the index, so time pruning never touches payload bytes.
        """
        for entry in self.index:
            labels = Labels(entry["labels"])
            handles = [
                FileChunk(
                    self._chunk_file(ref["file"]),
                    ref["offset"],
                    ref["length"],
                    ref["count"],
                    ref["minTime"],
                    ref["maxTime"],
                )
                for ref in entry["chunks"]
            ]
            if handles:
                yield labels, handles

    def series(self) -> Iterator[tuple[Labels, np.ndarray, np.ndarray]]:
        """Yield ``(labels, timestamps, values)`` per series, decoded."""
        for entry in self.index:
            labels = Labels(entry["labels"])
            parts = [self._read_chunk(ref) for ref in entry["chunks"]]
            if not parts:
                continue
            ts = np.concatenate([p[0] for p in parts])
            vs = np.concatenate([p[1] for p in parts])
            yield labels, ts, vs
