"""Durable storage engine (``repro.tsdb.persist``).

The paper's stack delegates durability to Prometheus TSDB and Thanos
object storage; this package gives the reproduction the same
substrate with real Prometheus-style on-disk semantics:

* :mod:`repro.tsdb.persist.chunk` — a Gorilla-style chunk codec
  (delta-of-delta timestamps, XOR-compressed float64 values) with a
  pure-Python encoder and a numpy-assisted decoder; roundtrips are
  bit-identical, including NaN/±inf payloads;
* :mod:`repro.tsdb.persist.wal` — a segmented write-ahead log with
  CRC32-framed records, a configurable fsync policy and
  corruption-tolerant replay that stops cleanly at the first torn
  frame;
* :mod:`repro.tsdb.persist.block` — the immutable on-disk block
  format (``meta.json`` + JSON index + CRC-framed chunk files) the
  Thanos sidecar writes and the object store / compactor read and
  rewrite;
* :mod:`repro.tsdb.persist.head` — :class:`PersistentTSDB`, a
  disk-backed head that journals every append to its WAL, replays it
  on open, and checkpoints/truncates the WAL whenever the sidecar
  cuts a block.

The design keeps the hot in-memory :class:`~repro.tsdb.storage.TSDB`
API unchanged: persistence is an opt-in subclass plus an opt-in
``persist_dir`` on the object store, so the purely in-memory
simulation path pays nothing.
"""

from repro.tsdb.persist.block import (
    BlockReader,
    block_dir,
    list_block_ulids,
    read_meta,
    write_block,
)
from repro.tsdb.persist.chunk import decode_chunk, encode_chunk
from repro.tsdb.persist.head import PersistentTSDB
from repro.tsdb.persist.wal import WAL, ReplayResult

__all__ = [
    "BlockReader",
    "PersistentTSDB",
    "ReplayResult",
    "WAL",
    "block_dir",
    "decode_chunk",
    "encode_chunk",
    "list_block_ulids",
    "read_meta",
    "write_block",
]
