"""Disk-backed TSDB head: journal every mutation, replay on open.

:class:`PersistentTSDB` subclasses the in-memory
:class:`~repro.tsdb.storage.TSDB` and adds a write-ahead log:

* every new series writes a SERIES record (ref -> labels), every
  append a SAMPLES record referencing series by ref — the same
  ref-indirection Prometheus's WAL uses so sample records stay small;
* series deletions write TOMBSTONE records, so cardinality cleanup
  survives a restart;
* opening a head replays its WAL up to the first torn frame and
  resumes appending into a *fresh* segment (a torn tail is never
  extended);
* :meth:`checkpoint` — called by the Thanos sidecar after it cuts a
  block at time ``t`` — re-states every live series in a CHECKPOINT
  record at the head of a new segment, then deletes the contiguous
  prefix of segments whose samples are all older than ``t`` (they are
  durable in blocks).  The WAL therefore holds exactly the
  not-yet-blocked tail plus one series snapshot.  Because that
  snapshot lands *after* the kept tail in segment order, replay
  buffers samples whose ref is not yet defined and flushes them when
  the restating CHECKPOINT record arrives (see :meth:`_replay`).

Recovery invariant: after a crash, ``replayed samples == every sample
whose WAL record was fully framed before the crash``; with
``fsync="always"`` that is every acknowledged append, with the
default ``"batch"`` policy at most the unsynced OS-buffer tail is
lost.  Samples older than the last checkpoint live in blocks and are
served through the Thanos fan-out, not the head.
"""

from __future__ import annotations

import json
import struct
import time
from typing import Sequence

from repro.common.errors import StorageError
from repro.obs import prof
from repro.obs.registry import Histogram
from repro.tsdb.model import Labels, MatchOp, Matcher
from repro.tsdb.persist.wal import WAL, ReplayResult
from repro.tsdb.storage import TSDB

_REC_SERIES = 1
_REC_SAMPLES = 2
_REC_CHECKPOINT = 3
_REC_TOMBSTONE = 4

_HDR = struct.Struct("<BI")
_SAMPLE = struct.Struct("<Idd")
_CKPT_ENTRY = struct.Struct("<II")


class PersistentTSDB(TSDB):
    """A TSDB whose head state is recoverable from a segmented WAL."""

    def __init__(
        self,
        persist_dir: str,
        *,
        retention: float = 0.0,
        name: str = "tsdb",
        fsync: str = "batch",
        segment_bytes: int = 4 << 20,
        head_layout: str = "columnar",
    ) -> None:
        super().__init__(retention=retention, name=name, head_layout=head_layout)
        self.persist_dir = persist_dir
        self.wal = WAL(f"{persist_dir}/wal", segment_bytes=segment_bytes, fsync=fsync)
        # WAL ref space — distinct from the base class's in-memory
        # series refs (``_next_ref``): WAL refs must survive replay
        # with the exact numbering the log recorded, while series refs
        # restart fresh per process.
        self._refs: dict[Labels, int] = {}
        self._next_wal_ref = 1
        #: max sample timestamp seen per segment (checkpoint eligibility)
        self._segment_max_time: dict[int, float] = {}
        self.checkpoints = 0
        self.replay_result = ReplayResult()
        self.replayed_samples = 0
        self.replayed_series = 0
        self.replayed_tombstones = 0
        self.replay_dropped = 0
        self.checkpoint_seconds = Histogram(
            "ceems_tsdb_checkpoint_seconds",
            help="Wall seconds per WAL checkpoint/truncation pass.",
        )
        self._replaying = False
        started = time.perf_counter()
        with prof.profile("head.replay"):
            self._replay()
        #: How long opening this head spent replaying its WAL.
        self.replay_seconds = time.perf_counter() - started

    # -- WAL replay -----------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild head state from the WAL.

        Checkpoints restate live series in a segment *after* the kept
        tail, so a SAMPLES record may legitimately precede the only
        surviving definition of its ref.  Samples with unknown refs
        are therefore buffered (per ref, in log order) and flushed the
        moment a SERIES/CHECKPOINT record defines that ref; whatever
        is still buffered when the log ends referenced a series that
        was never restated (deleted, or lost to a torn frame) and is
        counted in ``replay_dropped``.
        """
        self._replaying = True
        ref_labels: dict[int, Labels] = {}
        pending: dict[int, list[tuple[int, float, float]]] = {}
        try:
            for segment, payload in self.wal.replay():
                kind = payload[0]
                if kind in (_REC_SERIES, _REC_CHECKPOINT):
                    self._replay_series(payload, ref_labels, pending)
                elif kind == _REC_SAMPLES:
                    self._replay_samples(segment, payload, ref_labels, pending)
                elif kind == _REC_TOMBSTONE:
                    self._replay_tombstone(payload)
                else:
                    self.replay_dropped += 1
        finally:
            self._replaying = False
        self.replay_dropped += sum(len(buffered) for buffered in pending.values())
        self.replay_result = self.wal.last_replay
        self._refs = {labels: ref for ref, labels in ref_labels.items()}
        self._next_wal_ref = max(ref_labels, default=0) + 1

    def _replay_series(
        self,
        payload: bytes,
        ref_labels: dict[int, Labels],
        pending: dict[int, list[tuple[int, float, float]]],
    ) -> None:
        kind, n = _HDR.unpack_from(payload)
        offset = _HDR.size
        if kind == _REC_SERIES:
            labels = Labels(json.loads(payload[offset:].decode("utf-8")))
            ref_labels[n] = labels
            self.replayed_series += 1
            self._flush_pending(n, labels, pending)
            return
        for _ in range(n):
            ref, length = _CKPT_ENTRY.unpack_from(payload, offset)
            offset += _CKPT_ENTRY.size
            labels = Labels(json.loads(payload[offset : offset + length].decode("utf-8")))
            offset += length
            ref_labels[ref] = labels
            self.replayed_series += 1
            self._flush_pending(ref, labels, pending)

    def _flush_pending(
        self,
        ref: int,
        labels: Labels,
        pending: dict[int, list[tuple[int, float, float]]],
    ) -> None:
        """Apply samples that arrived before ``ref``'s definition."""
        for segment, ts, value in pending.pop(ref, ()):
            self._apply_replayed_sample(segment, labels, ts, value)

    def _apply_replayed_sample(
        self, segment: int, labels: Labels, ts: float, value: float
    ) -> None:
        try:
            super().append(labels, ts, value)
        except StorageError:
            self.replay_dropped += 1  # out-of-order relic; skip
            return
        self.replayed_samples += 1
        self._note_segment_time(segment, ts)

    def _replay_samples(
        self,
        segment: int,
        payload: bytes,
        ref_labels: dict[int, Labels],
        pending: dict[int, list[tuple[int, float, float]]],
    ) -> None:
        _, count = _HDR.unpack_from(payload)
        offset = _HDR.size
        for _ in range(count):
            ref, ts, value = _SAMPLE.unpack_from(payload, offset)
            offset += _SAMPLE.size
            labels = ref_labels.get(ref)
            if labels is None:
                # The series definition may still be ahead of us (a
                # checkpoint restated after the kept tail); hold the
                # sample until the ref is defined or the log ends.
                pending.setdefault(ref, []).append((segment, ts, value))
                continue
            self._apply_replayed_sample(segment, labels, ts, value)

    def _replay_tombstone(self, payload: bytes) -> None:
        matchers = [
            Matcher(m["name"], MatchOp(m["op"]), m["value"])
            for m in json.loads(payload[1:].decode("utf-8"))
        ]
        super().delete_series(matchers)
        self.replayed_tombstones += 1

    # -- journaling helpers ------------------------------------------------
    def _note_segment_time(self, segment: int, ts: float) -> None:
        prev = self._segment_max_time.get(segment)
        if prev is None or ts > prev:
            self._segment_max_time[segment] = ts

    def _ref_for(self, labels: Labels) -> int:
        ref = self._refs.get(labels)
        if ref is None:
            ref = self._next_wal_ref
            self._next_wal_ref += 1
            self._refs[labels] = ref
            self.wal.append(
                _HDR.pack(_REC_SERIES, ref) + json.dumps(labels.as_dict()).encode("utf-8")
            )
        return ref

    def _log_samples(self, entries: list[tuple[int, float, float]]) -> None:
        payload = bytearray(_HDR.pack(_REC_SAMPLES, len(entries)))
        for ref, ts, value in entries:
            payload += _SAMPLE.pack(ref, ts, value)
        # append() reports the segment that actually holds the frame;
        # reading current_segment afterwards would mis-attribute the
        # record to the fresh segment when the write triggers an eager
        # cut, letting checkpoint() truncate un-blocked samples.
        segment = self.wal.append(bytes(payload))
        for _ref, ts, _value in entries:
            self._note_segment_time(segment, ts)

    # -- mutations (journal after the in-memory append validates) ---------
    def append(self, labels: Labels, timestamp: float, value: float) -> None:
        super().append(labels, timestamp, value)
        if not self._replaying:
            self._log_samples([(self._ref_for(labels), timestamp, value)])

    def append_array(self, labels: Labels, timestamps, values) -> int:
        count = super().append_array(labels, timestamps, values)
        if count and not self._replaying:
            ref = self._ref_for(labels)
            self._log_samples(
                [(ref, float(t), float(v)) for t, v in zip(timestamps, values)]
            )
        return count

    def append_ref(self, ref: int, timestamp: float, value: float) -> None:
        series = self.resolve_ref(ref)
        if series is None:
            raise StorageError(f"unknown series ref {ref}")
        # Route through append() so the sample is journaled; the extra
        # Labels lookup is the price of durability on this head.
        self.append(series.labels, timestamp, value)

    def append_refs(
        self, timestamp: float, pairs: Sequence[tuple[int, float]]
    ) -> tuple[int, list[tuple[int, float]]]:
        count, dead = super().append_refs(timestamp, pairs)
        if count and not self._replaying:
            dead_refs = {ref for ref, _ in dead}
            self._log_samples(
                [
                    (self._ref_for(self.resolve_ref(ref).labels), timestamp, value)
                    for ref, value in pairs
                    if ref not in dead_refs
                ]
            )
        return count, dead

    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        deleted = super().delete_series(matchers)
        if deleted and not self._replaying:
            doc = [{"name": m.name, "op": m.op.value, "value": m.value} for m in matchers]
            self.wal.append(bytes([_REC_TOMBSTONE]) + json.dumps(doc).encode("utf-8"))
        return deleted

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self, before_time: float) -> int:
        """Truncate WAL history older than ``before_time``.

        The sidecar calls this after cutting a block at
        ``before_time``: every sample with ``t < before_time`` is now
        durable in a block.  A CHECKPOINT record restating all live
        series opens a fresh segment, then the contiguous prefix of
        segments whose max sample time is below the horizon is
        deleted.  Returns the number of segments removed.
        """
        started = time.perf_counter()
        with prof.profile("head.checkpoint"):
            entries = bytearray()
            live = sorted(self._refs.items(), key=lambda kv: kv[1])
            for labels, ref in live:
                encoded = json.dumps(labels.as_dict()).encode("utf-8")
                entries += _CKPT_ENTRY.pack(ref, len(encoded)) + encoded
            fresh = self.wal.cut_segment()
            self.wal.append(_HDR.pack(_REC_CHECKPOINT, len(live)) + bytes(entries))
            self.wal.sync()
            keep_from = fresh
            for index in self.wal.segment_indices():
                if index >= fresh:
                    break
                max_time = self._segment_max_time.get(index)
                if max_time is not None and max_time >= before_time:
                    keep_from = index
                    break
            removed = self.wal.truncate_before(keep_from)
            for index in list(self._segment_max_time):
                if index < keep_from:
                    del self._segment_max_time[index]
            self.checkpoints += 1
        self.checkpoint_seconds.observe(time.perf_counter() - started)
        return removed

    def close(self) -> None:
        self.wal.close()

    # -- observability -----------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Expose WAL/persistence counters on a component's registry."""
        wal = self.wal
        registry.gauge_func(
            "ceems_tsdb_wal_records_total",
            lambda: float(wal.records_written),
            help="Records framed into the head WAL.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_bytes_written_total",
            lambda: float(wal.bytes_written),
            help="Bytes framed into the head WAL.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_fsyncs_total",
            lambda: float(wal.fsyncs),
            help="fsync calls issued by the head WAL.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_checkpoints_total",
            lambda: float(self.checkpoints),
            help="WAL checkpoint/truncation passes (one per block cut).",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_segments",
            lambda: float(len(wal.segment_indices())),
            help="Live WAL segment files.",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_replayed_records_total",
            lambda: float(self.replay_result.records),
            help="WAL records replayed when this head opened.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_replayed_samples_total",
            lambda: float(self.replayed_samples),
            help="Samples recovered into the head at open.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_replay_torn",
            lambda: 1.0 if self.replay_result.torn else 0.0,
            help="Whether the last replay stopped at a torn frame.",
        )
        registry.gauge_func(
            "ceems_tsdb_wal_replay_seconds",
            lambda: float(self.replay_seconds),
            help="Wall seconds this head spent replaying its WAL at open.",
        )
        registry.collector(wal.fsync_seconds.collect)
        registry.collector(self.checkpoint_seconds.collect)
