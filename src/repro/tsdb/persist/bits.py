"""Bit-granular writer/reader for the Gorilla chunk codec.

The encoder side is pure Python: a :class:`BitWriter` accumulates
bits MSB-first into a bytearray, which keeps the ingest path free of
numpy churn (mirroring the design note in
:mod:`repro.tsdb.storage`).  The decoder side is numpy-assisted: a
:class:`BitReader` loads the whole chunk into one arbitrary-precision
integer (chunks are a few hundred bytes, so big-int shifts are a
handful of machine words) and the caller converts the collected
uint64 bit patterns back to float64 arrays with a single vectorised
``ndarray.view`` — see :func:`repro.tsdb.persist.chunk.decode_chunk`.
"""

from __future__ import annotations

from repro.common.errors import StorageError


class BitWriter:
    """Append bits MSB-first; pad the final byte with zeros."""

    __slots__ = ("_buf", "_acc", "_nbits")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self.write_bits(bit, 1)

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value`` (an unsigned int)."""
        self._acc = (self._acc << nbits) | (value & ((1 << nbits) - 1))
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._buf.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    @property
    def bit_length(self) -> int:
        return len(self._buf) * 8 + self._nbits

    def getvalue(self) -> bytes:
        out = bytes(self._buf)
        if self._nbits:
            out += bytes([(self._acc << (8 - self._nbits)) & 0xFF])
        return out


class BitReader:
    """Read bits MSB-first from a byte string."""

    __slots__ = ("_value", "_total", "_pos")

    def __init__(self, data: bytes) -> None:
        self._value = int.from_bytes(data, "big")
        self._total = len(data) * 8
        self._pos = 0

    def read_bit(self) -> int:
        return self.read_bits(1)

    def read_bits(self, nbits: int) -> int:
        shift = self._total - self._pos - nbits
        if shift < 0:
            raise StorageError("bit stream exhausted (truncated chunk)")
        self._pos += nbits
        return (self._value >> shift) & ((1 << nbits) - 1)

    @property
    def bits_left(self) -> int:
        return self._total - self._pos
