"""Gorilla-style chunk codec: delta-of-delta timestamps, XOR values.

The layout follows Facebook's Gorilla paper (and Prometheus's XOR
chunk) adapted to this stack's float64 timestamps:

``[u16 count][bitstream]`` where the bitstream is::

    first timestamp   64 raw bits (IEEE-754 of the float64)
    first value       64 raw bits
    per sample i>=1:  <timestamp dod field> <value XOR field>

**Timestamps.**  Each timestamp's IEEE-754 bit pattern is treated as
an unsigned 64-bit integer ``u``.  For positive floats this mapping
is monotone, and regularly spaced samples in the same binade have a
*constant* bit-pattern delta — so the delta-of-delta
``dod = (u_i - u_{i-1}) - (u_{i-1} - u_{i-2})`` is zero for steady
scrape cadences and the common case costs one bit per sample.  The
dod is zigzag-encoded and bucketed Gorilla-style::

    dod == 0          -> '0'
    zigzag < 2^7      -> '10'   + 7 bits
    zigzag < 2^16     -> '110'  + 16 bits
    zigzag < 2^32     -> '1110' + 32 bits
    otherwise         -> '1111' + 66 bits

The 66-bit escape bucket covers the full ``(-2^65, 2^65)`` dod range,
so *any* float64 sequence — irregular, non-monotone, NaN — roundtrips
bit-identically; pathological inputs merely compress worse.

**Values.**  Standard Gorilla XOR: a value equal to its predecessor
writes a single '0' bit; otherwise the XOR's meaningful bits are
written either inside the previous (leading, length) window ('10'
control) or with a fresh 5-bit leading-zero count and 6-bit
meaningful-length header ('11' control; length is stored minus one so
64 fits).

The encoder is pure Python over :class:`~repro.tsdb.persist.bits.BitWriter`;
the decoder collects raw uint64 bit patterns through
:class:`~repro.tsdb.persist.bits.BitReader` and converts them to
float64 arrays with one vectorised numpy ``view`` at the end.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.common.errors import StorageError
from repro.tsdb.persist.bits import BitReader, BitWriter

#: Chunk capacity bound (count is a u16); Prometheus cuts at 120.
MAX_CHUNK_SAMPLES = 65535

#: Default samples per chunk when cutting series into chunks.
DEFAULT_CHUNK_SAMPLES = 120

_PACK_F64 = struct.Struct(">d")
_PACK_U64 = struct.Struct(">Q")


def _float_bits(value: float) -> int:
    """IEEE-754 bit pattern of a float64, as an unsigned int."""
    return _PACK_U64.unpack(_PACK_F64.pack(value))[0]


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


def _write_dod(writer: BitWriter, dod: int) -> None:
    if dod == 0:
        writer.write_bit(0)
        return
    z = _zigzag(dod)
    if z < 1 << 7:
        writer.write_bits(0b10, 2)
        writer.write_bits(z, 7)
    elif z < 1 << 16:
        writer.write_bits(0b110, 3)
        writer.write_bits(z, 16)
    elif z < 1 << 32:
        writer.write_bits(0b1110, 4)
        writer.write_bits(z, 32)
    else:
        writer.write_bits(0b1111, 4)
        writer.write_bits(z, 66)


def _read_dod(reader: BitReader) -> int:
    if reader.read_bit() == 0:
        return 0
    if reader.read_bit() == 0:
        return _unzigzag(reader.read_bits(7))
    if reader.read_bit() == 0:
        return _unzigzag(reader.read_bits(16))
    if reader.read_bit() == 0:
        return _unzigzag(reader.read_bits(32))
    return _unzigzag(reader.read_bits(66))


def encode_chunk(timestamps: Sequence[float], values: Sequence[float]) -> bytes:
    """Encode parallel timestamp/value sequences into one chunk.

    Accepts plain lists or ndarrays; element order is preserved and
    the roundtrip through :func:`decode_chunk` is bit-identical (NaN
    payloads and signed zeros included).
    """
    n = len(timestamps)
    if n != len(values):
        raise StorageError("timestamp/value length mismatch")
    if n > MAX_CHUNK_SAMPLES:
        raise StorageError(f"chunk overflow: {n} > {MAX_CHUNK_SAMPLES} samples")
    writer = BitWriter()
    if n:
        prev_t = _float_bits(float(timestamps[0]))
        prev_v = _float_bits(float(values[0]))
        writer.write_bits(prev_t, 64)
        writer.write_bits(prev_v, 64)
        prev_delta = 0
        prev_leading = -1  # no reusable XOR window yet
        prev_length = 0
        for i in range(1, n):
            t_bits = _float_bits(float(timestamps[i]))
            delta = t_bits - prev_t
            _write_dod(writer, delta - prev_delta)
            prev_delta = delta
            prev_t = t_bits

            v_bits = _float_bits(float(values[i]))
            xor = v_bits ^ prev_v
            prev_v = v_bits
            if xor == 0:
                writer.write_bit(0)
                continue
            leading = 64 - xor.bit_length()
            if leading > 31:
                leading = 31  # 5-bit field; extra zeros become meaningful
            trailing = (xor & -xor).bit_length() - 1
            length = 64 - leading - trailing
            if (
                prev_leading >= 0
                and leading >= prev_leading
                and 64 - leading - length >= 64 - prev_leading - prev_length
            ):
                # Fits the previous (leading, length) window: '10' control.
                writer.write_bits(0b10, 2)
                writer.write_bits(xor >> (64 - prev_leading - prev_length), prev_length)
            else:
                writer.write_bits(0b11, 2)
                writer.write_bits(leading, 5)
                writer.write_bits(length - 1, 6)
                writer.write_bits(xor >> trailing, length)
                prev_leading = leading
                prev_length = length
    return struct.pack(">H", n) + writer.getvalue()


def decode_chunk(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Decode one chunk into ``(timestamps, values)`` float64 arrays."""
    if len(data) < 2:
        raise StorageError("chunk shorter than its count header")
    (n,) = struct.unpack(">H", data[:2])
    t_bits: list[int] = []
    v_bits: list[int] = []
    if n:
        reader = BitReader(data[2:])
        prev_t = reader.read_bits(64)
        prev_v = reader.read_bits(64)
        t_bits.append(prev_t)
        v_bits.append(prev_v)
        prev_delta = 0
        prev_leading = 0
        prev_length = 0
        for _ in range(n - 1):
            prev_delta += _read_dod(reader)
            prev_t = (prev_t + prev_delta) & 0xFFFFFFFFFFFFFFFF
            t_bits.append(prev_t)

            if reader.read_bit() == 0:
                v_bits.append(prev_v)
                continue
            if reader.read_bit() == 0:
                xor = reader.read_bits(prev_length) << (64 - prev_leading - prev_length)
            else:
                prev_leading = reader.read_bits(5)
                prev_length = reader.read_bits(6) + 1
                xor = reader.read_bits(prev_length) << (64 - prev_leading - prev_length)
            prev_v ^= xor
            v_bits.append(prev_v)
    # numpy-assisted tail: one vectorised bit-pattern reinterpretation.
    ts = np.array(t_bits, dtype=np.uint64).view(np.float64)
    vs = np.array(v_bits, dtype=np.uint64).view(np.float64)
    return ts, vs


def iter_chunks(
    timestamps: Sequence[float],
    values: Sequence[float],
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
):
    """Yield ``(encoded, count, min_t, max_t)`` chunk tuples for a series."""
    n = len(timestamps)
    for lo in range(0, n, chunk_samples):
        hi = min(lo + chunk_samples, n)
        ts = timestamps[lo:hi]
        yield (
            encode_chunk(ts, values[lo:hi]),
            hi - lo,
            float(ts[0]),
            float(ts[-1]),
        )
