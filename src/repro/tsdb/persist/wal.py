"""Segmented write-ahead log with CRC32-framed records.

Frame layout (all integers little-endian)::

    [u32 payload length][u32 crc32(payload)][payload bytes]

Records are appended to numbered segment files
(``00000001.wal``, ``00000002.wal``, …); a segment is cut when it
exceeds ``segment_bytes`` or when the owner asks for one (block cut
checkpoints).  Three fsync policies mirror Prometheus's
``--storage.tsdb.wal-*`` spectrum:

* ``"always"`` — fsync after every record (maximum durability);
* ``"batch"`` — fsync on segment cut, checkpoint and explicit
  :meth:`WAL.sync` (the default; a crash loses at most the unsynced
  OS-buffer tail);
* ``"never"`` — rely on the OS entirely (benchmarks).

**Replay** walks the segments in order and yields payloads until the
first *torn frame* — a short header, short payload or CRC mismatch —
then stops cleanly; nothing after a torn frame is trusted, exactly
Prometheus's repair semantics.  The reader never raises on
corruption: the head that owns the WAL decides what "loss beyond the
unflushed tail" means.  New appends always open a *fresh* segment, so
a torn tail is never extended.
"""

from __future__ import annotations

import os
import re
import struct
import time
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from repro.common.errors import StorageError
from repro.obs import prof
from repro.obs.registry import Histogram

_FRAME_HEADER = struct.Struct("<II")
_SEGMENT_RE = re.compile(r"^(\d{8})\.wal$")

FSYNC_POLICIES = ("always", "batch", "never")


def _segment_name(index: int) -> str:
    return f"{index:08d}.wal"


@dataclass
class ReplayResult:
    """Outcome of one WAL replay pass."""

    records: int = 0
    bytes_read: int = 0
    segments: int = 0
    #: Segment index holding the torn frame (0 = clean log).
    torn_segment: int = 0
    #: Byte offset of the torn frame inside that segment.
    torn_offset: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_segment > 0


class WAL:
    """One directory of CRC-framed, size-bounded log segments."""

    def __init__(
        self,
        path: str,
        *,
        segment_bytes: int = 4 << 20,
        fsync: str = "batch",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StorageError(f"unknown fsync policy {fsync!r}; pick one of {FSYNC_POLICIES}")
        self.path = path
        self.segment_bytes = segment_bytes
        self.fsync_policy = fsync
        os.makedirs(path, exist_ok=True)
        self._file: BinaryIO | None = None
        self._file_index = 0
        self._file_size = 0
        # -- counters read by the obs layer ----------------------------
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.segments_created = 0
        self.segments_deleted = 0
        self.last_replay = ReplayResult()
        #: fsync wall-time distribution; the owning head merges it
        #: into a component registry via ``collector(...collect)``.
        self.fsync_seconds = Histogram(
            "ceems_tsdb_wal_fsync_seconds",
            help="Wall seconds per WAL fsync call.",
        )

    # -- segment bookkeeping ---------------------------------------------
    def segment_indices(self) -> list[int]:
        out = []
        for entry in os.listdir(self.path):
            m = _SEGMENT_RE.match(entry)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.path, _segment_name(index))

    @property
    def current_segment(self) -> int:
        return self._file_index

    # -- writing ------------------------------------------------------------
    def _open_next_segment(self) -> None:
        self.close()
        existing = self.segment_indices()
        self._file_index = (existing[-1] + 1) if existing else 1
        self._file = open(self._segment_path(self._file_index), "xb")
        self._file_size = 0
        self.segments_created += 1

    def cut_segment(self) -> int:
        """Force the next append into a fresh segment; returns its index."""
        self._open_next_segment()
        return self._file_index

    def append(self, payload: bytes) -> int:
        """Durably frame one record (fsync per policy).

        Returns the index of the segment the frame was written to —
        captured *before* the eager end-of-segment cut, so callers
        tracking per-segment state (e.g. checkpoint eligibility)
        attribute the record to the file that actually holds it.
        """
        with prof.profile("wal.append"):
            if self._file is None or self._file_size >= self.segment_bytes:
                self._open_next_segment()
            written_segment = self._file_index
            frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            self._file.write(frame)
            self._file_size += len(frame)
            self.records_written += 1
            self.bytes_written += len(frame)
            if self.fsync_policy == "always":
                self.sync()
            if self._file_size >= self.segment_bytes:
                # Cut eagerly so "batch" fsyncs land on segment boundaries.
                self._open_next_segment()
        return written_segment

    def _fsync(self) -> None:
        """flush + fsync the open segment, timed into the histogram."""
        with prof.profile("wal.fsync"):
            started = time.perf_counter()
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsync_seconds.observe(time.perf_counter() - started)
            self.fsyncs += 1

    def sync(self) -> None:
        if self._file is not None:
            self._fsync()

    def close(self) -> None:
        if self._file is not None:
            if self.fsync_policy != "never":
                self._fsync()
            else:
                self._file.flush()
            self._file.close()
            self._file = None

    # -- replay ------------------------------------------------------------
    def replay(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(segment_index, payload)`` up to the first torn frame.

        Populates :attr:`last_replay`; iteration stops (never raises)
        at a short header, short payload or CRC mismatch.
        """
        result = ReplayResult()
        self.last_replay = result
        for index in self.segment_indices():
            result.segments += 1
            with open(self._segment_path(index), "rb") as fh:
                offset = 0
                while True:
                    header = fh.read(_FRAME_HEADER.size)
                    if not header:
                        break  # clean end of segment
                    if len(header) < _FRAME_HEADER.size:
                        result.torn_segment, result.torn_offset = index, offset
                        return
                    length, crc = _FRAME_HEADER.unpack(header)
                    payload = fh.read(length)
                    if len(payload) < length or zlib.crc32(payload) != crc:
                        result.torn_segment, result.torn_offset = index, offset
                        return
                    offset += _FRAME_HEADER.size + length
                    result.records += 1
                    result.bytes_read += _FRAME_HEADER.size + length
                    yield index, payload

    # -- truncation -----------------------------------------------------------
    def truncate_before(self, segment_index: int) -> int:
        """Delete whole segments with index < ``segment_index``.

        The caller guarantees their records are durable elsewhere (in
        a cut block) or re-stated in a later checkpoint record.
        Returns the number of segments removed.
        """
        removed = 0
        for index in self.segment_indices():
            if index >= segment_index:
                break
            if index == self._file_index:
                continue  # never delete the open segment
            os.remove(self._segment_path(index))
            removed += 1
        self.segments_deleted += removed
        return removed
