"""Decode-on-demand chunk handles and the decoded-chunk LRU.

This module is the seam between "where bytes live" and "how queries
read them".  Three chunk handle flavours share one tiny protocol —
``count``, ``min_time``, ``max_time`` and ``arrays() -> (ts, vs)``:

* :class:`MemChunk` — a sealed, immutable Gorilla chunk held in memory
  (the columnar head's mini-chunks).
* :class:`FileChunk` — one CRC-framed chunk inside an mmap'd block
  chunk file; the payload is sliced out of the mapping and decoded
  only when a query actually needs the samples.
* :class:`TailChunk` — a zero-copy view over a series' unsealed tail
  (or a whole list-layout series); nothing to decode.

Decoded ``(timestamps, values)`` arrays are memoised in a process-wide
bounded LRU (:data:`DECODE_CACHE`) so repeated queries over the same
hot chunks decode once; :data:`DECODE_CACHE_STATS` feeds the
``ceems_tsdb_chunk_decode_cache_*_total`` self-telemetry counters.

:class:`ChunkSeries` assembles ordered chunk handles into the read
side of the ``Series`` contract (``arrays``/``window``/
``window_half_open``/``at_or_before``/``query_window_arrays``), with
chunk-granular time pruning: a window read decodes only the chunks
whose ``[min_time, max_time]`` overlaps the request.
:class:`MergedSeries` layers a mutable primary (the live head) over a
chunk-backed secondary with window-local last-write-wins dedup — the
Thanos fan-out's lazy merge.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from collections import OrderedDict

import numpy as np

from repro.tsdb.persist.chunk import decode_chunk

#: Process-wide decoded-chunk LRU counters (self-telemetry).
DECODE_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}

#: Default LRU capacity in *chunks* (~120 samples ≈ 2 KiB decoded per
#: entry → ~8 MiB at the default).  Tunable via --decode-cache-chunks.
DEFAULT_DECODE_CACHE_CHUNKS = 4096

_EMPTY = (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64))

#: Process-unique keys for in-memory chunks.
_MEM_KEYS = itertools.count()


class DecodedChunkCache:
    """Bounded LRU of decoded ``(timestamps, values)`` chunk arrays.

    Keys are supplied by the chunk handles (a process-unique integer
    for :class:`MemChunk`, ``(file key, offset)`` for
    :class:`FileChunk`); values are immutable ndarray pairs, safe to
    hand to any number of concurrent readers.
    """

    def __init__(self, max_chunks: int = DEFAULT_DECODE_CACHE_CHUNKS) -> None:
        self.max_chunks = max_chunks
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            DECODE_CACHE_STATS["misses"] += 1
            return None
        self._entries.move_to_end(key)
        DECODE_CACHE_STATS["hits"] += 1
        return entry

    def put(self, key, arrays) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = arrays
        while len(entries) > self.max_chunks:
            entries.popitem(last=False)
            DECODE_CACHE_STATS["evictions"] += 1

    def trim(self) -> None:
        """Re-enforce the bound after :attr:`max_chunks` shrinks."""
        while len(self._entries) > self.max_chunks:
            self._entries.popitem(last=False)
            DECODE_CACHE_STATS["evictions"] += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide decoded-chunk cache all chunk handles share.
DECODE_CACHE = DecodedChunkCache()


def configure_decode_cache(max_chunks: int) -> None:
    """Resize the process-wide decoded-chunk LRU (CLI knob)."""
    DECODE_CACHE.max_chunks = max(0, int(max_chunks))
    DECODE_CACHE.trim()


class MemChunk:
    """A sealed, immutable Gorilla chunk held in memory."""

    __slots__ = ("encoded", "count", "min_time", "max_time", "_key")

    def __init__(self, encoded: bytes, count: int, min_time: float, max_time: float):
        self.encoded = encoded
        self.count = count
        self.min_time = min_time
        self.max_time = max_time
        self._key = next(_MEM_KEYS)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        cached = DECODE_CACHE.get(self._key)
        if cached is None:
            cached = decode_chunk(self.encoded)
            DECODE_CACHE.put(self._key, cached)
        return cached


class FileChunk:
    """One chunk inside an mmap'd block chunk file, decoded on demand.

    ``source`` is a :class:`repro.tsdb.persist.block.ChunkFile`; the
    frame CRC is validated on first decode, then the decoded arrays
    live in the LRU keyed by ``(file key, frame offset)``.
    """

    __slots__ = ("source", "offset", "length", "count", "min_time", "max_time")

    def __init__(self, source, offset: int, length: int, count: int,
                 min_time: float, max_time: float):
        self.source = source
        self.offset = offset
        self.length = length
        self.count = count
        self.min_time = min_time
        self.max_time = max_time

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        key = (self.source.key, self.offset)
        cached = DECODE_CACHE.get(key)
        if cached is None:
            cached = decode_chunk(self.source.payload(self.offset, self.length))
            DECODE_CACHE.put(key, cached)
        return cached


class TailChunk:
    """Zero-copy view over already-decoded samples; no cache traffic."""

    __slots__ = ("_ts", "_vs", "count", "min_time", "max_time")

    def __init__(self, ts: np.ndarray, vs: np.ndarray):
        self._ts = ts
        self._vs = vs
        self.count = len(ts)
        self.min_time = float(ts[0]) if len(ts) else float("inf")
        self.max_time = float(ts[-1]) if len(ts) else float("-inf")

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self._ts, self._vs


def _concat(parts: list[tuple[np.ndarray, np.ndarray]]) -> tuple[np.ndarray, np.ndarray]:
    if not parts:
        return _EMPTY
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


class ChunkSeries:
    """A read-only series assembled from time-ordered chunk handles.

    Implements the read side of the ``Series`` contract over chunks
    that are decoded on demand: metadata (``count``/``min_time``/
    ``max_time``) answers pruning questions without touching payload
    bytes, so a window read over a 30-day series decodes only the
    chunks overlapping the window.

    Chunks must be non-overlapping and sorted by ``min_time`` —
    exactly what block writers produce; :meth:`add_chunks` re-sorts so
    blocks may register in any order.
    """

    __slots__ = ("labels", "_chunks", "_mins", "_maxs", "_full")

    def __init__(self, labels, chunks: list):
        self.labels = labels
        self._chunks = sorted(chunks, key=lambda c: (c.min_time, c.max_time))
        self._mins = [c.min_time for c in self._chunks]
        self._maxs = [c.max_time for c in self._chunks]
        self._full: tuple[np.ndarray, np.ndarray] | None = None

    def add_chunks(self, chunks: list) -> None:
        self._chunks.extend(chunks)
        self._chunks.sort(key=lambda c: (c.min_time, c.max_time))
        self._mins = [c.min_time for c in self._chunks]
        self._maxs = [c.max_time for c in self._chunks]
        self._full = None

    # -- list-compat accessors ------------------------------------------
    @property
    def timestamps(self) -> list[float]:
        return self.arrays()[0].tolist()

    @property
    def values(self) -> list[float]:
        return self.arrays()[1].tolist()

    # -- reads -----------------------------------------------------------
    def chunks(self, lo: float = float("-inf"), hi: float = float("inf")) -> list:
        i, j = self._overlap(lo, hi)
        return self._chunks[i:j]

    def _overlap(self, lo: float, hi: float) -> tuple[int, int]:
        """Index range of chunks whose [min,max] intersects [lo, hi]."""
        # first chunk whose max_time >= lo ... last whose min_time <= hi
        i = bisect_left(self._maxs, lo)
        j = bisect_right(self._mins, hi)
        return i, j

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        full = self._full
        if full is None:
            full = _concat([c.arrays() for c in self._chunks])
            self._full = full
        return full

    def query_window_arrays(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples of the chunks overlapping ``[lo, hi]`` — a
        contiguous superset of the samples in the window, decoding
        nothing outside it."""
        i, j = self._overlap(lo, hi)
        if i == 0 and j == len(self._chunks):
            return self.arrays()
        return _concat([c.arrays() for c in self._chunks[i:j]])

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        ts, vs = self.query_window_arrays(start, end)
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="right")
        return ts[lo:hi], vs[lo:hi]

    def window_half_open(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        ts, vs = self.query_window_arrays(start, end)
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="left")
        return ts[lo:hi], vs[lo:hi]

    def at_or_before(self, ts: float, lookback: float) -> tuple[float, float] | None:
        # Newest chunk that can hold a sample <= ts: min_time <= ts.
        idx = bisect_right(self._mins, ts) - 1
        if idx < 0:
            return None
        t_arr, v_arr = self._chunks[idx].arrays()
        i = int(np.searchsorted(t_arr, ts, side="right")) - 1
        if i < 0:
            return None  # unreachable given min_time <= ts, kept defensive
        t = float(t_arr[i])
        if t <= ts - lookback:
            return None
        value = float(v_arr[i])
        if value != value:  # NaN: stale marker
            return None
        return t, value

    @property
    def nsamples(self) -> int:
        return sum(c.count for c in self._chunks)

    @property
    def min_time(self) -> float | None:
        return self._mins[0] if self._chunks else None

    @property
    def max_time(self) -> float | None:
        return max(self._maxs) if self._chunks else None


class ChunkIndex:
    """Chunk-backed series across registered blocks, selectable by matchers.

    The lazy :class:`~repro.thanos.store.ObjectStore` keeps one index
    per resolution: registering a block contributes its per-series
    chunk handle lists; dropping a block retracts them.  ``select``
    assembles (and memoises) :class:`ChunkSeries` spanning every
    registered block — the memo is wiped whenever the block population
    changes (``generation`` bump), mirroring the TSDB's series-epoch
    contract.
    """

    MEMO_MAX = 256

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._blocks: dict[str, dict] = {}  # ulid -> {Labels: [chunk handles]}
        #: bumps when blocks register or retract (memo invalidation).
        self.generation = 0
        self._memo: dict = {}
        self._num_series: int | None = None

    def add_block(self, ulid: str, series_chunks) -> None:
        """Register ``(labels, [chunk handles])`` pairs under ``ulid``."""
        self._blocks[ulid] = dict(series_chunks)
        self._bump()

    def remove_block(self, ulid: str) -> bool:
        removed = self._blocks.pop(ulid, None) is not None
        if removed:
            self._bump()
        return removed

    def _bump(self) -> None:
        self.generation += 1
        self._memo.clear()
        self._num_series = None

    @property
    def num_series(self) -> int:
        if self._num_series is None:
            keys: set = set()
            for series in self._blocks.values():
                keys.update(series)
            self._num_series = len(keys)
        return self._num_series

    def select(self, matchers) -> list[ChunkSeries]:
        """Matching series in label order (empty matchers = all)."""
        key = tuple(matchers)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        merged: dict = {}
        for series in self._blocks.values():
            for labels, chunks in series.items():
                if all(m.matches(labels) for m in key):
                    merged.setdefault(labels, []).extend(chunks)
        out = [ChunkSeries(labels, chunks) for labels, chunks in merged.items()]
        out.sort(key=lambda s: tuple(s.labels))
        if len(self._memo) >= self.MEMO_MAX:
            self._memo.clear()
        self._memo[key] = out
        return out

    def all_series(self) -> list[ChunkSeries]:
        return self.select(())

    def label_values(self, label_name: str) -> set[str]:
        out: set[str] = set()
        for series in self._blocks.values():
            for labels in series:
                value = labels.get(label_name)
                if value:
                    out.add(value)
        return out


class MergedSeries:
    """Lazy last-write-wins merge of a primary over a secondary series.

    The Thanos fan-out overlays the hot head (primary) on store data
    (secondary).  Reads are window-local: both sides are read through
    ``query_window_arrays`` and deduplicated only within the requested
    window, which equals global dedup restricted to the window because
    equal timestamps land on the same side of any time bound.

    Cached merges are only valid while both sides are unmutated — the
    owning memo (fan-out select cache) epoch-validates and rebuilds
    ``MergedSeries`` objects on any mutation.
    """

    __slots__ = ("labels", "primary", "secondary", "_full")

    def __init__(self, primary, secondary, labels=None):
        self.labels = labels if labels is not None else primary.labels
        self.primary = primary
        self.secondary = secondary
        self._full: tuple[np.ndarray, np.ndarray] | None = None

    @staticmethod
    def _merge(p: tuple, s: tuple) -> tuple[np.ndarray, np.ndarray]:
        p_ts, p_vs = p
        s_ts, s_vs = s
        if not len(s_ts):
            return p_ts, p_vs
        if not len(p_ts):
            return s_ts, s_vs
        keep = ~np.isin(s_ts, p_ts)  # primary wins duplicate timestamps
        ts = np.concatenate([s_ts[keep], p_ts])
        vs = np.concatenate([s_vs[keep], p_vs])
        order = np.argsort(ts, kind="stable")
        return ts[order], vs[order]

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        full = self._full
        if full is None:
            full = self._merge(self.primary.arrays(), self.secondary.arrays())
            self._full = full
        return full

    def query_window_arrays(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        if self._full is not None:
            return self._full
        return self._merge(
            self.primary.query_window_arrays(lo, hi),
            self.secondary.query_window_arrays(lo, hi),
        )

    # -- list-compat accessors ------------------------------------------
    @property
    def timestamps(self) -> list[float]:
        return self.arrays()[0].tolist()

    @property
    def values(self) -> list[float]:
        return self.arrays()[1].tolist()

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        ts, vs = self.query_window_arrays(start, end)
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="right")
        return ts[lo:hi], vs[lo:hi]

    def window_half_open(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        ts, vs = self.query_window_arrays(start, end)
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="left")
        return ts[lo:hi], vs[lo:hi]

    def at_or_before(self, ts: float, lookback: float) -> tuple[float, float] | None:
        t_arr, v_arr = self.query_window_arrays(ts - lookback, ts)
        idx = int(np.searchsorted(t_arr, ts, side="right")) - 1
        if idx < 0:
            return None
        t = float(t_arr[idx])
        if t <= ts - lookback:
            return None
        value = float(v_arr[idx])
        if value != value:  # NaN: stale marker
            return None
        return t, value

    @property
    def nsamples(self) -> int:
        return len(self.arrays()[0])

    @property
    def min_time(self) -> float | None:
        ts = self.arrays()[0]
        return float(ts[0]) if len(ts) else None

    @property
    def max_time(self) -> float | None:
        ts = self.arrays()[0]
        return float(ts[-1]) if len(ts) else None
