"""Append-optimised in-memory TSDB with an inverted label index.

Design points, mirroring what matters about Prometheus for this stack:

* **Appends are cheap**: the default :class:`ColumnarSeries` head
  appends into growable numpy ring buffers (amortised O(1), no numpy
  scalar boxing on the comparison path); the original list-based
  :class:`Series` remains selectable (``head_layout="list"``) as a
  differential-testing reference.  A scrape of 1400 nodes appends
  tens of thousands of samples per interval, so this is the
  throughput-critical path (bench E7).
* **Old head segments seal into Gorilla mini-chunks** — lazily, never
  on the append path — so :meth:`ColumnarSeries.chunks` serves the
  same chunk-handle API as persisted blocks (see
  ``persist/chunkio.py``) and the query engine can evaluate over
  chunks wherever the samples live.
* **Selection uses an inverted index**: label name/value → set of
  series ids, intersected across equality matchers before any regex
  work, the same trick Prometheus's head block uses.
* **Range reads are vectorized**: a window read binary-searches the
  timestamp list and returns numpy views for the PromQL engine.
* **Columnar reads are cached**: :meth:`Series.arrays` materialises a
  series as a pair of ndarrays exactly once between mutations, so the
  columnar range evaluator can ``searchsorted`` thousands of step
  timestamps against one snapshot instead of re-walking Python lists
  per step.  :meth:`TSDB.select` memoises selector results keyed by
  the matcher tuple — the memo survives appends (``Series`` objects
  mutate in place) and is invalidated only when series are created or
  deleted, so a dashboard burst or a rule group touching the same
  selectors pays the index intersection once.
* **Retention** drops samples older than the horizon; **series
  deletion** implements the API server's cardinality cleanup (paper
  §II.C: *"remove metrics of workloads that did not last more than
  the configured cutoff"*).
* Out-of-order appends within a series are rejected, as Prometheus
  rejects them; duplicate timestamps overwrite (last-write-wins) to
  keep recording-rule re-evaluation idempotent.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import StorageError
from repro.tsdb.exposition import Exemplar
from repro.tsdb.model import METRIC_NAME_LABEL, Labels, Matcher, MatchOp

#: Process-wide snapshot-cache counters for :meth:`Series.arrays` —
#: per-instance bookkeeping would bloat every Series object for a
#: number only the self-telemetry endpoint reads.
SNAPSHOT_STATS = {"hits": 0, "builds": 0}

#: Samples per sealed head mini-chunk (Prometheus cuts head chunks at
#: 120 samples; kept as a local constant so the hot path never imports
#: the persist package).
HEAD_SEAL_SAMPLES = 120

#: Valid ``head_layout`` values for :class:`TSDB`.
HEAD_LAYOUTS = ("columnar", "list")


@dataclass
class Series:
    """One time series: immutable identity + growing sample arrays."""

    labels: Labels
    #: Storage-assigned series reference (see :meth:`TSDB.get_ref`).
    #: Monotonic and never reused, so a ref held after the series is
    #: dropped can only dangle — it can never alias another series.
    ref: int = 0
    timestamps: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: Cached ndarray snapshot of (timestamps, values); rebuilt lazily
    #: after any mutation.  See :meth:`arrays`.
    _snapshot: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def append(self, timestamp: float, value: float) -> None:
        if self.timestamps:
            last = self.timestamps[-1]
            if timestamp < last:
                raise StorageError(
                    f"out-of-order sample for {self.labels}: {timestamp} < {last}"
                )
            if timestamp == last:
                self.values[-1] = value  # idempotent re-ingest
                self._snapshot = None
                return
        self.timestamps.append(timestamp)
        self.values.append(value)
        self._snapshot = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The whole series as ``(timestamps, values)`` float64 arrays.

        The snapshot is cached until the next append/overwrite/
        truncation, so repeated columnar reads (one per selector per
        range query) cost one list conversion, not one per step.
        Callers must treat the returned arrays as read-only.
        """
        snap = self._snapshot
        if snap is None:
            SNAPSHOT_STATS["builds"] += 1
            snap = (
                np.asarray(self.timestamps, dtype=np.float64),
                np.asarray(self.values, dtype=np.float64),
            )
            self._snapshot = snap
        else:
            SNAPSHOT_STATS["hits"] += 1
        return snap

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t <= end`` as zero-copy numpy views."""
        ts, vs = self.arrays()
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="right")
        return ts[lo:hi], vs[lo:hi]

    def window_half_open(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t < end`` (block-window semantics).

        Block boundaries are half-open in Prometheus/Thanos; callers
        cutting ``[lo, hi)`` windows use this instead of shrinking the
        right edge by an epsilon.
        """
        ts, vs = self.arrays()
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="left")
        return ts[lo:hi], vs[lo:hi]

    def query_window_arrays(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        """Pruned columnar read: a contiguous superset of ``[lo, hi]``.

        The head lives in memory, so the whole snapshot *is* the
        cheapest superset — this method exists so the engine can use
        one protocol for head series and chunk-backed series (where
        pruning skips decoding non-overlapping chunks).
        """
        return self.arrays()

    def chunks(self, lo: float = float("-inf"), hi: float = float("inf")) -> list:
        """Chunk handles overlapping ``[lo, hi]`` — unified read API.

        A list-layout series has no sealed chunks; its whole snapshot
        is served as one zero-copy tail chunk so head and block reads
        share the decode-on-demand interface.
        """
        from repro.tsdb.persist.chunkio import TailChunk

        ts, vs = self.arrays()
        if not len(ts) or ts[-1] < lo or ts[0] > hi:
            return []
        return [TailChunk(ts, vs)]

    def _extend(self, ts_list: list[float], vs_list: list[float]) -> None:
        """Bulk tail extension; caller guarantees strictly-increasing
        timestamps landing after the current tail (see
        :meth:`TSDB.append_array`)."""
        self.timestamps.extend(ts_list)
        self.values.extend(vs_list)
        self._snapshot = None

    def at_or_before(self, ts: float, lookback: float) -> tuple[float, float] | None:
        """Most recent sample in ``(ts - lookback, ts]`` (instant read).

        A staleness marker (NaN sample) as the most recent point means
        the series has disappeared: instant reads return nothing, with
        no lookback grace — Prometheus staleness semantics.
        """
        idx = bisect.bisect_right(self.timestamps, ts) - 1
        if idx < 0:
            return None
        t = self.timestamps[idx]
        if t <= ts - lookback:
            return None
        value = self.values[idx]
        if value != value:  # NaN: stale marker
            return None
        return t, self.values[idx]

    def truncate_before(self, cutoff: float) -> int:
        """Drop samples with ``t < cutoff``; returns how many."""
        lo = bisect.bisect_left(self.timestamps, cutoff)
        if lo:
            del self.timestamps[:lo]
            del self.values[:lo]
            self._snapshot = None
        return lo

    @property
    def nsamples(self) -> int:
        return len(self.timestamps)

    @property
    def min_time(self) -> float | None:
        return self.timestamps[0] if self.timestamps else None

    @property
    def max_time(self) -> float | None:
        return self.timestamps[-1] if self.timestamps else None


class ColumnarSeries:
    """Columnar head series: samples live in growable numpy buffers.

    Layout::

        _ts/_vs:  [ dead | sealed ........ | unsealed tail ]  | free |
                    ^_start                                  ^_start+_len

    * The live region is ``_ts[_start : _start + _len]``; retention
      advances ``_start`` (O(1)) instead of shifting elements.  When
      the tail runs out of room the buffer compacts in place if at
      least half of it is dead space, otherwise it doubles — amortised
      O(1) appends either way.
    * ``_last`` caches the newest timestamp as the *raw Python value*
      passed in, so the ordering check on the hot ingest path never
      reads (and boxes) a numpy scalar.
    * **Appends are staged.**  Fresh samples land in plain Python
      lists (``_stage_ts``/``_stage_vs``) — a CPython list append is
      ~2x cheaper than a numpy scalar store — and :meth:`_flush`
      moves them into the ring buffers with one vectorised slice
      assignment on the first read.  Ingest costs exactly what the
      list head pays; every read path flushes first.
    * **Sealing is lazy.**  Full :data:`HEAD_SEAL_SAMPLES` segments
      behind the tail are Gorilla-encoded into immutable mini-chunks
      only when :meth:`chunks` is called — pure-Python encoding costs
      ~5µs/sample and must never ride the append path.  The sealed
      region is always a strict prefix of the live region and never
      includes the newest sample, so an equal-timestamp overwrite
      (which rewrites the tail value in place) cannot invalidate a
      sealed chunk.
    * :meth:`arrays`/:meth:`window` return zero-copy views of the live
      region; callers must treat them as read-only snapshots and
      consume them before the next mutation.
    """

    __slots__ = (
        "labels",
        "ref",
        "seal_samples",
        "_ts",
        "_vs",
        "_start",
        "_len",
        "_last",
        "_stage_ts",
        "_stage_vs",
        "_snapshot",
        "_chunks",
        "_sealed_count",
    )

    MIN_CAPACITY = 64

    def __init__(self, labels: Labels, ref: int = 0, seal_samples: int = HEAD_SEAL_SAMPLES):
        self.labels = labels
        self.ref = ref
        self.seal_samples = seal_samples
        self._ts = np.empty(self.MIN_CAPACITY, dtype=np.float64)
        self._vs = np.empty(self.MIN_CAPACITY, dtype=np.float64)
        self._start = 0
        self._len = 0
        self._last: float | None = None
        # Append staging: fresh samples land in plain Python lists
        # (a CPython list append beats a numpy scalar store ~2x) and
        # are flushed into the ring buffers *vectorised* on the first
        # read.  Ingest therefore costs exactly what the list head
        # pays, while reads keep columnar snapshots incremental.
        self._stage_ts: list[float] = []
        self._stage_vs: list[float] = []
        self._snapshot: tuple[np.ndarray, np.ndarray] | None = None
        self._chunks: list = []
        self._sealed_count = 0

    # -- list-compat accessors (tests, debug dumps, exposition) ----------
    @property
    def timestamps(self) -> list[float]:
        self._flush()
        return self._ts[self._start : self._start + self._len].tolist()

    @property
    def values(self) -> list[float]:
        self._flush()
        return self._vs[self._start : self._start + self._len].tolist()

    # -- ingest ----------------------------------------------------------
    def _make_room(self, extra: int) -> int:
        """Compact or grow so ``extra`` slots follow the live region.

        Returns the new end index of the live region (== ``_len``
        afterwards, since the region is re-anchored at 0).
        """
        n = self._len
        cap = len(self._ts)
        if n + extra <= cap // 2:
            new_cap = cap  # enough dead space: compact within the buffer
        else:
            new_cap = max(self.MIN_CAPACITY, cap)
            while new_cap < (n + extra) * 2:
                new_cap *= 2
        ts = np.empty(new_cap, dtype=np.float64)
        vs = np.empty(new_cap, dtype=np.float64)
        start = self._start
        ts[:n] = self._ts[start : start + n]
        vs[:n] = self._vs[start : start + n]
        self._ts = ts
        self._vs = vs
        self._start = 0
        self._snapshot = None
        return n

    def append(self, timestamp: float, value: float) -> None:
        last = self._last
        if last is not None:
            if timestamp < last:
                raise StorageError(
                    f"out-of-order sample for {self.labels}: {timestamp} < {last}"
                )
            if timestamp == last:
                # idempotent re-ingest: the tail is the newest staged
                # sample when any are pending, else the ring tail
                if self._stage_vs:
                    self._stage_vs[-1] = value
                else:
                    self._vs[self._start + self._len - 1] = value
                self._snapshot = None
                return
        self._stage_ts.append(timestamp)
        self._stage_vs.append(value)
        self._last = timestamp
        self._snapshot = None

    def _extend(self, ts_list: list[float], vs_list: list[float]) -> None:
        """Bulk tail extension (see :meth:`Series._extend`)."""
        self._stage_ts.extend(ts_list)
        self._stage_vs.extend(vs_list)
        self._last = ts_list[-1]
        self._snapshot = None

    def _flush(self) -> None:
        """Move staged samples into the ring buffers, vectorised."""
        stage = self._stage_ts
        if not stage:
            return
        n = len(stage)
        end = self._start + self._len
        if end + n > len(self._ts):
            end = self._make_room(n)
        self._ts[end : end + n] = stage
        self._vs[end : end + n] = self._stage_vs
        self._len += n
        stage.clear()
        self._stage_vs.clear()

    # -- reads -----------------------------------------------------------
    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The live region as zero-copy ``(timestamps, values)`` views."""
        self._flush()
        snap = self._snapshot
        if snap is None:
            SNAPSHOT_STATS["builds"] += 1
            end = self._start + self._len
            snap = (self._ts[self._start : end], self._vs[self._start : end])
            self._snapshot = snap
        else:
            SNAPSHOT_STATS["hits"] += 1
        return snap

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t <= end`` as zero-copy numpy views."""
        ts, vs = self.arrays()
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="right")
        return ts[lo:hi], vs[lo:hi]

    def window_half_open(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t < end`` (block-window semantics)."""
        ts, vs = self.arrays()
        lo = np.searchsorted(ts, start, side="left")
        hi = np.searchsorted(ts, end, side="left")
        return ts[lo:hi], vs[lo:hi]

    def query_window_arrays(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        """Pruned columnar read (see :meth:`Series.query_window_arrays`)."""
        return self.arrays()

    def at_or_before(self, ts: float, lookback: float) -> tuple[float, float] | None:
        """Most recent sample in ``(ts - lookback, ts]`` (instant read)."""
        t_arr, v_arr = self.arrays()
        idx = int(np.searchsorted(t_arr, ts, side="right")) - 1
        if idx < 0:
            return None
        t = float(t_arr[idx])
        if t <= ts - lookback:
            return None
        value = float(v_arr[idx])
        if value != value:  # NaN: stale marker
            return None
        return t, value

    # -- chunk API -------------------------------------------------------
    def seal(self) -> int:
        """Gorilla-encode full segments behind the tail; returns chunks cut.

        Called lazily from :meth:`chunks` — never from the append
        path.  At least one live sample stays unsealed so tail
        overwrites can never touch a sealed chunk.
        """
        self._flush()
        if self._sealed_count + self.seal_samples >= self._len:
            return 0
        from repro.tsdb.persist.chunk import encode_chunk
        from repro.tsdb.persist.chunkio import MemChunk

        sealed = 0
        seal_n = self.seal_samples
        while self._sealed_count + seal_n < self._len:
            lo = self._start + self._sealed_count
            hi = lo + seal_n
            ts = self._ts[lo:hi]
            vs = self._vs[lo:hi]
            self._chunks.append(
                MemChunk(encode_chunk(ts, vs), seal_n, float(ts[0]), float(ts[-1]))
            )
            self._sealed_count += seal_n
            sealed += 1
        return sealed

    def chunks(self, lo: float = float("-inf"), hi: float = float("inf")) -> list:
        """Chunk handles overlapping ``[lo, hi]``: sealed mini-chunks
        plus one zero-copy tail chunk over the unsealed samples."""
        from repro.tsdb.persist.chunkio import TailChunk

        self.seal()
        out = [c for c in self._chunks if c.max_time >= lo and c.min_time <= hi]
        ts, vs = self.arrays()
        tail_ts = ts[self._sealed_count :]
        tail_vs = vs[self._sealed_count :]
        if len(tail_ts) and tail_ts[-1] >= lo and tail_ts[0] <= hi:
            out.append(TailChunk(tail_ts, tail_vs))
        return out

    def _drop_sealed_prefix(self, dropped: int) -> None:
        """Retire sealed chunks after ``dropped`` oldest samples left."""
        if not self._sealed_count:
            return
        chunks = self._chunks
        while chunks and dropped and chunks[0].count <= dropped:
            first = chunks.pop(0)
            dropped -= first.count
            self._sealed_count -= first.count
        if dropped:
            # The trim cut through a sealed chunk.  The sealed region
            # must stay a contiguous prefix of the live region, so the
            # cut chunk and everything after it reseal lazily from the
            # ring buffer.
            chunks.clear()
            self._sealed_count = 0

    # -- maintenance -----------------------------------------------------
    def truncate_before(self, cutoff: float) -> int:
        """Drop samples with ``t < cutoff``; returns how many."""
        self._flush()
        end = self._start + self._len
        live = self._ts[self._start : end]
        lo = int(np.searchsorted(live, cutoff, side="left"))
        if lo:
            self._start += lo
            self._len -= lo
            if not self._len:
                self._last = None
            self._snapshot = None
            self._drop_sealed_prefix(lo)
        return lo

    @property
    def nsamples(self) -> int:
        return self._len + len(self._stage_ts)

    @property
    def min_time(self) -> float | None:
        if self._len:
            return float(self._ts[self._start])
        if self._stage_ts:
            return self._stage_ts[0]
        return None

    @property
    def max_time(self) -> float | None:
        # `_last` is None exactly when the series is empty (appends
        # set it; the drop paths reset it on emptying).
        return self._last


@dataclass(slots=True)
class ExemplarRecord:
    """One stored exemplar plus the series identity it rides on.

    The series labels are snapshotted at append time so a stored
    exemplar stays resolvable (and selectable by matchers) even after
    retention or cardinality cleanup drops the series itself.
    """

    series_labels: Labels
    labels: dict[str, str]
    value: float
    #: Exemplar timestamp in seconds — the exposition timestamp when
    #: the exporter supplied one, else the scrape timestamp.
    timestamp: float
    #: Logical scrape time this exemplar was ingested at.
    scrape_ts: float
    #: Series ref the exemplar was keyed under (eviction bookkeeping).
    ref: int = 0


class CircularExemplarStorage:
    """Bounded exemplar store keyed by series ref (Prometheus analogue).

    Two caps bound memory: a global FIFO (``capacity``) and a
    per-series ring (``per_series``), both evicting oldest-first.
    Sequence numbers are monotonic and assigned in append order, so
    the global FIFO order is exactly ingest order; per-series eviction
    leaves a tombstone in the FIFO that the global eviction pass skips
    lazily.  A re-appended exemplar identical to the newest one of its
    series is dropped (Prometheus's duplicate rule — one exemplar per
    distinct observation, however many scrapes re-expose it).
    """

    def __init__(self, capacity: int = 4096, per_series: int = 10) -> None:
        if capacity <= 0 or per_series <= 0:
            raise StorageError("exemplar storage caps must be positive")
        self.capacity = capacity
        self.per_series = per_series
        self._records: dict[int, ExemplarRecord] = {}
        self._order: deque[int] = deque()
        self._by_ref: dict[int, deque[int]] = {}
        self._next_seq = 1
        self.appended_total = 0
        self.dropped_total = 0

    def add(
        self,
        ref: int,
        series_labels: Labels,
        exemplar: Exemplar,
        scrape_ts: float,
    ) -> bool:
        """Store one exemplar; returns ``False`` when dropped as a dup."""
        timestamp = exemplar.timestamp if exemplar.timestamp is not None else scrape_ts
        ring = self._by_ref.get(ref)
        if ring is None:
            ring = self._by_ref[ref] = deque()
        elif ring:
            newest = self._records[ring[-1]]
            if (
                newest.labels == exemplar.labels
                and (newest.value == exemplar.value
                     or repr(newest.value) == repr(exemplar.value))  # NaN-safe
                and newest.timestamp == timestamp
            ):
                self.dropped_total += 1
                return False
        seq = self._next_seq
        self._next_seq = seq + 1
        self._records[seq] = ExemplarRecord(
            series_labels=series_labels,
            labels=dict(exemplar.labels),
            value=exemplar.value,
            timestamp=timestamp,
            scrape_ts=scrape_ts,
            ref=ref,
        )
        self._order.append(seq)
        ring.append(seq)
        self.appended_total += 1
        if len(ring) > self.per_series:
            doomed = ring.popleft()
            del self._records[doomed]  # tombstone: stays in _order
            self.dropped_total += 1
        while len(self._records) > self.capacity:
            doomed = self._order.popleft()
            record = self._records.pop(doomed, None)
            if record is None:
                continue  # per-series tombstone
            # Seqs are monotonic, so the globally-oldest live seq is
            # also its own series' oldest.
            doomed_ring = self._by_ref.get(record.ref)
            if doomed_ring and doomed_ring[0] == doomed:
                doomed_ring.popleft()
                if not doomed_ring:
                    del self._by_ref[record.ref]
            self.dropped_total += 1
        return True

    def select(
        self,
        matchers: Sequence[Matcher],
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> list[tuple[Labels, list[ExemplarRecord]]]:
        """Exemplars of matching series within ``[start, end]``.

        Matches against the snapshotted series labels, so exemplars of
        since-deleted series still resolve.  Results are grouped by
        series (label-sorted) with exemplars in ingest order.
        """
        grouped: dict[Labels, list[ExemplarRecord]] = {}
        for seq in self._order:
            record = self._records.get(seq)
            if record is None:
                continue
            if not (start <= record.timestamp <= end):
                continue
            if all(m.matches(record.series_labels) for m in matchers):
                grouped.setdefault(record.series_labels, []).append(record)
        return sorted(grouped.items(), key=lambda kv: tuple(kv[0]))

    def __len__(self) -> int:
        return len(self._records)


class TSDB:
    """The time-series database.

    Parameters
    ----------
    retention:
        Sample retention horizon in seconds (enforced by
        :meth:`apply_retention`, which the scrape loop calls
        periodically).  ``0`` disables retention.
    name:
        Instance name, used by the LB and the Thanos fan-out.
    head_layout:
        ``"columnar"`` (default) stores samples in numpy ring buffers
        (:class:`ColumnarSeries`); ``"list"`` keeps the original
        Python-list :class:`Series` as a differential-testing
        reference (``--head-layout=list``).

    Epoch / cache invalidation contract
    -----------------------------------
    * ``series_epoch`` bumps exactly when the series *population*
      changes (creation in :meth:`_get_or_create_series`, deletion in
      :meth:`_drop_series`); ``data_epoch`` bumps on every sample
      mutation (append, bulk append, retention truncation, series
      deletion).
    * ``_select_cache`` maps matcher tuples to lists of live
      :class:`Series` objects.  Because ``Series`` mutate in place,
      entries stay correct across *sample* mutations — retention that
      drops samples but no series deliberately leaves the memo
      populated (it only bumps ``data_epoch``) — and are invalidated
      wholesale whenever the population changes.  Downstream memos
      that **copy** sample data out of a ``Series`` (e.g. the Thanos
      fan-out merge) must instead validate against
      ``(series_epoch, data_epoch)``, since an in-place mutation
      silently outdates their copies.
    * ``min_time``/``max_time`` are recomputed via
      :meth:`_recompute_time_bounds` on every drop path; before the
      audit ``max_time`` survived a fully-emptied store and
      :meth:`delete_series` never refreshed either bound, which could
      leave the sidecar watermark pointing at vanished data.
    """

    #: Upper bound on memoised selector results before wholesale reset.
    SELECT_CACHE_MAX = 512

    def __init__(
        self,
        retention: float = 0.0,
        name: str = "tsdb",
        head_layout: str = "columnar",
    ) -> None:
        if head_layout not in HEAD_LAYOUTS:
            raise StorageError(
                f"unknown head_layout {head_layout!r}; expected one of {HEAD_LAYOUTS}"
            )
        self.name = name
        self.retention = retention
        self.head_layout = head_layout
        self._series: dict[Labels, Series] = {}
        # inverted index: (label_name, label_value) -> set of Labels keys
        self._index: dict[tuple[str, str], set[Labels]] = {}
        # series refs: small-integer handles the scrape fast lane uses
        # to append without hashing a Labels key.  Monotonic, never
        # reused; dropped series leave a hole so stale refs dangle
        # instead of aliasing (see append_ref).
        self._series_by_ref: dict[int, Series] = {}
        self._next_ref = 1
        self.samples_ingested = 0
        self.min_time: float | None = None
        self.max_time: float | None = None
        # selector memo: matcher tuple -> selected series (in label
        # order).  Valid across appends (Series mutate in place);
        # invalidated whenever the series population changes.
        self._select_cache: dict[tuple[Matcher, ...], list[Series]] = {}
        self.select_cache_hits = 0
        self.select_cache_misses = 0
        #: bumps when series are created or deleted
        self.series_epoch = 0
        #: bumps on any sample mutation (append, retention, delete)
        self.data_epoch = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry` sink; when
        #: set, selects inside an active trace record child spans.
        self.telemetry = None
        #: Bounded exemplar store fed by the scrape path (both lanes).
        self.exemplars = CircularExemplarStorage()

    # -- ingest ----------------------------------------------------------
    def _get_or_create_series(self, labels: Labels) -> Series:
        series = self._series.get(labels)
        if series is None:
            if not labels.metric_name:
                raise StorageError(f"series without a metric name: {labels!r}")
            ref = self._next_ref
            self._next_ref = ref + 1
            if self.head_layout == "list":
                series = Series(labels=labels, ref=ref)
            else:
                series = ColumnarSeries(labels, ref=ref)
            self._series[labels] = series
            self._series_by_ref[ref] = series
            for pair in labels:
                self._index.setdefault(pair, set()).add(labels)
            self.series_epoch += 1
            self._select_cache.clear()
        return series

    def append(self, labels: Labels, timestamp: float, value: float) -> None:
        """Append one sample, creating the series on first sight."""
        series = self._get_or_create_series(labels)
        series.append(timestamp, value)
        self.samples_ingested += 1
        self.data_epoch += 1
        if self.min_time is None or timestamp < self.min_time:
            self.min_time = timestamp
        if self.max_time is None or timestamp > self.max_time:
            self.max_time = timestamp

    def append_many(self, batch: Iterable[tuple[Labels, float, float]]) -> int:
        count = 0
        for labels, ts, value in batch:
            self.append(labels, ts, value)
            count += 1
        return count

    def append_array(self, labels: Labels, timestamps, values) -> int:
        """Bulk-append a sorted run of samples to one series.

        The sidecar's block copies and WAL replay ingest whole window
        slices; a strictly increasing run landing after the series'
        current tail extends the sample lists in one slice operation
        (one epoch bump, one snapshot invalidation) instead of a
        per-sample Python loop.  Runs that overlap the tail fall back
        to :meth:`Series.append` semantics sample by sample
        (last-write-wins on duplicates, out-of-order rejected).

        The batch is **all-or-nothing**: ordering is validated before
        any sample is applied, so an out-of-order run raises
        :class:`StorageError` without mutating the store — callers
        that journal after the in-memory apply (the persistent head)
        never diverge from memory on a rejected batch.
        """
        n = len(timestamps)
        if n != len(values):
            raise StorageError("timestamp/value length mismatch")
        if n == 0:
            return 0
        ts_list = [float(t) for t in timestamps]
        vs_list = [float(v) for v in values]
        existing = self._series.get(labels)
        last = existing.max_time if existing is not None else None
        increasing = all(a < b for a, b in zip(ts_list, ts_list[1:]))
        fast_path = increasing and (last is None or ts_list[0] > last)
        if not fast_path:
            # Validate the whole run against Series.append semantics
            # (equal-to-tail overwrites, regressions reject) before
            # touching the store, so a bad batch applies nothing.
            run_last = last
            for ts in ts_list:
                if run_last is not None and ts < run_last:
                    raise StorageError(
                        f"out-of-order sample for {labels}: {ts} < {run_last}"
                    )
                run_last = ts
        series = self._get_or_create_series(labels)
        if fast_path:
            series._extend(ts_list, vs_list)
        else:
            for ts, value in zip(ts_list, vs_list):
                series.append(ts, value)
        self.samples_ingested += n
        self.data_epoch += 1
        lo, hi = (ts_list[0], ts_list[-1]) if increasing else (min(ts_list), max(ts_list))
        if self.min_time is None or lo < self.min_time:
            self.min_time = lo
        if self.max_time is None or hi > self.max_time:
            self.max_time = hi
        return n

    # -- append-by-ref (scrape fast lane) ---------------------------------
    def get_ref(self, labels: Labels) -> int:
        """Resolve labels to a stable series ref, creating the series.

        The ref is the scrape cache's handle: resolving once per
        *distinct series text* lets every later sample of that series
        skip label parsing, ``Labels`` hashing and the series-map
        lookup.  Refs stay valid until the series is dropped
        (retention, :meth:`delete_series`); they are never reused, so
        a stale ref fails loudly instead of appending elsewhere.
        """
        return self._get_or_create_series(labels).ref

    def resolve_ref(self, ref: int) -> Series | None:
        """The live series behind ``ref``, or ``None`` if it was dropped."""
        return self._series_by_ref.get(ref)

    def append_ref(self, ref: int, timestamp: float, value: float) -> None:
        """Append one sample to the series behind ``ref``.

        Raises :class:`StorageError` when the ref no longer resolves
        (series deleted since :meth:`get_ref`) — callers re-resolve
        via labels, exactly like Prometheus's scrape loop on a head
        ref miss.
        """
        series = self._series_by_ref.get(ref)
        if series is None:
            raise StorageError(f"unknown series ref {ref}")
        series.append(timestamp, value)
        self.samples_ingested += 1
        self.data_epoch += 1
        if self.min_time is None or timestamp < self.min_time:
            self.min_time = timestamp
        if self.max_time is None or timestamp > self.max_time:
            self.max_time = timestamp

    def append_refs(
        self, timestamp: float, pairs: Sequence[tuple[int, float]]
    ) -> tuple[int, list[tuple[int, float]]]:
        """Batched same-timestamp append by ref — the scrape hot loop.

        One scrape cycle appends every sample of a target at the same
        logical instant, so the timestamp comparison, epoch bump and
        time-bound updates are hoisted out of the per-sample loop and
        ``Series.append`` is inlined (call overhead matters at ~25k
        samples per Jean-Zay cycle).  Semantics per sample are exactly
        ``Series.append``: later-than-tail extends, equal-to-tail
        overwrites (idempotent re-ingest), earlier-than-tail raises.

        Returns ``(appended, dead)`` where ``dead`` holds the
        ``(ref, value)`` pairs whose ref no longer resolves; the
        caller re-resolves those through labels.
        """
        by_ref = self._series_by_ref
        dead: list[tuple[int, float]] = []
        count = 0
        if self.head_layout == "list":
            for ref, value in pairs:
                series = by_ref.get(ref)
                if series is None:
                    dead.append((ref, value))
                    continue
                timestamps = series.timestamps
                if timestamps:
                    last = timestamps[-1]
                    if last >= timestamp:
                        if last > timestamp:
                            raise StorageError(
                                f"out-of-order sample for {series.labels}: {timestamp} < {last}"
                            )
                        series.values[-1] = value
                        series._snapshot = None
                        count += 1
                        continue
                timestamps.append(timestamp)
                series.values.append(value)
                series._snapshot = None
                count += 1
        else:
            # Columnar twin of the loop above, ColumnarSeries.append
            # inlined.  `_last` is a cached Python float, so the
            # ordering check costs one comparison — no numpy scalar
            # boxing per sample — and fresh samples go to the staging
            # lists (flushed vectorised on the next read), so the hot
            # loop never touches a numpy buffer.
            for ref, value in pairs:
                series = by_ref.get(ref)
                if series is None:
                    dead.append((ref, value))
                    continue
                last = series._last
                if last is not None and last >= timestamp:
                    if last > timestamp:
                        raise StorageError(
                            f"out-of-order sample for {series.labels}: {timestamp} < {last}"
                        )
                    if series._stage_vs:
                        series._stage_vs[-1] = value
                    else:
                        series._vs[series._start + series._len - 1] = value
                    series._snapshot = None
                    count += 1
                    continue
                series._stage_ts.append(timestamp)
                series._stage_vs.append(value)
                series._last = timestamp
                series._snapshot = None
                count += 1
        if count:
            self.samples_ingested += count
            self.data_epoch += 1
            if self.min_time is None or timestamp < self.min_time:
                self.min_time = timestamp
            if self.max_time is None or timestamp > self.max_time:
                self.max_time = timestamp
        return count, dead

    # -- exemplars ---------------------------------------------------------
    def append_exemplar(self, labels: Labels, exemplar: Exemplar, scrape_ts: float) -> bool:
        """Store an exemplar for the series identified by ``labels``.

        The reference scrape path appends the sample first, so the
        series normally exists; creating it here keeps the call safe
        either way (matching Prometheus, where an exemplar append
        always follows a sample append for the same series ref).
        """
        series = self._get_or_create_series(labels)
        return self.exemplars.add(series.ref, series.labels, exemplar, scrape_ts)

    def append_exemplar_ref(
        self, ref: int, labels: Labels, exemplar: Exemplar, scrape_ts: float
    ) -> bool:
        """Fast-lane twin of :meth:`append_exemplar`, keyed by ref."""
        series = self._series_by_ref.get(ref)
        if series is None:
            return self.append_exemplar(labels, exemplar, scrape_ts)
        return self.exemplars.add(series.ref, series.labels, exemplar, scrape_ts)

    def select_exemplars(
        self,
        matchers: Sequence[Matcher],
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> list[tuple[Labels, list[ExemplarRecord]]]:
        return self.exemplars.select(matchers, start, end)

    # -- selection ---------------------------------------------------------
    def select(self, matchers: Sequence[Matcher]) -> list[Series]:
        """All series whose labels satisfy every matcher.

        Equality matchers with non-empty values are resolved through
        the inverted index first; remaining matchers filter the
        candidate set.
        """
        if not matchers:
            raise StorageError("select requires at least one matcher")
        if self.telemetry is not None:
            # child_span is free (yields None) outside a trace, so
            # rule-manager evaluations never mint junk traces.
            with self.telemetry.child_span("tsdb.select", db=self.name) as span:
                result = self._select(matchers)
                if span is not None:
                    span.attrs["series"] = len(result)
                return result
        return self._select(matchers)

    def _select(self, matchers: Sequence[Matcher]) -> list[Series]:
        key = tuple(matchers)
        cached = self._select_cache.get(key)
        if cached is not None:
            self.select_cache_hits += 1
            return cached
        self.select_cache_misses += 1
        candidate_keys: set[Labels] | None = None
        residual: list[Matcher] = []
        for m in matchers:
            if m.op is MatchOp.EQ and m.value != "":
                postings = self._index.get((m.name, m.value), set())
                candidate_keys = postings.copy() if candidate_keys is None else candidate_keys & postings
                if not candidate_keys:
                    return self._memoize_select(key, [])
            else:
                residual.append(m)
        if candidate_keys is None:
            candidates: Iterable[Labels] = self._series.keys()
        else:
            candidates = candidate_keys
        out = []
        for labels_key in candidates:
            if all(m.matches(labels_key) for m in residual):
                out.append(self._series[labels_key])
        out.sort(key=lambda s: tuple(s.labels))
        return self._memoize_select(key, out)

    def _memoize_select(self, key: tuple[Matcher, ...], result: list[Series]) -> list[Series]:
        if len(self._select_cache) >= self.SELECT_CACHE_MAX:
            self._select_cache.clear()
        self._select_cache[key] = result
        return result

    def selector_cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the selector memo (bench observability)."""
        total = self.select_cache_hits + self.select_cache_misses
        return {
            "hits": float(self.select_cache_hits),
            "misses": float(self.select_cache_misses),
            "hit_rate": self.select_cache_hits / total if total else 0.0,
        }

    def has_series(self, labels: Labels) -> bool:
        """Whether a series with exactly these labels exists."""
        return labels in self._series

    def label_values(self, label_name: str) -> list[str]:
        values = {value for (name, value) in self._index if name == label_name and self._index[(name, value)]}
        return sorted(values)

    def metric_names(self) -> list[str]:
        return self.label_values(METRIC_NAME_LABEL)

    # -- maintenance ---------------------------------------------------------
    @property
    def num_series(self) -> int:
        return len(self._series)

    @property
    def num_samples(self) -> int:
        return sum(s.nsamples for s in self._series.values())

    def apply_retention(self, now: float) -> tuple[int, int]:
        """Enforce the retention horizon.

        Returns ``(samples_dropped, series_dropped)``.  Series left
        empty are removed from the index entirely.
        """
        if self.retention <= 0:
            return (0, 0)
        cutoff = now - self.retention
        samples_dropped = 0
        empty: list[Labels] = []
        for key, series in self._series.items():
            samples_dropped += series.truncate_before(cutoff)
            if not series.nsamples:
                empty.append(key)
        for key in empty:
            self._drop_series(key)
        if samples_dropped:
            self.data_epoch += 1
            self._recompute_time_bounds()
        return samples_dropped, len(empty)

    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Delete whole series matching the matchers (cardinality cleanup).

        Returns the number of series removed.  This is the operation
        behind the paper's TSDB cleanup of short-lived workloads.
        """
        doomed = [s.labels for s in self.select(matchers)]
        for key in doomed:
            self._drop_series(key)
        if doomed:
            self._recompute_time_bounds()
        return len(doomed)

    def _recompute_time_bounds(self) -> None:
        """Refresh ``min_time``/``max_time`` after samples were dropped."""
        self.min_time = min(
            (s.min_time for s in self._series.values() if s.min_time is not None),
            default=None,
        )
        self.max_time = max(
            (s.max_time for s in self._series.values() if s.max_time is not None),
            default=None,
        )

    def _drop_series(self, key: Labels) -> None:
        series = self._series[key]
        del self._series[key]
        # Refs are never reused, so dropping the mapping is enough to
        # invalidate every cached ref to this series: later
        # append_ref/append_refs calls see a miss, not a different series.
        self._series_by_ref.pop(series.ref, None)
        for pair in key:
            postings = self._index.get(pair)
            if postings is not None:
                postings.discard(key)
                if not postings:
                    del self._index[pair]
        self.series_epoch += 1
        self.data_epoch += 1
        self._select_cache.clear()

    def chunk_series(
        self,
        matchers: Sequence[Matcher],
        lo: float = float("-inf"),
        hi: float = float("inf"),
    ):
        """Yield ``(labels, [chunk handles])`` for matching series.

        The head-side half of the unified chunk-iterator API: the same
        shape :meth:`repro.tsdb.persist.block.BlockReader.chunk_series`
        yields for persisted blocks, so query layers can fan out over
        head and blocks with one code path.
        """
        for series in self.select(matchers):
            handles = series.chunks(lo, hi)
            if handles:
                yield series.labels, handles

    # -- introspection ----------------------------------------------------
    def cardinality_by_metric(self) -> dict[str, int]:
        """Series count per metric name (the paper's cardinality lens)."""
        out: dict[str, int] = {}
        for key in self._series:
            out[key.metric_name] = out.get(key.metric_name, 0) + 1
        return out

    def all_series(self) -> list[Series]:
        return sorted(self._series.values(), key=lambda s: tuple(s.labels))
