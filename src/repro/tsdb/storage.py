"""Append-optimised in-memory TSDB with an inverted label index.

Design points, mirroring what matters about Prometheus for this stack:

* **Appends are cheap**: each series keeps two plain Python lists
  (timestamps, values); no numpy churn on the hot ingest path.  A
  scrape of 1400 nodes appends tens of thousands of samples per
  interval, so this is the throughput-critical path (bench E7).
* **Selection uses an inverted index**: label name/value → set of
  series ids, intersected across equality matchers before any regex
  work, the same trick Prometheus's head block uses.
* **Range reads are vectorized**: a window read binary-searches the
  timestamp list and returns numpy views for the PromQL engine.
* **Columnar reads are cached**: :meth:`Series.arrays` materialises a
  series as a pair of ndarrays exactly once between mutations, so the
  columnar range evaluator can ``searchsorted`` thousands of step
  timestamps against one snapshot instead of re-walking Python lists
  per step.  :meth:`TSDB.select` memoises selector results keyed by
  the matcher tuple — the memo survives appends (``Series`` objects
  mutate in place) and is invalidated only when series are created or
  deleted, so a dashboard burst or a rule group touching the same
  selectors pays the index intersection once.
* **Retention** drops samples older than the horizon; **series
  deletion** implements the API server's cardinality cleanup (paper
  §II.C: *"remove metrics of workloads that did not last more than
  the configured cutoff"*).
* Out-of-order appends within a series are rejected, as Prometheus
  rejects them; duplicate timestamps overwrite (last-write-wins) to
  keep recording-rule re-evaluation idempotent.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import StorageError
from repro.tsdb.model import METRIC_NAME_LABEL, Labels, Matcher, MatchOp

#: Process-wide snapshot-cache counters for :meth:`Series.arrays` —
#: per-instance bookkeeping would bloat every Series object for a
#: number only the self-telemetry endpoint reads.
SNAPSHOT_STATS = {"hits": 0, "builds": 0}


@dataclass
class Series:
    """One time series: immutable identity + growing sample arrays."""

    labels: Labels
    #: Storage-assigned series reference (see :meth:`TSDB.get_ref`).
    #: Monotonic and never reused, so a ref held after the series is
    #: dropped can only dangle — it can never alias another series.
    ref: int = 0
    timestamps: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: Cached ndarray snapshot of (timestamps, values); rebuilt lazily
    #: after any mutation.  See :meth:`arrays`.
    _snapshot: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def append(self, timestamp: float, value: float) -> None:
        if self.timestamps:
            last = self.timestamps[-1]
            if timestamp < last:
                raise StorageError(
                    f"out-of-order sample for {self.labels}: {timestamp} < {last}"
                )
            if timestamp == last:
                self.values[-1] = value  # idempotent re-ingest
                self._snapshot = None
                return
        self.timestamps.append(timestamp)
        self.values.append(value)
        self._snapshot = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The whole series as ``(timestamps, values)`` float64 arrays.

        The snapshot is cached until the next append/overwrite/
        truncation, so repeated columnar reads (one per selector per
        range query) cost one list conversion, not one per step.
        Callers must treat the returned arrays as read-only.
        """
        snap = self._snapshot
        if snap is None:
            SNAPSHOT_STATS["builds"] += 1
            snap = (
                np.asarray(self.timestamps, dtype=np.float64),
                np.asarray(self.values, dtype=np.float64),
            )
            self._snapshot = snap
        else:
            SNAPSHOT_STATS["hits"] += 1
        return snap

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t <= end`` as numpy arrays."""
        lo = bisect.bisect_left(self.timestamps, start)
        hi = bisect.bisect_right(self.timestamps, end)
        return (
            np.asarray(self.timestamps[lo:hi], dtype=np.float64),
            np.asarray(self.values[lo:hi], dtype=np.float64),
        )

    def window_half_open(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t < end`` (block-window semantics).

        Block boundaries are half-open in Prometheus/Thanos; callers
        cutting ``[lo, hi)`` windows use this instead of shrinking the
        right edge by an epsilon.
        """
        lo = bisect.bisect_left(self.timestamps, start)
        hi = bisect.bisect_left(self.timestamps, end)
        return (
            np.asarray(self.timestamps[lo:hi], dtype=np.float64),
            np.asarray(self.values[lo:hi], dtype=np.float64),
        )

    def at_or_before(self, ts: float, lookback: float) -> tuple[float, float] | None:
        """Most recent sample in ``(ts - lookback, ts]`` (instant read).

        A staleness marker (NaN sample) as the most recent point means
        the series has disappeared: instant reads return nothing, with
        no lookback grace — Prometheus staleness semantics.
        """
        idx = bisect.bisect_right(self.timestamps, ts) - 1
        if idx < 0:
            return None
        t = self.timestamps[idx]
        if t <= ts - lookback:
            return None
        value = self.values[idx]
        if value != value:  # NaN: stale marker
            return None
        return t, self.values[idx]

    def truncate_before(self, cutoff: float) -> int:
        """Drop samples with ``t < cutoff``; returns how many."""
        lo = bisect.bisect_left(self.timestamps, cutoff)
        if lo:
            del self.timestamps[:lo]
            del self.values[:lo]
            self._snapshot = None
        return lo

    @property
    def nsamples(self) -> int:
        return len(self.timestamps)

    @property
    def min_time(self) -> float | None:
        return self.timestamps[0] if self.timestamps else None

    @property
    def max_time(self) -> float | None:
        return self.timestamps[-1] if self.timestamps else None


class TSDB:
    """The time-series database.

    Parameters
    ----------
    retention:
        Sample retention horizon in seconds (enforced by
        :meth:`apply_retention`, which the scrape loop calls
        periodically).  ``0`` disables retention.
    name:
        Instance name, used by the LB and the Thanos fan-out.

    Epoch / cache invalidation contract
    -----------------------------------
    * ``series_epoch`` bumps exactly when the series *population*
      changes (creation in :meth:`_get_or_create_series`, deletion in
      :meth:`_drop_series`); ``data_epoch`` bumps on every sample
      mutation (append, bulk append, retention truncation, series
      deletion).
    * ``_select_cache`` maps matcher tuples to lists of live
      :class:`Series` objects.  Because ``Series`` mutate in place,
      entries stay correct across *sample* mutations — retention that
      drops samples but no series deliberately leaves the memo
      populated (it only bumps ``data_epoch``) — and are invalidated
      wholesale whenever the population changes.  Downstream memos
      that **copy** sample data out of a ``Series`` (e.g. the Thanos
      fan-out merge) must instead validate against
      ``(series_epoch, data_epoch)``, since an in-place mutation
      silently outdates their copies.
    * ``min_time``/``max_time`` are recomputed via
      :meth:`_recompute_time_bounds` on every drop path; before the
      audit ``max_time`` survived a fully-emptied store and
      :meth:`delete_series` never refreshed either bound, which could
      leave the sidecar watermark pointing at vanished data.
    """

    #: Upper bound on memoised selector results before wholesale reset.
    SELECT_CACHE_MAX = 512

    def __init__(self, retention: float = 0.0, name: str = "tsdb") -> None:
        self.name = name
        self.retention = retention
        self._series: dict[Labels, Series] = {}
        # inverted index: (label_name, label_value) -> set of Labels keys
        self._index: dict[tuple[str, str], set[Labels]] = {}
        # series refs: small-integer handles the scrape fast lane uses
        # to append without hashing a Labels key.  Monotonic, never
        # reused; dropped series leave a hole so stale refs dangle
        # instead of aliasing (see append_ref).
        self._series_by_ref: dict[int, Series] = {}
        self._next_ref = 1
        self.samples_ingested = 0
        self.min_time: float | None = None
        self.max_time: float | None = None
        # selector memo: matcher tuple -> selected series (in label
        # order).  Valid across appends (Series mutate in place);
        # invalidated whenever the series population changes.
        self._select_cache: dict[tuple[Matcher, ...], list[Series]] = {}
        self.select_cache_hits = 0
        self.select_cache_misses = 0
        #: bumps when series are created or deleted
        self.series_epoch = 0
        #: bumps on any sample mutation (append, retention, delete)
        self.data_epoch = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry` sink; when
        #: set, selects inside an active trace record child spans.
        self.telemetry = None

    # -- ingest ----------------------------------------------------------
    def _get_or_create_series(self, labels: Labels) -> Series:
        series = self._series.get(labels)
        if series is None:
            if not labels.metric_name:
                raise StorageError(f"series without a metric name: {labels!r}")
            ref = self._next_ref
            self._next_ref = ref + 1
            series = Series(labels=labels, ref=ref)
            self._series[labels] = series
            self._series_by_ref[ref] = series
            for pair in labels:
                self._index.setdefault(pair, set()).add(labels)
            self.series_epoch += 1
            self._select_cache.clear()
        return series

    def append(self, labels: Labels, timestamp: float, value: float) -> None:
        """Append one sample, creating the series on first sight."""
        series = self._get_or_create_series(labels)
        series.append(timestamp, value)
        self.samples_ingested += 1
        self.data_epoch += 1
        if self.min_time is None or timestamp < self.min_time:
            self.min_time = timestamp
        if self.max_time is None or timestamp > self.max_time:
            self.max_time = timestamp

    def append_many(self, batch: Iterable[tuple[Labels, float, float]]) -> int:
        count = 0
        for labels, ts, value in batch:
            self.append(labels, ts, value)
            count += 1
        return count

    def append_array(self, labels: Labels, timestamps, values) -> int:
        """Bulk-append a sorted run of samples to one series.

        The sidecar's block copies and WAL replay ingest whole window
        slices; a strictly increasing run landing after the series'
        current tail extends the sample lists in one slice operation
        (one epoch bump, one snapshot invalidation) instead of a
        per-sample Python loop.  Runs that overlap the tail fall back
        to :meth:`Series.append` semantics sample by sample
        (last-write-wins on duplicates, out-of-order rejected).

        The batch is **all-or-nothing**: ordering is validated before
        any sample is applied, so an out-of-order run raises
        :class:`StorageError` without mutating the store — callers
        that journal after the in-memory apply (the persistent head)
        never diverge from memory on a rejected batch.
        """
        n = len(timestamps)
        if n != len(values):
            raise StorageError("timestamp/value length mismatch")
        if n == 0:
            return 0
        ts_list = [float(t) for t in timestamps]
        vs_list = [float(v) for v in values]
        existing = self._series.get(labels)
        last = existing.timestamps[-1] if existing is not None and existing.timestamps else None
        increasing = all(a < b for a, b in zip(ts_list, ts_list[1:]))
        fast_path = increasing and (last is None or ts_list[0] > last)
        if not fast_path:
            # Validate the whole run against Series.append semantics
            # (equal-to-tail overwrites, regressions reject) before
            # touching the store, so a bad batch applies nothing.
            run_last = last
            for ts in ts_list:
                if run_last is not None and ts < run_last:
                    raise StorageError(
                        f"out-of-order sample for {labels}: {ts} < {run_last}"
                    )
                run_last = ts
        series = self._get_or_create_series(labels)
        if fast_path:
            series.timestamps.extend(ts_list)
            series.values.extend(vs_list)
            series._snapshot = None
        else:
            for ts, value in zip(ts_list, vs_list):
                series.append(ts, value)
        self.samples_ingested += n
        self.data_epoch += 1
        lo, hi = (ts_list[0], ts_list[-1]) if increasing else (min(ts_list), max(ts_list))
        if self.min_time is None or lo < self.min_time:
            self.min_time = lo
        if self.max_time is None or hi > self.max_time:
            self.max_time = hi
        return n

    # -- append-by-ref (scrape fast lane) ---------------------------------
    def get_ref(self, labels: Labels) -> int:
        """Resolve labels to a stable series ref, creating the series.

        The ref is the scrape cache's handle: resolving once per
        *distinct series text* lets every later sample of that series
        skip label parsing, ``Labels`` hashing and the series-map
        lookup.  Refs stay valid until the series is dropped
        (retention, :meth:`delete_series`); they are never reused, so
        a stale ref fails loudly instead of appending elsewhere.
        """
        return self._get_or_create_series(labels).ref

    def resolve_ref(self, ref: int) -> Series | None:
        """The live series behind ``ref``, or ``None`` if it was dropped."""
        return self._series_by_ref.get(ref)

    def append_ref(self, ref: int, timestamp: float, value: float) -> None:
        """Append one sample to the series behind ``ref``.

        Raises :class:`StorageError` when the ref no longer resolves
        (series deleted since :meth:`get_ref`) — callers re-resolve
        via labels, exactly like Prometheus's scrape loop on a head
        ref miss.
        """
        series = self._series_by_ref.get(ref)
        if series is None:
            raise StorageError(f"unknown series ref {ref}")
        series.append(timestamp, value)
        self.samples_ingested += 1
        self.data_epoch += 1
        if self.min_time is None or timestamp < self.min_time:
            self.min_time = timestamp
        if self.max_time is None or timestamp > self.max_time:
            self.max_time = timestamp

    def append_refs(
        self, timestamp: float, pairs: Sequence[tuple[int, float]]
    ) -> tuple[int, list[tuple[int, float]]]:
        """Batched same-timestamp append by ref — the scrape hot loop.

        One scrape cycle appends every sample of a target at the same
        logical instant, so the timestamp comparison, epoch bump and
        time-bound updates are hoisted out of the per-sample loop and
        ``Series.append`` is inlined (call overhead matters at ~25k
        samples per Jean-Zay cycle).  Semantics per sample are exactly
        ``Series.append``: later-than-tail extends, equal-to-tail
        overwrites (idempotent re-ingest), earlier-than-tail raises.

        Returns ``(appended, dead)`` where ``dead`` holds the
        ``(ref, value)`` pairs whose ref no longer resolves; the
        caller re-resolves those through labels.
        """
        by_ref = self._series_by_ref
        dead: list[tuple[int, float]] = []
        count = 0
        for ref, value in pairs:
            series = by_ref.get(ref)
            if series is None:
                dead.append((ref, value))
                continue
            timestamps = series.timestamps
            if timestamps:
                last = timestamps[-1]
                if last >= timestamp:
                    if last > timestamp:
                        raise StorageError(
                            f"out-of-order sample for {series.labels}: {timestamp} < {last}"
                        )
                    series.values[-1] = value
                    series._snapshot = None
                    count += 1
                    continue
            timestamps.append(timestamp)
            series.values.append(value)
            series._snapshot = None
            count += 1
        if count:
            self.samples_ingested += count
            self.data_epoch += 1
            if self.min_time is None or timestamp < self.min_time:
                self.min_time = timestamp
            if self.max_time is None or timestamp > self.max_time:
                self.max_time = timestamp
        return count, dead

    # -- selection ---------------------------------------------------------
    def select(self, matchers: Sequence[Matcher]) -> list[Series]:
        """All series whose labels satisfy every matcher.

        Equality matchers with non-empty values are resolved through
        the inverted index first; remaining matchers filter the
        candidate set.
        """
        if not matchers:
            raise StorageError("select requires at least one matcher")
        if self.telemetry is not None:
            # child_span is free (yields None) outside a trace, so
            # rule-manager evaluations never mint junk traces.
            with self.telemetry.child_span("tsdb.select", db=self.name) as span:
                result = self._select(matchers)
                if span is not None:
                    span.attrs["series"] = len(result)
                return result
        return self._select(matchers)

    def _select(self, matchers: Sequence[Matcher]) -> list[Series]:
        key = tuple(matchers)
        cached = self._select_cache.get(key)
        if cached is not None:
            self.select_cache_hits += 1
            return cached
        self.select_cache_misses += 1
        candidate_keys: set[Labels] | None = None
        residual: list[Matcher] = []
        for m in matchers:
            if m.op is MatchOp.EQ and m.value != "":
                postings = self._index.get((m.name, m.value), set())
                candidate_keys = postings.copy() if candidate_keys is None else candidate_keys & postings
                if not candidate_keys:
                    return self._memoize_select(key, [])
            else:
                residual.append(m)
        if candidate_keys is None:
            candidates: Iterable[Labels] = self._series.keys()
        else:
            candidates = candidate_keys
        out = []
        for labels_key in candidates:
            if all(m.matches(labels_key) for m in residual):
                out.append(self._series[labels_key])
        out.sort(key=lambda s: tuple(s.labels))
        return self._memoize_select(key, out)

    def _memoize_select(self, key: tuple[Matcher, ...], result: list[Series]) -> list[Series]:
        if len(self._select_cache) >= self.SELECT_CACHE_MAX:
            self._select_cache.clear()
        self._select_cache[key] = result
        return result

    def selector_cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the selector memo (bench observability)."""
        total = self.select_cache_hits + self.select_cache_misses
        return {
            "hits": float(self.select_cache_hits),
            "misses": float(self.select_cache_misses),
            "hit_rate": self.select_cache_hits / total if total else 0.0,
        }

    def has_series(self, labels: Labels) -> bool:
        """Whether a series with exactly these labels exists."""
        return labels in self._series

    def label_values(self, label_name: str) -> list[str]:
        values = {value for (name, value) in self._index if name == label_name and self._index[(name, value)]}
        return sorted(values)

    def metric_names(self) -> list[str]:
        return self.label_values(METRIC_NAME_LABEL)

    # -- maintenance ---------------------------------------------------------
    @property
    def num_series(self) -> int:
        return len(self._series)

    @property
    def num_samples(self) -> int:
        return sum(s.nsamples for s in self._series.values())

    def apply_retention(self, now: float) -> tuple[int, int]:
        """Enforce the retention horizon.

        Returns ``(samples_dropped, series_dropped)``.  Series left
        empty are removed from the index entirely.
        """
        if self.retention <= 0:
            return (0, 0)
        cutoff = now - self.retention
        samples_dropped = 0
        empty: list[Labels] = []
        for key, series in self._series.items():
            samples_dropped += series.truncate_before(cutoff)
            if not series.timestamps:
                empty.append(key)
        for key in empty:
            self._drop_series(key)
        if samples_dropped:
            self.data_epoch += 1
            self._recompute_time_bounds()
        return samples_dropped, len(empty)

    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Delete whole series matching the matchers (cardinality cleanup).

        Returns the number of series removed.  This is the operation
        behind the paper's TSDB cleanup of short-lived workloads.
        """
        doomed = [s.labels for s in self.select(matchers)]
        for key in doomed:
            self._drop_series(key)
        if doomed:
            self._recompute_time_bounds()
        return len(doomed)

    def _recompute_time_bounds(self) -> None:
        """Refresh ``min_time``/``max_time`` after samples were dropped."""
        self.min_time = min(
            (s.min_time for s in self._series.values() if s.min_time is not None),
            default=None,
        )
        self.max_time = max(
            (s.max_time for s in self._series.values() if s.max_time is not None),
            default=None,
        )

    def _drop_series(self, key: Labels) -> None:
        series = self._series[key]
        del self._series[key]
        # Refs are never reused, so dropping the mapping is enough to
        # invalidate every cached ref to this series: later
        # append_ref/append_refs calls see a miss, not a different series.
        self._series_by_ref.pop(series.ref, None)
        for pair in key:
            postings = self._index.get(pair)
            if postings is not None:
                postings.discard(key)
                if not postings:
                    del self._index[pair]
        self.series_epoch += 1
        self.data_epoch += 1
        self._select_cache.clear()

    # -- introspection ----------------------------------------------------
    def cardinality_by_metric(self) -> dict[str, int]:
        """Series count per metric name (the paper's cardinality lens)."""
        out: dict[str, int] = {}
        for key in self._series:
            out[key.metric_name] = out.get(key.metric_name, 0) + 1
        return out

    def all_series(self) -> list[Series]:
        return sorted(self._series.values(), key=lambda s: tuple(s.labels))
