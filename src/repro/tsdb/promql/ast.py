"""PromQL abstract syntax tree nodes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tsdb.model import Matcher

AGGREGATION_OPS = (
    "sum",
    "avg",
    "min",
    "max",
    "count",
    "stddev",
    "stdvar",
    "topk",
    "bottomk",
    "quantile",
)

#: Operators needing a scalar parameter before the vector expression.
PARAM_AGGREGATIONS = ("topk", "bottomk", "quantile")

ARITHMETIC_OPS = ("+", "-", "*", "/", "%", "^")
COMPARISON_OPS = ("==", "!=", ">", "<", ">=", "<=")
SET_OPS = ("and", "or", "unless")


class Expr:
    """Base class for every AST node."""

    __slots__ = ()


@dataclass(frozen=True)
class NumberLiteral(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLiteral(Expr):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class VectorSelector(Expr):
    """``metric{label="x"}`` with optional ``offset``."""

    name: str
    matchers: tuple[Matcher, ...] = ()
    offset: float = 0.0

    def __str__(self) -> str:
        inner = ",".join(str(m) for m in self.matchers if m.name != "__name__")
        base = f"{self.name}{{{inner}}}" if inner else self.name
        if self.offset:
            base += f" offset {self.offset}s"
        return base


@dataclass(frozen=True)
class MatrixSelector(Expr):
    """``metric{...}[5m]`` — only valid as a range-function argument."""

    selector: VectorSelector
    range_seconds: float

    def __str__(self) -> str:
        return f"{self.selector}[{self.range_seconds}s]"


@dataclass(frozen=True)
class Subquery(Expr):
    """``<expr>[range:step]`` — a range vector built by evaluating an
    instant expression at every step inside the window."""

    expr: "Expr"
    range_seconds: float
    step_seconds: float
    offset: float = 0.0

    def __str__(self) -> str:
        base = f"({self.expr})[{self.range_seconds}s:{self.step_seconds}s]"
        if self.offset:
            base += f" offset {self.offset}s"
        return base


@dataclass(frozen=True)
class Call(Expr):
    """Function call, e.g. ``rate(x[5m])``."""

    func: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Aggregation(Expr):
    """``sum by (a) (expr)`` / ``topk(3, expr)``…"""

    op: str
    expr: Expr
    param: Expr | None = None
    grouping: tuple[str, ...] = ()
    without: bool = False

    def __str__(self) -> str:
        mode = "without" if self.without else "by"
        grp = f" {mode} ({', '.join(self.grouping)})" if (self.grouping or self.without) else ""
        if self.param is not None:
            return f"{self.op}{grp}({self.param}, {self.expr})"
        return f"{self.op}{grp}({self.expr})"


@dataclass(frozen=True)
class VectorMatching:
    """The ``on``/``ignoring`` + ``group_left``/``group_right`` clause."""

    on: bool = False
    labels: tuple[str, ...] = ()
    #: "" (one-to-one), "left" (many-to-one) or "right" (one-to-many).
    group: str = ""
    include: tuple[str, ...] = field(default=())


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    matching: VectorMatching | None = None
    #: ``bool`` modifier on comparison operators.
    return_bool: bool = False

    def __str__(self) -> str:
        mod = " bool" if self.return_bool else ""
        clause = ""
        if self.matching is not None:
            kind = "on" if self.matching.on else "ignoring"
            clause = f" {kind}({', '.join(self.matching.labels)})"
            if self.matching.group:
                clause += f" group_{self.matching.group}({', '.join(self.matching.include)})"

        def wrap(child: "Expr") -> str:
            return f"({child})" if isinstance(child, BinaryOp) else str(child)

        return f"{wrap(self.lhs)} {self.op}{mod}{clause} {wrap(self.rhs)}"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "+"
    expr: Expr

    def __str__(self) -> str:
        return f"{self.op}{self.expr}"


@dataclass(frozen=True)
class Paren(Expr):
    expr: Expr

    def __str__(self) -> str:
        return f"({self.expr})"


def iter_selectors(node: Expr):
    """Yield every :class:`VectorSelector` in ``node``, reading order.

    The active-query tracker fingerprints queries by the plain series
    selectors they touch (bounded cardinality, unlike raw query text).
    """
    if isinstance(node, VectorSelector):
        yield node
    elif isinstance(node, MatrixSelector):
        yield node.selector
    elif isinstance(node, (Paren, UnaryOp, Subquery, Aggregation)):
        yield from iter_selectors(node.expr)
        param = getattr(node, "param", None)
        if param is not None:
            yield from iter_selectors(param)
    elif isinstance(node, Call):
        for arg in node.args:
            yield from iter_selectors(arg)
    elif isinstance(node, BinaryOp):
        yield from iter_selectors(node.lhs)
        yield from iter_selectors(node.rhs)
