"""PromQL parser (precedence-climbing).

Operator precedence follows Prometheus, weakest to strongest::

    or  <  and/unless  <  comparisons  <  +/-  <  */%/  <  ^  <  unary

``^`` is right-associative; all others are left-associative.
"""

from __future__ import annotations

from repro.common.errors import QueryError
from repro.common.units import parse_duration
from repro.tsdb.model import Matcher, MatchOp
from repro.tsdb.promql.ast import (
    AGGREGATION_OPS,
    PARAM_AGGREGATIONS,
    Aggregation,
    BinaryOp,
    Call,
    Expr,
    MatrixSelector,
    NumberLiteral,
    Paren,
    StringLiteral,
    Subquery,
    UnaryOp,
    VectorMatching,
    VectorSelector,
)
from repro.tsdb.promql.functions import FUNCTIONS
from repro.tsdb.promql.lexer import Token, TokenType, tokenize

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "unless": 2,
    "==": 3,
    "!=": 3,
    ">": 3,
    "<": 3,
    ">=": 3,
    "<=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
    "^": 6,
}

_COMPARISONS = {"==", "!=", ">", "<", ">=", "<="}
_MATCH_OPS = {"=": MatchOp.EQ, "!=": MatchOp.NEQ, "=~": MatchOp.RE, "!~": MatchOp.NRE}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, ttype: TokenType, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.type is not ttype or (text is not None and tok.text != text):
            want = text or ttype.name
            raise QueryError(f"expected {want}, got {tok.text!r}", position=tok.pos)
        return self.next()

    def accept(self, ttype: TokenType, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.type is ttype and (text is None or tok.text == text):
            return self.next()
        return None

    def accept_keyword(self, word: str) -> bool:
        tok = self.peek()
        if tok.type is TokenType.IDENT and tok.text == word:
            self.next()
            return True
        return False

    # -- grammar ----------------------------------------------------------
    def parse_expression(self, min_prec: int = 0) -> Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            op: str | None = None
            if tok.type is TokenType.OP and tok.text in _PRECEDENCE:
                op = tok.text
            elif tok.type is TokenType.IDENT and tok.text in ("and", "or", "unless"):
                op = tok.text
            if op is None:
                return lhs
            prec = _PRECEDENCE[op]
            if prec < min_prec:
                return lhs
            self.next()
            return_bool = False
            if op in _COMPARISONS and self.accept_keyword("bool"):
                return_bool = True
            matching = self.parse_vector_matching()
            # right-assoc for ^, left-assoc otherwise
            next_min = prec if op == "^" else prec + 1
            rhs = self.parse_expression(next_min)
            lhs = BinaryOp(op=op, lhs=lhs, rhs=rhs, matching=matching, return_bool=return_bool)

    def parse_vector_matching(self) -> VectorMatching | None:
        tok = self.peek()
        if tok.type is not TokenType.IDENT or tok.text not in ("on", "ignoring"):
            return None
        on = self.next().text == "on"
        labels = self.parse_label_list()
        group = ""
        include: tuple[str, ...] = ()
        tok = self.peek()
        if tok.type is TokenType.IDENT and tok.text in ("group_left", "group_right"):
            group = "left" if self.next().text == "group_left" else "right"
            if self.peek().type is TokenType.LPAREN:
                include = self.parse_label_list()
        return VectorMatching(on=on, labels=labels, group=group, include=include)

    def parse_label_list(self) -> tuple[str, ...]:
        self.expect(TokenType.LPAREN)
        labels: list[str] = []
        if self.peek().type is not TokenType.RPAREN:
            while True:
                labels.append(self.expect(TokenType.IDENT).text)
                if not self.accept(TokenType.COMMA):
                    break
        self.expect(TokenType.RPAREN)
        return tuple(labels)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.type is TokenType.OP and tok.text in ("+", "-"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "-":
                if isinstance(operand, NumberLiteral):
                    return NumberLiteral(-operand.value)
                return UnaryOp(op="-", expr=operand)
            return operand
        return self.parse_postfix(self.parse_atom())

    def parse_postfix(self, expr: Expr) -> Expr:
        """Handle ``[range]``, ``[range:step]`` and ``offset``."""
        while True:
            tok = self.peek()
            if tok.type is TokenType.LBRACKET:
                self.next()
                dur = self.expect(TokenType.DURATION)
                # subquery: [range:step] (step optional)
                if self._accept_colon():
                    step_tok = self.peek()
                    if step_tok.type is TokenType.DURATION:
                        self.next()
                        step = parse_duration(step_tok.text)
                    else:
                        step = max(parse_duration(dur.text) / 10.0, 1.0)
                    self.expect(TokenType.RBRACKET)
                    expr = Subquery(
                        expr=expr,
                        range_seconds=parse_duration(dur.text),
                        step_seconds=step,
                    )
                    continue
                self.expect(TokenType.RBRACKET)
                if not isinstance(expr, VectorSelector):
                    raise QueryError(
                        "range selector on non-selector expression (use a [range:step] subquery)",
                        position=tok.pos,
                    )
                expr = MatrixSelector(selector=expr, range_seconds=parse_duration(dur.text))
                continue
            if tok.type is TokenType.IDENT and tok.text == "offset":
                self.next()
                dur = self.expect(TokenType.DURATION)
                offset = parse_duration(dur.text)
                if isinstance(expr, VectorSelector):
                    expr = VectorSelector(name=expr.name, matchers=expr.matchers, offset=offset)
                elif isinstance(expr, MatrixSelector):
                    inner = expr.selector
                    expr = MatrixSelector(
                        selector=VectorSelector(name=inner.name, matchers=inner.matchers, offset=offset),
                        range_seconds=expr.range_seconds,
                    )
                elif isinstance(expr, Subquery):
                    expr = Subquery(
                        expr=expr.expr,
                        range_seconds=expr.range_seconds,
                        step_seconds=expr.step_seconds,
                        offset=offset,
                    )
                else:
                    raise QueryError("offset on non-selector expression", position=tok.pos)
                continue
            return expr

    def _accept_colon(self) -> bool:
        tok = self.peek()
        if tok.type is TokenType.COLON:
            self.next()
            return True
        return False

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.type is TokenType.NUMBER:
            self.next()
            return NumberLiteral(float(tok.text))
        if tok.type is TokenType.DURATION:
            # A bare duration is a number of seconds (Prometheus extension).
            self.next()
            return NumberLiteral(parse_duration(tok.text))
        if tok.type is TokenType.STRING:
            self.next()
            return StringLiteral(tok.text)
        if tok.type is TokenType.LPAREN:
            self.next()
            inner = self.parse_expression()
            self.expect(TokenType.RPAREN)
            return Paren(inner)
        if tok.type is TokenType.LBRACE:
            return self.parse_selector("")
        if tok.type is TokenType.IDENT:
            name = tok.text
            if name in AGGREGATION_OPS:
                return self.parse_aggregation()
            if name in FUNCTIONS and self.tokens[self.pos + 1].type is TokenType.LPAREN:
                self.next()
                args = self.parse_call_args()
                return Call(func=name, args=tuple(args))
            self.next()
            return self.parse_selector(name)
        raise QueryError(f"unexpected token {tok.text!r}", position=tok.pos)

    def parse_call_args(self) -> list[Expr]:
        self.expect(TokenType.LPAREN)
        args: list[Expr] = []
        if self.peek().type is not TokenType.RPAREN:
            while True:
                args.append(self.parse_expression())
                if not self.accept(TokenType.COMMA):
                    break
        self.expect(TokenType.RPAREN)
        return args

    def parse_aggregation(self) -> Expr:
        op = self.next().text
        grouping: tuple[str, ...] = ()
        without = False
        # modifier may come before or after the parenthesised body
        if self.peek().type is TokenType.IDENT and self.peek().text in ("by", "without"):
            without = self.next().text == "without"
            grouping = self.parse_label_list()
        args = self.parse_call_args()
        if self.peek().type is TokenType.IDENT and self.peek().text in ("by", "without"):
            without = self.next().text == "without"
            grouping = self.parse_label_list()
        param: Expr | None = None
        if op in PARAM_AGGREGATIONS:
            if len(args) != 2:
                raise QueryError(f"{op} expects (param, expression), got {len(args)} args")
            param, body = args
        else:
            if len(args) != 1:
                raise QueryError(f"{op} expects exactly one expression, got {len(args)}")
            body = args[0]
        return Aggregation(op=op, expr=body, param=param, grouping=grouping, without=without)

    def parse_selector(self, name: str) -> VectorSelector:
        matchers: list[Matcher] = []
        if name:
            matchers.append(Matcher.name_eq(name))
        if self.accept(TokenType.LBRACE):
            if self.peek().type is not TokenType.RBRACE:
                while True:
                    label = self.expect(TokenType.IDENT).text
                    op_tok = self.expect(TokenType.OP)
                    if op_tok.text not in _MATCH_OPS:
                        raise QueryError(f"bad matcher operator {op_tok.text!r}", position=op_tok.pos)
                    value = self.expect(TokenType.STRING).text
                    matchers.append(Matcher(label, _MATCH_OPS[op_tok.text], value))
                    if not self.accept(TokenType.COMMA):
                        break
            self.expect(TokenType.RBRACE)
        if not matchers:
            raise QueryError("vector selector must have a name or at least one matcher")
        return VectorSelector(name=name, matchers=tuple(matchers))


def parse_expr(query: str) -> Expr:
    """Parse a PromQL expression string into an AST."""
    parser = _Parser(tokenize(query))
    expr = parser.parse_expression()
    trailing = parser.peek()
    if trailing.type is not TokenType.EOF:
        raise QueryError(f"unexpected trailing input {trailing.text!r}", position=trailing.pos)
    return expr
