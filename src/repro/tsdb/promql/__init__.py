"""PromQL subset: lexer, parser and evaluation engine.

Implements the slice of PromQL the CEEMS stack exercises — instant
and range queries over vector selectors with label matchers, offsets
and range windows; ``rate``/``increase`` and the ``*_over_time``
family; aggregations with ``by``/``without`` (including ``topk``/
``quantile``); and binary arithmetic/comparison operators with vector
matching (``on``/``ignoring``, ``group_left``/``group_right``) — the
machinery the paper's Eq. (1) recording rules are written in.
"""

from repro.tsdb.promql.engine import InstantResult, PromQLEngine, RangeResult
from repro.tsdb.promql.parser import parse_expr

__all__ = ["PromQLEngine", "parse_expr", "InstantResult", "RangeResult"]
