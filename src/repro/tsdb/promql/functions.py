"""PromQL function implementations.

Functions fall into three families the engine dispatches on:

* **range functions** (``rate``, ``increase``, ``*_over_time``…):
  consume one matrix selector window per series and produce one value.
  Counter semantics (reset detection, boundary extrapolation) follow
  Prometheus's ``extrapolatedRate`` so recorded power series behave
  like the real system's.
* **element-wise functions** (``abs``, ``clamp_min``…): map over the
  values of an instant vector.
* **special forms** (``scalar``, ``vector``, ``time``, ``timestamp``,
  ``label_replace``, ``label_join``, ``absent``, ``sort``…): need
  evaluation context and are implemented inside the engine; they are
  listed here so the parser recognises the names.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

RangeFunc = Callable[[np.ndarray, np.ndarray, float, float], float | None]


def _counter_corrected(values: np.ndarray) -> np.ndarray:
    """Undo counter resets: add the pre-reset value at each drop."""
    if len(values) < 2:
        return values
    # At a reset from v_prev to v_new the counter really advanced by
    # v_new, so v_prev is added to everything after the reset point.
    resets = np.where(np.diff(values) < 0)[0]
    if len(resets) == 0:
        return values
    corrected = values.astype(np.float64).copy()
    for idx in resets:
        corrected[idx + 1 :] += values[idx]
    return corrected


def _extrapolated_delta(
    ts: np.ndarray,
    vs: np.ndarray,
    start: float,
    end: float,
    *,
    is_counter: bool,
) -> float | None:
    """Prometheus ``extrapolatedRate`` core.

    Computes the increase over the window with boundary extrapolation:
    the sampled delta is scaled up to cover the gaps between the first/
    last samples and the window edges, but by no more than half an
    average sample interval (and, for counters, never extrapolating
    below zero).
    """
    if len(ts) < 2:
        return None
    values = _counter_corrected(vs) if is_counter else vs
    sampled_delta = float(values[-1] - values[0])
    sampled_interval = float(ts[-1] - ts[0])
    if sampled_interval <= 0:
        return None
    average_interval = sampled_interval / (len(ts) - 1)
    # Gap to each boundary.
    start_gap = float(ts[0] - start)
    end_gap = float(end - ts[-1])
    extension_threshold = average_interval * 1.1
    extend_start = start_gap if start_gap < extension_threshold else average_interval / 2
    extend_end = end_gap if end_gap < extension_threshold else average_interval / 2
    if is_counter and sampled_delta > 0 and float(values[0]) >= 0:
        # Never extrapolate a counter below zero at the window start.
        zero_point = sampled_interval * float(values[0]) / sampled_delta
        extend_start = min(extend_start, zero_point)
    extrapolated_interval = sampled_interval + extend_start + extend_end
    return sampled_delta * extrapolated_interval / sampled_interval


def _rate(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    delta = _extrapolated_delta(ts, vs, start, end, is_counter=True)
    if delta is None:
        return None
    return delta / (end - start)


def _increase(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return _extrapolated_delta(ts, vs, start, end, is_counter=True)


def _delta(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return _extrapolated_delta(ts, vs, start, end, is_counter=False)


def _irate(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(ts) < 2:
        return None
    dv = float(vs[-1] - vs[-2])
    if dv < 0:  # counter reset between the last two samples
        dv = float(vs[-1])
    dt = float(ts[-1] - ts[-2])
    return dv / dt if dt > 0 else None


def _idelta(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(ts) < 2:
        return None
    return float(vs[-1] - vs[-2])


def _deriv(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    """Least-squares slope, as Prometheus's deriv()."""
    if len(ts) < 2:
        return None
    x = ts - ts[0]
    n = len(x)
    sx = float(x.sum())
    sy = float(vs.sum())
    sxy = float((x * vs).sum())
    sxx = float((x * x).sum())
    denom = n * sxx - sx * sx
    if denom == 0:
        return None
    return (n * sxy - sx * sy) / denom


def _changes(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(vs) == 0:
        return None
    return float(np.count_nonzero(np.diff(vs) != 0))


def _resets(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(vs) == 0:
        return None
    return float(np.count_nonzero(np.diff(vs) < 0))


def _over_time(reducer: Callable[[np.ndarray], float]) -> RangeFunc:
    def func(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
        if len(vs) == 0:
            return None
        return float(reducer(vs))

    return func


def _last_over_time(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return float(vs[-1]) if len(vs) else None


def _present_over_time(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return 1.0 if len(vs) else None


#: Range functions: name -> implementation.
RANGE_FUNCTIONS: dict[str, RangeFunc] = {
    "rate": _rate,
    "irate": _irate,
    "increase": _increase,
    "delta": _delta,
    "idelta": _idelta,
    "deriv": _deriv,
    "changes": _changes,
    "resets": _resets,
    "avg_over_time": _over_time(np.mean),
    "sum_over_time": _over_time(np.sum),
    "min_over_time": _over_time(np.min),
    "max_over_time": _over_time(np.max),
    "count_over_time": _over_time(len),
    "stddev_over_time": _over_time(lambda v: float(np.std(v))),
    "stdvar_over_time": _over_time(lambda v: float(np.var(v))),
    "last_over_time": _last_over_time,
    "present_over_time": _present_over_time,
}

# -- windowed (columnar) kernels ----------------------------------------
#
# A *window kernel* evaluates one range function over many windows of
# one series at once: given the series' sample arrays plus per-step
# ``[lo, hi)`` index bounds and ``[start, end]`` time bounds, it
# returns one value per step, NaN marking "no result" (the columnar
# engine treats NaN kernel output as an absent element, mirroring the
# per-step engine dropping None/NaN results).
#
# Kernels must be *bit-identical* to the scalar implementations above
# — the differential test harness asserts it.  Functions whose value
# depends only on window endpoints, exact integer counts, or the
# extrapolation formula are vectorized outright (the elementwise IEEE
# ops match the scalar code's operation order); counter windows that
# contain resets fall back to the scalar implementation per window,
# because the reset-correction accumulation order cannot be reproduced
# with prefix sums.  Everything else (``avg_over_time``, ``deriv``…)
# uses a generic fallback that slices views and calls the scalar
# implementation — still a large win, since the columnar engine has
# already amortised selection, snapshotting and searchsorted.

WindowFunc = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    np.ndarray,
]


def _windowed_fallback(impl: RangeFunc) -> WindowFunc:
    def kernel(ts, vs, los, his, starts, ends):
        out = np.full(len(los), np.nan)
        for i in range(len(los)):
            lo, hi = los[i], his[i]
            if hi <= lo:
                continue
            value = impl(ts[lo:hi], vs[lo:hi], float(starts[i]), float(ends[i]))
            if value is not None:
                out[i] = value
        return out

    return kernel


def _w_extrapolated_delta(ts, vs, los, his, starts, ends, *, is_counter: bool):
    T = len(los)
    out = np.full(T, np.nan)
    n = his - los
    ok = n >= 2
    if not ok.any():
        return out
    lo = np.where(ok, los, 0)
    hi = np.where(ok, his, 2)
    first_t, last_t = ts[lo], ts[hi - 1]
    first_v, last_v = vs[lo], vs[hi - 1]
    sampled_interval = last_t - first_t
    ok &= sampled_interval > 0
    if is_counter and len(vs) >= 2:
        # Exact integer prefix count of reset positions: window
        # [lo, hi) contains a reset iff some i in [lo, hi-2] drops.
        reset_count = np.concatenate(([0], np.cumsum(np.diff(vs) < 0)))
        has_reset = ok & (reset_count[hi - 1] - reset_count[lo] > 0)
    else:
        has_reset = np.zeros(T, dtype=bool)
    easy = ok & ~has_reset
    with np.errstate(divide="ignore", invalid="ignore"):
        sampled_delta = last_v - first_v
        average_interval = sampled_interval / (n - 1)
        start_gap = first_t - starts
        end_gap = ends - last_t
        threshold = average_interval * 1.1
        extend_start = np.where(start_gap < threshold, start_gap, average_interval / 2)
        extend_end = np.where(end_gap < threshold, end_gap, average_interval / 2)
        if is_counter:
            clamp = (sampled_delta > 0) & (first_v >= 0)
            zero_point = sampled_interval * first_v / sampled_delta
            extend_start = np.where(
                clamp, np.minimum(extend_start, zero_point), extend_start
            )
        extrapolated_interval = (sampled_interval + extend_start) + extend_end
        result = sampled_delta * extrapolated_interval / sampled_interval
    out[easy] = result[easy]
    for i in np.nonzero(has_reset)[0]:
        value = _extrapolated_delta(
            ts[los[i] : his[i]],
            vs[los[i] : his[i]],
            float(starts[i]),
            float(ends[i]),
            is_counter=is_counter,
        )
        if value is not None:
            out[i] = value
    return out


def _w_rate(ts, vs, los, his, starts, ends):
    delta = _w_extrapolated_delta(ts, vs, los, his, starts, ends, is_counter=True)
    return delta / (ends - starts)


def _w_increase(ts, vs, los, his, starts, ends):
    return _w_extrapolated_delta(ts, vs, los, his, starts, ends, is_counter=True)


def _w_delta(ts, vs, los, his, starts, ends):
    return _w_extrapolated_delta(ts, vs, los, his, starts, ends, is_counter=False)


def _w_irate(ts, vs, los, his, starts, ends):
    out = np.full(len(los), np.nan)
    ok = his - los >= 2
    if not ok.any():
        return out
    hi = np.where(ok, his, 2)
    dv = vs[hi - 1] - vs[hi - 2]
    dv = np.where(dv < 0, vs[hi - 1], dv)  # counter reset at the tail
    dt = ts[hi - 1] - ts[hi - 2]
    ok &= dt > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        result = dv / dt
    out[ok] = result[ok]
    return out


def _w_idelta(ts, vs, los, his, starts, ends):
    out = np.full(len(los), np.nan)
    ok = his - los >= 2
    if not ok.any():
        return out
    hi = np.where(ok, his, 2)
    result = vs[hi - 1] - vs[hi - 2]
    out[ok] = result[ok]
    return out


def _w_diff_count(predicate_diffs: np.ndarray, los, his):
    """Count predicate hits between consecutive window samples (exact)."""
    counts = np.concatenate(([0], np.cumsum(predicate_diffs)))
    top = len(counts) - 1
    lo = np.minimum(los, top)
    hi = np.minimum(np.maximum(his - 1, lo), top)
    return (counts[hi] - counts[lo]).astype(np.float64)


def _w_changes(ts, vs, los, his, starts, ends):
    out = np.full(len(los), np.nan)
    ok = his > los
    if not ok.any():
        return out
    if len(vs) >= 2:
        with np.errstate(invalid="ignore"):
            result = _w_diff_count(np.diff(vs) != 0, los, his)
    else:
        result = np.zeros(len(los))
    out[ok] = result[ok]
    return out


def _w_resets(ts, vs, los, his, starts, ends):
    out = np.full(len(los), np.nan)
    ok = his > los
    if not ok.any():
        return out
    if len(vs) >= 2:
        with np.errstate(invalid="ignore"):
            result = _w_diff_count(np.diff(vs) < 0, los, his)
    else:
        result = np.zeros(len(los))
    out[ok] = result[ok]
    return out


def _w_count(ts, vs, los, his, starts, ends):
    n = (his - los).astype(np.float64)
    return np.where(n > 0, n, np.nan)


def _w_last(ts, vs, los, his, starts, ends):
    out = np.full(len(los), np.nan)
    ok = his > los
    if ok.any():
        out[ok] = vs[np.where(ok, his, 1) - 1][ok]
    return out


def _w_present(ts, vs, los, his, starts, ends):
    return np.where(his > los, 1.0, np.nan)


#: Window kernels for every range function; non-vectorizable ones get
#: the scalar-fallback wrapper so semantics stay bit-identical.
WINDOW_FUNCTIONS: dict[str, WindowFunc] = {
    name: _windowed_fallback(impl) for name, impl in RANGE_FUNCTIONS.items()
}
WINDOW_FUNCTIONS.update(
    {
        "rate": _w_rate,
        "irate": _w_irate,
        "increase": _w_increase,
        "delta": _w_delta,
        "idelta": _w_idelta,
        "changes": _w_changes,
        "resets": _w_resets,
        "count_over_time": _w_count,
        "last_over_time": _w_last,
        "present_over_time": _w_present,
    }
)


#: quantile_over_time takes a scalar parameter; handled by the engine
#: with this helper.
def quantile_over_time(q: float, vs: np.ndarray) -> float:
    if len(vs) == 0:
        return math.nan
    if q < 0:
        return -math.inf
    if q > 1:
        return math.inf
    return float(np.quantile(vs, q))


def histogram_bucket_quantile(q: float, buckets: list[tuple[float, float]]) -> float:
    """Prometheus ``bucketQuantile`` over cumulative ``(le, count)`` pairs.

    ``buckets`` must be sorted by ``le``; the list must end in a
    ``+Inf`` bucket to be usable (otherwise NaN, matching Prometheus).
    Both evaluators call this one helper, keeping their
    ``histogram_quantile`` results bit-identical.
    """
    if math.isnan(q):
        return math.nan
    if q < 0:
        return -math.inf
    if q > 1:
        return math.inf
    if not buckets or not math.isinf(buckets[-1][0]):
        return math.nan
    total = buckets[-1][1]
    if total == 0 or math.isnan(total):
        return math.nan
    rank = q * total
    b = 0
    while b < len(buckets) - 1 and buckets[b][1] < rank:
        b += 1
    if b == len(buckets) - 1:
        # The quantile falls in the +Inf bucket: the best available
        # answer is the highest finite bound.
        return buckets[-2][0] if len(buckets) >= 2 else math.nan
    bucket_end = buckets[b][0]
    bucket_count = buckets[b][1]
    if b == 0:
        if bucket_end <= 0:
            return bucket_end
        bucket_start, prev_count = 0.0, 0.0
    else:
        bucket_start, prev_count = buckets[b - 1][0], buckets[b - 1][1]
    in_bucket = bucket_count - prev_count
    if in_bucket <= 0:
        return bucket_end
    return bucket_start + (bucket_end - bucket_start) * ((rank - prev_count) / in_bucket)


ElementFunc = Callable[..., float]

#: Element-wise functions over instant vectors; extra scalar args allowed.
ELEMENT_FUNCTIONS: dict[str, ElementFunc] = {
    "abs": abs,
    "ceil": math.ceil,
    "floor": math.floor,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "ln": lambda v: math.log(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "log2": lambda v: math.log2(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "log10": lambda v: math.log10(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "sgn": lambda v: float((v > 0) - (v < 0)),
    "round": lambda v, to=1.0: round(v / to) * to if to else math.nan,
    "clamp": lambda v, lo, hi: min(max(v, lo), hi),
    "clamp_min": lambda v, lo: max(v, lo),
    "clamp_max": lambda v, hi: min(v, hi),
}

#: Special forms implemented inside the engine.
SPECIAL_FUNCTIONS = (
    "scalar",
    "vector",
    "time",
    "timestamp",
    "absent",
    "sort",
    "sort_desc",
    "label_replace",
    "label_join",
    "quantile_over_time",
    "histogram_quantile",
)

#: Every callable name the parser should accept.
FUNCTIONS = frozenset(RANGE_FUNCTIONS) | frozenset(ELEMENT_FUNCTIONS) | frozenset(SPECIAL_FUNCTIONS)
