"""PromQL function implementations.

Functions fall into three families the engine dispatches on:

* **range functions** (``rate``, ``increase``, ``*_over_time``…):
  consume one matrix selector window per series and produce one value.
  Counter semantics (reset detection, boundary extrapolation) follow
  Prometheus's ``extrapolatedRate`` so recorded power series behave
  like the real system's.
* **element-wise functions** (``abs``, ``clamp_min``…): map over the
  values of an instant vector.
* **special forms** (``scalar``, ``vector``, ``time``, ``timestamp``,
  ``label_replace``, ``label_join``, ``absent``, ``sort``…): need
  evaluation context and are implemented inside the engine; they are
  listed here so the parser recognises the names.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

RangeFunc = Callable[[np.ndarray, np.ndarray, float, float], float | None]


def _counter_corrected(values: np.ndarray) -> np.ndarray:
    """Undo counter resets: add the pre-reset value at each drop."""
    if len(values) < 2:
        return values
    # At a reset from v_prev to v_new the counter really advanced by
    # v_new, so v_prev is added to everything after the reset point.
    resets = np.where(np.diff(values) < 0)[0]
    if len(resets) == 0:
        return values
    corrected = values.astype(np.float64).copy()
    for idx in resets:
        corrected[idx + 1 :] += values[idx]
    return corrected


def _extrapolated_delta(
    ts: np.ndarray,
    vs: np.ndarray,
    start: float,
    end: float,
    *,
    is_counter: bool,
) -> float | None:
    """Prometheus ``extrapolatedRate`` core.

    Computes the increase over the window with boundary extrapolation:
    the sampled delta is scaled up to cover the gaps between the first/
    last samples and the window edges, but by no more than half an
    average sample interval (and, for counters, never extrapolating
    below zero).
    """
    if len(ts) < 2:
        return None
    values = _counter_corrected(vs) if is_counter else vs
    sampled_delta = float(values[-1] - values[0])
    sampled_interval = float(ts[-1] - ts[0])
    if sampled_interval <= 0:
        return None
    average_interval = sampled_interval / (len(ts) - 1)
    # Gap to each boundary.
    start_gap = float(ts[0] - start)
    end_gap = float(end - ts[-1])
    extension_threshold = average_interval * 1.1
    extend_start = start_gap if start_gap < extension_threshold else average_interval / 2
    extend_end = end_gap if end_gap < extension_threshold else average_interval / 2
    if is_counter and sampled_delta > 0 and float(values[0]) >= 0:
        # Never extrapolate a counter below zero at the window start.
        zero_point = sampled_interval * float(values[0]) / sampled_delta
        extend_start = min(extend_start, zero_point)
    extrapolated_interval = sampled_interval + extend_start + extend_end
    return sampled_delta * extrapolated_interval / sampled_interval


def _rate(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    delta = _extrapolated_delta(ts, vs, start, end, is_counter=True)
    if delta is None:
        return None
    return delta / (end - start)


def _increase(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return _extrapolated_delta(ts, vs, start, end, is_counter=True)


def _delta(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return _extrapolated_delta(ts, vs, start, end, is_counter=False)


def _irate(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(ts) < 2:
        return None
    dv = float(vs[-1] - vs[-2])
    if dv < 0:  # counter reset between the last two samples
        dv = float(vs[-1])
    dt = float(ts[-1] - ts[-2])
    return dv / dt if dt > 0 else None


def _idelta(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(ts) < 2:
        return None
    return float(vs[-1] - vs[-2])


def _deriv(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    """Least-squares slope, as Prometheus's deriv()."""
    if len(ts) < 2:
        return None
    x = ts - ts[0]
    n = len(x)
    sx = float(x.sum())
    sy = float(vs.sum())
    sxy = float((x * vs).sum())
    sxx = float((x * x).sum())
    denom = n * sxx - sx * sx
    if denom == 0:
        return None
    return (n * sxy - sx * sy) / denom


def _changes(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(vs) == 0:
        return None
    return float(np.count_nonzero(np.diff(vs) != 0))


def _resets(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    if len(vs) == 0:
        return None
    return float(np.count_nonzero(np.diff(vs) < 0))


def _over_time(reducer: Callable[[np.ndarray], float]) -> RangeFunc:
    def func(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
        if len(vs) == 0:
            return None
        return float(reducer(vs))

    return func


def _last_over_time(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return float(vs[-1]) if len(vs) else None


def _present_over_time(ts: np.ndarray, vs: np.ndarray, start: float, end: float) -> float | None:
    return 1.0 if len(vs) else None


#: Range functions: name -> implementation.
RANGE_FUNCTIONS: dict[str, RangeFunc] = {
    "rate": _rate,
    "irate": _irate,
    "increase": _increase,
    "delta": _delta,
    "idelta": _idelta,
    "deriv": _deriv,
    "changes": _changes,
    "resets": _resets,
    "avg_over_time": _over_time(np.mean),
    "sum_over_time": _over_time(np.sum),
    "min_over_time": _over_time(np.min),
    "max_over_time": _over_time(np.max),
    "count_over_time": _over_time(len),
    "stddev_over_time": _over_time(lambda v: float(np.std(v))),
    "stdvar_over_time": _over_time(lambda v: float(np.var(v))),
    "last_over_time": _last_over_time,
    "present_over_time": _present_over_time,
}

#: quantile_over_time takes a scalar parameter; handled by the engine
#: with this helper.
def quantile_over_time(q: float, vs: np.ndarray) -> float:
    if len(vs) == 0:
        return math.nan
    if q < 0:
        return -math.inf
    if q > 1:
        return math.inf
    return float(np.quantile(vs, q))


ElementFunc = Callable[..., float]

#: Element-wise functions over instant vectors; extra scalar args allowed.
ELEMENT_FUNCTIONS: dict[str, ElementFunc] = {
    "abs": abs,
    "ceil": math.ceil,
    "floor": math.floor,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "ln": lambda v: math.log(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "log2": lambda v: math.log2(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "log10": lambda v: math.log10(v) if v > 0 else (-math.inf if v == 0 else math.nan),
    "sgn": lambda v: float((v > 0) - (v < 0)),
    "round": lambda v, to=1.0: round(v / to) * to if to else math.nan,
    "clamp": lambda v, lo, hi: min(max(v, lo), hi),
    "clamp_min": lambda v, lo: max(v, lo),
    "clamp_max": lambda v, hi: min(v, hi),
}

#: Special forms implemented inside the engine.
SPECIAL_FUNCTIONS = (
    "scalar",
    "vector",
    "time",
    "timestamp",
    "absent",
    "sort",
    "sort_desc",
    "label_replace",
    "label_join",
    "quantile_over_time",
)

#: Every callable name the parser should accept.
FUNCTIONS = frozenset(RANGE_FUNCTIONS) | frozenset(ELEMENT_FUNCTIONS) | frozenset(SPECIAL_FUNCTIONS)
