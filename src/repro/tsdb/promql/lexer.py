"""PromQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.common.errors import QueryError


class TokenType(Enum):
    IDENT = auto()  # metric names, keywords, function names
    NUMBER = auto()
    STRING = auto()
    DURATION = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    COLON = auto()  # subquery separator [range:step]
    OP = auto()  # + - * / % ^ == != >= <= > < =~ !~ =
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    pos: int


KEYWORDS = frozenset(
    {
        "by",
        "without",
        "on",
        "ignoring",
        "group_left",
        "group_right",
        "offset",
        "bool",
        "and",
        "or",
        "unless",
    }
)

_DURATION_UNITS = ("ms", "s", "m", "h", "d", "w", "y")


def _is_ident_start(ch: str) -> bool:
    # ':' may appear *inside* recording-rule names but not start one
    # (Prometheus rule); a leading ':' is the subquery separator.
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", ":")


def tokenize(text: str) -> list[Token]:
    """Tokenize a PromQL expression.  Raises :class:`QueryError`."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\n\r":
            i += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        start = i
        # punctuation
        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "{": TokenType.LBRACE,
            "}": TokenType.RBRACE,
            "[": TokenType.LBRACKET,
            "]": TokenType.RBRACKET,
            ",": TokenType.COMMA,
            ":": TokenType.COLON,
        }
        if ch in simple:
            tokens.append(Token(simple[ch], ch, start))
            i += 1
            continue
        # multi-char operators first
        two = text[i : i + 2]
        if two in ("==", "!=", ">=", "<=", "=~", "!~"):
            tokens.append(Token(TokenType.OP, two, start))
            i += 2
            continue
        if ch in "+-*/%^><=":
            tokens.append(Token(TokenType.OP, ch, start))
            i += 1
            continue
        if ch in ("'", '"'):
            quote = ch
            i += 1
            chars: list[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    nxt = text[i + 1]
                    chars.append({"n": "\n", "t": "\t", quote: quote, "\\": "\\"}.get(nxt, nxt))
                    i += 2
                    continue
                chars.append(text[i])
                i += 1
            if i >= n:
                raise QueryError("unterminated string", position=start)
            i += 1  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(chars), start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            # scientific notation
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
                    tokens.append(Token(TokenType.NUMBER, text[i:j], start))
                    i = j
                    continue
            # duration suffix?  (15s, 5m, 1h30m…)
            if j < n and text[j].isalpha():
                k = j
                dur = True
                while k < n and (text[k].isalnum()):
                    k += 1
                candidate = text[i:k]
                # validate it decomposes into number+unit pairs
                import re as _re

                if _re.fullmatch(r"(\d+(?:\.\d+)?(?:ms|s|m|h|d|w|y))+", candidate):
                    tokens.append(Token(TokenType.DURATION, candidate, start))
                    i = k
                    continue
                del dur
            tokens.append(Token(TokenType.NUMBER, text[i:j], start))
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            tokens.append(Token(TokenType.IDENT, text[i:j], start))
            i = j
            continue
        raise QueryError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
