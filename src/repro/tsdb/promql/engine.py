"""PromQL evaluation engine (instant and range queries).

Evaluation model mirrors Prometheus: a *range query* is an instant
query evaluated at every step timestamp; an *instant query* walks the
AST producing scalars and instant vectors.  Matrix selectors exist
only as arguments to range functions.

Semantics reproduced from Prometheus:

* instant vector selectors look back up to ``lookback`` (default 5 m)
  for the most recent sample;
* arithmetic between vectors matches elements by label signature with
  ``on``/``ignoring`` and supports many-to-one via ``group_left``
  (the exact feature Eq. (1) needs: per-job CPU-time series multiplied
  against per-node IPMI power series);
* comparisons filter unless the ``bool`` modifier is present;
* aggregations group by label subsets; ``topk``/``bottomk`` keep
  element labels; metric names are dropped by every transforming
  operation.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.common.errors import QueryError
from repro.obs import query as obsquery
from repro.tsdb.model import METRIC_NAME_LABEL, Labels
from repro.tsdb.promql.ast import (
    Aggregation,
    BinaryOp,
    Call,
    Expr,
    MatrixSelector,
    NumberLiteral,
    Paren,
    StringLiteral,
    Subquery,
    UnaryOp,
    VectorMatching,
    VectorSelector,
)
from repro.tsdb.promql.functions import (
    ELEMENT_FUNCTIONS,
    RANGE_FUNCTIONS,
    histogram_bucket_quantile,
    quantile_over_time,
)
from repro.tsdb.promql.parser import parse_expr

DEFAULT_LOOKBACK = 300.0


def range_steps(start: float, end: float, step: float) -> np.ndarray:
    """Step timestamps of a range query, generated **by index**.

    ``start + i * step`` for each index keeps the two places that
    enumerate steps (the evaluation loop and
    :meth:`RangeResult.timestamps`) bit-identical; the previous
    ``t += step`` accumulation drifted away from ``np.arange`` for
    non-dyadic steps.
    """
    if step <= 0:
        raise QueryError("step must be positive")
    n = int(math.floor((end - start) / step + 1e-9)) + 1
    if n < 0:
        n = 0
    return start + np.arange(n, dtype=np.float64) * step


@lru_cache(maxsize=256)
def _compile_anchored(regex: str) -> re.Pattern[str]:
    """Compiled, fully-anchored regex for label_replace (cached —
    mirrors :class:`Matcher`'s precompiled ``_regex``)."""
    return re.compile(f"^(?:{regex})$")


@dataclass(frozen=True)
class VectorElement:
    labels: Labels
    value: float


@dataclass
class InstantResult:
    """Result of an instant query: a vector or a scalar."""

    timestamp: float
    vector: list[VectorElement] = field(default_factory=list)
    scalar: float | None = None

    @property
    def is_scalar(self) -> bool:
        return self.scalar is not None

    def by_labels(self) -> dict[Labels, float]:
        return {el.labels: el.value for el in self.vector}


@dataclass
class RangeResult:
    """Result of a range query: per-series sample arrays."""

    start: float
    end: float
    step: float
    series: dict[Labels, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def timestamps(self) -> np.ndarray:
        return range_steps(self.start, self.end, self.step)


class _Vector(list):
    """Internal instant-vector value (list of VectorElement)."""


def _seq_sum(values) -> float:
    """Strict left-to-right float accumulation.

    Both evaluators define sum/avg/stddev aggregation in terms of this
    order (the columnar path reproduces it as a masked row-by-row
    accumulate over the step axis), which is what makes their results
    bit-identical rather than merely close.
    """
    total = 0.0
    for v in values:
        total += v
    return total


def _seq_moments(values) -> tuple[float, float]:
    """(mean, variance) with the shared sequential accumulation order."""
    n = len(values)
    mean = _seq_sum(values) / n
    deviations = []
    for v in values:
        d = v - mean
        deviations.append(d * d)
    return mean, _seq_sum(deviations) / n


class PromQLEngine:
    """Evaluates PromQL against any object with a ``select`` method.

    The storage contract is :meth:`repro.tsdb.storage.TSDB.select`;
    the Thanos store gateway implements the same interface, so one
    engine serves both the hot and long-term paths.
    """

    def __init__(self, storage, lookback: float = DEFAULT_LOOKBACK) -> None:
        self.storage = storage
        self.lookback = lookback
        # Per-strategy evaluation accounting (self-telemetry): total
        # wall seconds and query counts keyed by evaluator name.
        self.strategy_seconds: dict[str, float] = {}
        self.strategy_queries: dict[str, int] = {}

    def _record_strategy(self, strategy: str, elapsed: float) -> None:
        self.strategy_seconds[strategy] = self.strategy_seconds.get(strategy, 0.0) + elapsed
        self.strategy_queries[strategy] = self.strategy_queries.get(strategy, 0) + 1

    def strategy_stats(self) -> dict[str, dict[str, float]]:
        """Per-evaluator totals: ``{strategy: {queries, seconds}}``."""
        return {
            name: {
                "queries": float(self.strategy_queries.get(name, 0)),
                "seconds": self.strategy_seconds.get(name, 0.0),
            }
            for name in sorted(self.strategy_queries)
        }

    # -- public API -------------------------------------------------------
    def query(self, expr: str | Expr, at: float, *, strategy: str = "per_step") -> InstantResult:
        """Instant query at timestamp ``at``.

        ``strategy`` selects the evaluator: ``"per_step"`` is the
        classic AST walk, ``"columnar"`` routes through the vectorized
        evaluator with a single step (used by rule groups so they share
        the storage selector memo and the batched code path).
        """
        ast = parse_expr(expr) if isinstance(expr, str) else expr
        started = time.perf_counter()
        if strategy == "columnar":
            from repro.tsdb.promql.columnar import eval_instant_columnar

            value = eval_instant_columnar(self, ast, at)
        elif strategy == "per_step":
            value = self._eval(ast, at)
        else:
            raise QueryError(f"unknown evaluation strategy {strategy!r}")
        self._record_strategy(strategy, time.perf_counter() - started)
        if isinstance(value, _Vector):
            # Results are label-sorted for determinism, except when the
            # outermost expression is sort()/sort_desc(), whose whole
            # point is value ordering.
            if isinstance(ast, Call) and ast.func in ("sort", "sort_desc"):
                return InstantResult(timestamp=at, vector=list(value))
            vec = sorted(value, key=lambda el: tuple(el.labels))
            return InstantResult(timestamp=at, vector=list(vec))
        if isinstance(value, (int, float)):
            return InstantResult(timestamp=at, scalar=float(value))
        raise QueryError(f"expression does not produce a vector or scalar: {type(value).__name__}")

    def query_range(
        self,
        expr: str | Expr,
        start: float,
        end: float,
        step: float,
        *,
        strategy: str = "columnar",
    ) -> RangeResult:
        """Range query over ``[start, end]`` at ``step`` resolution.

        ``strategy="columnar"`` (the default) resolves every selector
        once, snapshots the matched series as ndarrays and evaluates
        the whole expression along the step axis as matrix operations.
        ``strategy="per_step"`` is the reference evaluator — an
        instant evaluation per step timestamp — kept for differential
        testing; both produce bit-identical results.
        """
        if step <= 0:
            raise QueryError("step must be positive")
        if end < start:
            raise QueryError("end before start")
        ast = parse_expr(expr) if isinstance(expr, str) else expr
        steps = range_steps(start, end, step)
        result = RangeResult(start=start, end=end, step=step)
        started = time.perf_counter()
        if strategy == "columnar":
            from repro.tsdb.promql.columnar import eval_range_columnar

            result.series = eval_range_columnar(self, ast, steps)
        elif strategy == "per_step":
            result.series = self._eval_range_per_step(ast, steps)
        else:
            raise QueryError(f"unknown evaluation strategy {strategy!r}")
        self._record_strategy(strategy, time.perf_counter() - started)
        assert np.array_equal(result.timestamps(), steps)  # drift guard
        return result

    def _eval_range_per_step(
        self, ast: Expr, steps: np.ndarray
    ) -> dict[Labels, tuple[np.ndarray, np.ndarray]]:
        """Reference range evaluation: one instant query per step."""
        acc: dict[Labels, tuple[list[float], list[float]]] = {}
        for t in steps:
            t = float(t)
            value = self._eval(ast, t)
            if isinstance(value, _Vector):
                for el in value:
                    ts_list, vs_list = acc.setdefault(el.labels, ([], []))
                    ts_list.append(t)
                    vs_list.append(el.value)
            elif isinstance(value, (int, float)):
                ts_list, vs_list = acc.setdefault(Labels(), ([], []))
                ts_list.append(t)
                vs_list.append(float(value))
        return {
            labels: (np.asarray(ts), np.asarray(vs)) for labels, (ts, vs) in acc.items()
        }

    # -- evaluation ---------------------------------------------------------
    def _eval(self, node: Expr, at: float):
        if isinstance(node, NumberLiteral):
            return node.value
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, Paren):
            return self._eval(node.expr, at)
        if isinstance(node, UnaryOp):
            inner = self._eval(node.expr, at)
            if isinstance(inner, _Vector):
                return _Vector(
                    VectorElement(el.labels.without_name(), -el.value) for el in inner
                )
            return -inner
        if isinstance(node, VectorSelector):
            return self._eval_selector(node, at)
        if isinstance(node, (MatrixSelector, Subquery)):
            raise QueryError("range selector only valid as a range-function argument")
        if isinstance(node, Call):
            return self._eval_call(node, at)
        if isinstance(node, Aggregation):
            return self._eval_aggregation(node, at)
        if isinstance(node, BinaryOp):
            return self._eval_binary(node, at)
        raise QueryError(f"cannot evaluate node {node!r}")

    # -- selectors ------------------------------------------------------------
    def _eval_selector(self, node: VectorSelector, at: float) -> _Vector:
        ts = at - node.offset
        out = _Vector()
        # Module-attribute call on purpose: the per-query stats hooks
        # stay swappable for the disabled-overhead bench.
        for series in obsquery.tracked_select(self.storage, node.matchers):
            point = series.at_or_before(ts, self.lookback)
            if point is not None:
                out.append(VectorElement(series.labels, point[1]))
        obsquery.record_samples(len(out))
        return out

    def _windows(self, node, at: float) -> list[tuple[Labels, np.ndarray, np.ndarray, float, float]]:
        if isinstance(node, Subquery):
            return self._subquery_windows(node, at)
        end = at - node.selector.offset
        start = end - node.range_seconds
        out = []
        touched = 0
        for series in obsquery.tracked_select(self.storage, node.selector.matchers):
            w_ts, w_vs = series.window(start, end)
            # Staleness markers (NaN) delimit a series' life; range
            # functions never see them, as in Prometheus.
            keep = ~np.isnan(w_vs)
            if not keep.all():
                w_ts, w_vs = w_ts[keep], w_vs[keep]
            touched += len(w_ts)
            out.append((series.labels, w_ts, w_vs, start, end))
        obsquery.record_samples(touched)
        return out

    def _subquery_windows(self, node: Subquery, at: float) -> list[tuple[Labels, np.ndarray, np.ndarray, float, float]]:
        """Synthesise range-vector windows from an instant expression.

        The inner expression is evaluated at every step inside the
        window; steps are aligned to absolute multiples of the step
        (Prometheus subquery semantics), so results are stable across
        evaluation timestamps.
        """
        end = at - node.offset
        start = end - node.range_seconds
        step = node.step_seconds
        # Steps are generated by index on the absolute grid
        # (``m * step`` for integer m) rather than accumulated — the
        # same drift fix as range_steps(), and the property that lets
        # the columnar evaluator share one grid across all windows.
        first_index = math.ceil(start / step)
        acc: dict[Labels, tuple[list[float], list[float]]] = {}
        j = first_index
        while True:
            t = j * step
            if t > end + 1e-9:
                break
            value = self._eval(node.expr, t)
            if isinstance(value, _Vector):
                for el in value:
                    ts_list, vs_list = acc.setdefault(el.labels, ([], []))
                    ts_list.append(t)
                    vs_list.append(el.value)
            elif isinstance(value, (int, float)):
                ts_list, vs_list = acc.setdefault(Labels(), ([], []))
                ts_list.append(t)
                vs_list.append(float(value))
            j += 1
        return [
            (labels, np.asarray(ts), np.asarray(vs), start, end)
            for labels, (ts, vs) in acc.items()
        ]

    # -- function calls -----------------------------------------------------------
    def _eval_call(self, node: Call, at: float):
        func = node.func
        if func in RANGE_FUNCTIONS:
            if len(node.args) != 1 or not isinstance(node.args[0], (MatrixSelector, Subquery)):
                raise QueryError(f"{func}() expects a single range-vector argument")
            impl = RANGE_FUNCTIONS[func]
            out = _Vector()
            for labels, w_ts, w_vs, start, end in self._windows(node.args[0], at):
                value = impl(w_ts, w_vs, start, end)
                if value is not None and not math.isnan(value):
                    out.append(VectorElement(labels.without_name(), float(value)))
            return out
        if func == "quantile_over_time":
            if len(node.args) != 2 or not isinstance(node.args[1], (MatrixSelector, Subquery)):
                raise QueryError("quantile_over_time(scalar, range-vector) expected")
            q = self._eval_scalar(node.args[0], at)
            out = _Vector()
            for labels, w_ts, w_vs, _s, _e in self._windows(node.args[1], at):
                if len(w_vs):
                    out.append(VectorElement(labels.without_name(), quantile_over_time(q, w_vs)))
            return out
        if func in ELEMENT_FUNCTIONS:
            if not node.args:
                raise QueryError(f"{func}() needs at least one argument")
            vec = self._eval_vector(node.args[0], at)
            extra = [self._eval_scalar(arg, at) for arg in node.args[1:]]
            impl = ELEMENT_FUNCTIONS[func]
            return _Vector(
                VectorElement(el.labels.without_name(), float(impl(el.value, *extra))) for el in vec
            )
        return self._eval_special(node, at)

    def _eval_special(self, node: Call, at: float):
        func = node.func
        if func == "time":
            return float(at)
        if func == "scalar":
            vec = self._eval_vector(node.args[0], at)
            return float(vec[0].value) if len(vec) == 1 else math.nan
        if func == "vector":
            value = self._eval_scalar(node.args[0], at)
            return _Vector([VectorElement(Labels(), value)])
        if func == "timestamp":
            vec = self._eval_vector(node.args[0], at)
            # We do not track per-element original timestamps through
            # the lookback; the evaluation timestamp is the Prometheus
            # observable for fresh series and close enough for tests.
            return _Vector(VectorElement(el.labels.without_name(), float(at)) for el in vec)
        if func == "absent":
            vec = self._eval_vector(node.args[0], at)
            if vec:
                return _Vector()
            labels = {}
            arg = node.args[0]
            if isinstance(arg, VectorSelector):
                for m in arg.matchers:
                    if m.op.value == "=" and m.name != METRIC_NAME_LABEL:
                        labels[m.name] = m.value
            return _Vector([VectorElement(Labels(labels), 1.0)])
        if func in ("sort", "sort_desc"):
            vec = self._eval_vector(node.args[0], at)
            reverse = func == "sort_desc"
            return _Vector(sorted(vec, key=lambda el: el.value, reverse=reverse))
        if func == "label_replace":
            if len(node.args) != 5:
                raise QueryError("label_replace(v, dst, replacement, src, regex) expected")
            vec = self._eval_vector(node.args[0], at)
            dst, replacement, src, regex = (self._eval_string(a, at) for a in node.args[1:])
            pattern = _compile_anchored(regex)
            out = _Vector()
            for el in vec:
                match = pattern.match(el.labels.get(src, ""))
                if match:
                    new_value = match.expand(replacement.replace("$", "\\"))
                    d = el.labels.as_dict()
                    if new_value:
                        d[dst] = new_value
                    else:
                        d.pop(dst, None)
                    out.append(VectorElement(Labels(d), el.value))
                else:
                    out.append(el)
            return out
        if func == "histogram_quantile":
            if len(node.args) != 2:
                raise QueryError("histogram_quantile(scalar, vector) expected")
            q = self._eval_scalar(node.args[0], at)
            vec = self._eval_vector(node.args[1], at)
            return _Vector(
                VectorElement(labels, value)
                for labels, value in self._histogram_quantile_groups(q, vec)
            )
        if func == "label_join":
            if len(node.args) < 3:
                raise QueryError("label_join(v, dst, sep, src...) expected")
            vec = self._eval_vector(node.args[0], at)
            dst = self._eval_string(node.args[1], at)
            sep = self._eval_string(node.args[2], at)
            sources = [self._eval_string(a, at) for a in node.args[3:]]
            out = _Vector()
            for el in vec:
                joined = sep.join(el.labels.get(s, "") for s in sources)
                d = el.labels.as_dict()
                d[dst] = joined
                out.append(VectorElement(Labels(d), el.value))
            return out
        raise QueryError(f"unknown function {func!r}")

    @staticmethod
    def _histogram_quantile_groups(q: float, vec) -> list[tuple[Labels, float]]:
        """Group ``_bucket`` elements by identity and compute quantiles.

        Elements without a parseable ``le`` label are ignored, as in
        Prometheus.  Shared by both evaluators (the columnar path calls
        this per step column) so results stay bit-identical.
        """
        groups: dict[Labels, list[tuple[float, float]]] = {}
        for el in vec:
            le_raw = el.labels.get("le", "")
            try:
                le = float(le_raw)
            except ValueError:
                continue
            key = el.labels.without_name().drop("le")
            groups.setdefault(key, []).append((le, el.value))
        out: list[tuple[Labels, float]] = []
        for key, buckets in groups.items():
            buckets.sort(key=lambda pair: pair[0])
            out.append((key, histogram_bucket_quantile(q, buckets)))
        return out

    # -- aggregations ------------------------------------------------------------
    def _eval_aggregation(self, node: Aggregation, at: float) -> _Vector:
        vec = self._eval_vector(node.expr, at)
        param = self._eval_scalar(node.param, at) if node.param is not None else None

        def group_key(labels: Labels) -> Labels:
            if node.without:
                return labels.drop(*node.grouping, METRIC_NAME_LABEL)
            if node.grouping:
                return labels.keep(node.grouping)
            return Labels()

        groups: dict[Labels, list[VectorElement]] = {}
        for el in vec:
            groups.setdefault(group_key(el.labels), []).append(el)

        out = _Vector()
        op = node.op
        for key, members in groups.items():
            values = [m.value for m in members]
            if op == "sum":
                out.append(VectorElement(key, _seq_sum(values)))
            elif op == "avg":
                out.append(VectorElement(key, _seq_sum(values) / len(values)))
            elif op == "min":
                out.append(VectorElement(key, float(np.min(np.asarray(values)))))
            elif op == "max":
                out.append(VectorElement(key, float(np.max(np.asarray(values)))))
            elif op == "count":
                out.append(VectorElement(key, float(len(values))))
            elif op == "stddev":
                _mean, var = _seq_moments(values)
                out.append(VectorElement(key, math.sqrt(var)))
            elif op == "stdvar":
                _mean, var = _seq_moments(values)
                out.append(VectorElement(key, var))
            elif op == "quantile":
                if param is None:
                    raise QueryError("quantile requires a parameter")
                out.append(
                    VectorElement(
                        key, float(np.quantile(np.asarray(values), min(max(param, 0), 1)))
                    )
                )
            elif op in ("topk", "bottomk"):
                if param is None:
                    raise QueryError(f"{op} requires a parameter")
                k = max(int(param), 0)
                ordered = sorted(members, key=lambda m: m.value, reverse=(op == "topk"))
                # topk keeps the original element labels (incl. name).
                out.extend(ordered[:k])
            else:
                raise QueryError(f"unknown aggregation {op!r}")
        return out

    # -- binary operators -----------------------------------------------------------
    def _eval_binary(self, node: BinaryOp, at: float):
        lhs = self._eval(node.lhs, at)
        rhs = self._eval(node.rhs, at)
        lhs_vec = isinstance(lhs, _Vector)
        rhs_vec = isinstance(rhs, _Vector)
        if node.op in ("and", "or", "unless"):
            if not (lhs_vec and rhs_vec):
                raise QueryError(f"set operator {node.op} requires vector operands")
            return self._set_op(node, lhs, rhs)
        if lhs_vec and rhs_vec:
            return self._vector_vector(node, lhs, rhs)
        if lhs_vec or rhs_vec:
            return self._vector_scalar(node, lhs, rhs, scalar_on_right=rhs_vec is False)
        return self._scalar_scalar(node, float(lhs), float(rhs))

    @staticmethod
    def _apply_op(op: str, a: float, b: float) -> float:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b if b != 0 else (math.nan if a == 0 else math.copysign(math.inf, a) * math.copysign(1, b))
        if op == "%":
            return math.fmod(a, b) if b != 0 else math.nan
        if op == "^":
            return a**b
        if op == "==":
            return float(a == b)
        if op == "!=":
            return float(a != b)
        if op == ">":
            return float(a > b)
        if op == "<":
            return float(a < b)
        if op == ">=":
            return float(a >= b)
        if op == "<=":
            return float(a <= b)
        raise QueryError(f"unknown operator {op!r}")

    def _scalar_scalar(self, node: BinaryOp, a: float, b: float) -> float:
        if node.op in ("==", "!=", ">", "<", ">=", "<=") and not node.return_bool:
            raise QueryError("comparisons between scalars must use the bool modifier")
        return self._apply_op(node.op, a, b)

    def _vector_scalar(self, node: BinaryOp, lhs, rhs, *, scalar_on_right: bool) -> _Vector:
        vec: _Vector = lhs if scalar_on_right else rhs
        scalar = float(rhs) if scalar_on_right else float(lhs)
        comparison = node.op in ("==", "!=", ">", "<", ">=", "<=")
        out = _Vector()
        for el in vec:
            a, b = (el.value, scalar) if scalar_on_right else (scalar, el.value)
            result = self._apply_op(node.op, a, b)
            if comparison and not node.return_bool:
                if result:  # keep the element unchanged (filter semantics)
                    out.append(el)
            else:
                labels = el.labels.without_name() if (not comparison or node.return_bool) else el.labels
                out.append(VectorElement(labels, result if not comparison else float(result)))
        return out

    @staticmethod
    def _signature(labels: Labels, matching: VectorMatching | None) -> Labels:
        if matching is None:
            return labels.without_name()
        if matching.on:
            return labels.keep(matching.labels)
        return labels.drop(*matching.labels, METRIC_NAME_LABEL)

    def _vector_vector(self, node: BinaryOp, lhs: _Vector, rhs: _Vector) -> _Vector:
        matching = node.matching
        group = matching.group if matching else ""
        comparison = node.op in ("==", "!=", ">", "<", ">=", "<=")

        if group == "right":
            # Mirror: evaluate as group_left with operands swapped for
            # matching purposes, then compute with original sides.
            many, one = rhs, lhs
        elif group == "left":
            many, one = lhs, rhs
        else:
            many, one = lhs, rhs  # one-to-one; names kept for error text

        one_index: dict[Labels, VectorElement] = {}
        for el in one:
            sig = self._signature(el.labels, matching)
            if sig in one_index:
                raise QueryError(
                    f"many-to-many matching: duplicate signature {sig} on the "
                    f"'one' side of {node.op}"
                )
            one_index[sig] = el

        out = _Vector()
        if group:
            for el in many:
                sig = self._signature(el.labels, matching)
                partner = one_index.get(sig)
                if partner is None:
                    continue
                a, b = (el.value, partner.value) if group == "left" else (partner.value, el.value)
                value = self._apply_op(node.op, a, b)
                labels = el.labels.without_name()
                if matching and matching.include:
                    merged = labels.as_dict()
                    for name in matching.include:
                        value_from_one = partner.labels.get(name, "")
                        if value_from_one:
                            merged[name] = value_from_one
                        else:
                            merged.pop(name, None)
                    labels = Labels(merged)
                if comparison and not node.return_bool:
                    if value:
                        out.append(VectorElement(el.labels, el.value))
                else:
                    out.append(VectorElement(labels, value))
            return out

        # one-to-one
        seen: set[Labels] = set()
        for el in lhs:
            sig = self._signature(el.labels, matching)
            if sig in seen:
                raise QueryError(f"many-to-many matching: duplicate signature {sig} on left side")
            seen.add(sig)
            partner = one_index.get(sig)
            if partner is None:
                continue
            value = self._apply_op(node.op, el.value, partner.value)
            if comparison and not node.return_bool:
                if value:
                    out.append(el)
            else:
                result_labels = sig if (matching and matching.on) else el.labels.without_name()
                out.append(VectorElement(result_labels, value))
        return out

    def _set_op(self, node: BinaryOp, lhs: _Vector, rhs: _Vector) -> _Vector:
        matching = node.matching
        rhs_sigs = {self._signature(el.labels, matching) for el in rhs}
        if node.op == "and":
            return _Vector(el for el in lhs if self._signature(el.labels, matching) in rhs_sigs)
        if node.op == "unless":
            return _Vector(el for el in lhs if self._signature(el.labels, matching) not in rhs_sigs)
        # or: all of lhs plus rhs elements whose signature is absent on lhs
        lhs_sigs = {self._signature(el.labels, matching) for el in lhs}
        out = _Vector(lhs)
        out.extend(el for el in rhs if self._signature(el.labels, matching) not in lhs_sigs)
        return out

    # -- coercion helpers -------------------------------------------------------
    def _eval_vector(self, node: Expr, at: float) -> _Vector:
        value = self._eval(node, at)
        if not isinstance(value, _Vector):
            raise QueryError("expected an instant vector")
        return value

    def _eval_scalar(self, node: Expr, at: float) -> float:
        value = self._eval(node, at)
        if isinstance(value, _Vector):
            raise QueryError("expected a scalar")
        return float(value)

    def _eval_string(self, node: Expr, at: float) -> str:
        value = self._eval(node, at)
        if not isinstance(value, str):
            raise QueryError("expected a string literal")
        return value
