"""Columnar (vectorized) PromQL range evaluation.

The per-step evaluator in :mod:`repro.tsdb.promql.engine` re-walks the
AST and re-runs ``storage.select`` once per step timestamp: a 90-day
query at 1 h resolution is ~2160 full instant evaluations, each doing
fresh index intersections and per-series bisects.  This module
evaluates the whole range in one pass instead:

* every selector is resolved **once per query** (through the storage
  selector memo) and each matched series is materialised once as
  cached ndarrays (:meth:`Series.arrays`);
* instant-vector lookback is computed for **all step timestamps at
  once** with ``np.searchsorted``;
* range functions evaluate as vectorized window kernels
  (:data:`repro.tsdb.promql.functions.WINDOW_FUNCTIONS`);
* binary operators, aggregations and element functions execute along
  the step axis as ``(n_series × n_steps)`` matrix operations.

Values flow through evaluation as one of three shapes:

* :class:`_Matrix` — an instant vector per step: row labels plus a
  ``(S, T)`` value matrix and a same-shaped boolean **presence mask**.
  Presence is tracked separately from NaN because a present element
  may legitimately carry a NaN *value* (``0 / 0``), which aggregations
  must see, while an absent element must not participate at all.
* ``np.ndarray`` of shape ``(T,)`` — a scalar per step (always
  present, may be NaN-valued).
* ``str`` — a string literal.

Bit-identity with the per-step reference evaluator is a hard contract
(the differential harness in ``tests/test_promql_reference.py``
asserts it): every elementwise formula reproduces the scalar code's
operation order, aggregation accumulates rows in the same sequential
order the reference accumulates vector elements (absent entries
contribute an exact ``+0.0``), and anything that cannot be reproduced
vectorially (counter windows containing resets, most ``*_over_time``
reducers, ``^``/``%`` edge semantics, element functions that may
raise) falls back to the scalar implementation per window/element.

Known, deliberate divergence: ``sort()`` inside a *range* query is an
ordering no-op (range results are keyed by labels, not ordered), so an
aggregation nested *outside* a ``sort()``/``topk()`` may accumulate in
a different element order than the per-step path.  Prometheus itself
defines sort order only for instant-query presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QueryError
from repro.obs import prof
from repro.obs import query as obsquery
from repro.tsdb.model import METRIC_NAME_LABEL, Labels
from repro.tsdb.promql.ast import (
    Aggregation,
    BinaryOp,
    Call,
    Expr,
    MatrixSelector,
    NumberLiteral,
    Paren,
    StringLiteral,
    Subquery,
    UnaryOp,
    VectorSelector,
)
from repro.tsdb.promql.engine import (
    PromQLEngine,
    VectorElement,
    _compile_anchored,
    _Vector,
)
from repro.tsdb.promql.functions import (
    ELEMENT_FUNCTIONS,
    RANGE_FUNCTIONS,
    WINDOW_FUNCTIONS,
    histogram_bucket_quantile,
    quantile_over_time,
)

_COMPARISONS = ("==", "!=", ">", "<", ">=", "<=")

#: Process-wide columnar-evaluator counters (self-telemetry): queries
#: through each public entry point plus per-query memo hits.  Module
#: level because evaluator instances are per-query throwaways.
COLUMNAR_STATS = {
    "range_queries": 0,
    "instant_queries": 0,
    "selector_memo_hits": 0,
    "window_memo_hits": 0,
}


def _pruned_arrays(series, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
    """Columnar read of ``series`` pruned to a superset of ``[lo, hi]``.

    Chunk-backed series (persisted blocks, sealed head segments) serve
    ``query_window_arrays`` — a contiguous sample run covering the
    window that decodes only overlapping chunks.  Plain head series
    fall back to the full cached snapshot, which is already zero-copy.
    Bit-identity: samples outside the returned superset can neither be
    selected (every step's window/lookback lies inside ``[lo, hi]``)
    nor shadow a searchsorted hit within it.
    """
    fn = getattr(series, "query_window_arrays", None)
    if fn is not None:
        return fn(lo, hi)
    return series.arrays()


@dataclass
class _Matrix:
    """An instant vector at every step: rows are elements, columns steps."""

    labels: list[Labels]
    values: np.ndarray  # (S, T) float64
    present: np.ndarray  # (S, T) bool

    @property
    def nrows(self) -> int:
        return len(self.labels)


def eval_range_columnar(
    engine: PromQLEngine, ast: Expr, steps: np.ndarray
) -> dict[Labels, tuple[np.ndarray, np.ndarray]]:
    """Evaluate ``ast`` at every step; returns RangeResult.series data."""
    COLUMNAR_STATS["range_queries"] += 1
    ev = _ColumnarEval(engine, steps)
    return ev.materialize(ev.eval(ast))


def eval_instant_columnar(engine: PromQLEngine, ast: Expr, at: float):
    """Single-step columnar evaluation returning the engine's internal
    value types (``_Vector`` / float / str), for ``query(strategy=
    "columnar")`` — the path rule groups use."""
    COLUMNAR_STATS["instant_queries"] += 1
    ev = _ColumnarEval(engine, np.asarray([float(at)], dtype=np.float64))
    value = ev.eval(ast)
    if isinstance(value, _Matrix):
        vec = _Vector(
            VectorElement(value.labels[i], float(value.values[i, 0]))
            for i in range(value.nrows)
            if value.present[i, 0]
        )
        if isinstance(ast, Call) and ast.func in ("sort", "sort_desc"):
            vec = _Vector(
                sorted(vec, key=lambda el: el.value, reverse=(ast.func == "sort_desc"))
            )
        return vec
    if isinstance(value, np.ndarray):
        return float(value[0])
    return value


class _ColumnarEval:
    def __init__(self, engine: PromQLEngine, steps: np.ndarray) -> None:
        self.engine = engine
        self.storage = engine.storage
        self.lookback = engine.lookback
        self.steps = steps
        self.T = len(steps)
        # Per-query memos: identical selector / matrix-selector nodes
        # (e.g. rate(m[5m]) + increase(m[5m])) are resolved once.
        self._selector_memo: dict[Expr, _Matrix] = {}
        self._window_memo: dict[Expr, tuple] = {}

    # -- materialization -------------------------------------------------
    def materialize(self, value) -> dict[Labels, tuple[np.ndarray, np.ndarray]]:
        steps = self.steps
        if isinstance(value, _Matrix):
            acc: dict[Labels, tuple[np.ndarray, np.ndarray]] = {}
            for i, labels in enumerate(value.labels):
                pres = value.present[i]
                if not pres.any():
                    continue
                ts = steps[pres]
                vs = value.values[i][pres]
                prev = acc.get(labels)
                if prev is not None:
                    # Duplicate output labels (label_replace collisions):
                    # interleave by timestamp, earlier row first on ties
                    # — the per-step append order.
                    ts = np.concatenate([prev[0], ts])
                    vs = np.concatenate([prev[1], vs])
                    order = np.argsort(ts, kind="stable")
                    ts, vs = ts[order], vs[order]
                acc[labels] = (ts, vs)
            return acc
        if isinstance(value, np.ndarray):
            if not len(steps):
                return {}
            return {Labels(): (steps.copy(), np.asarray(value, dtype=np.float64))}
        # String expressions accumulate nothing, as in the per-step loop.
        return {}

    # -- dispatch --------------------------------------------------------
    def eval(self, node: Expr):
        if isinstance(node, NumberLiteral):
            return np.full(self.T, float(node.value))
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, Paren):
            return self.eval(node.expr)
        if isinstance(node, UnaryOp):
            inner = self.eval(node.expr)
            if isinstance(inner, _Matrix):
                return _Matrix(
                    [l.without_name() for l in inner.labels],
                    -inner.values,
                    inner.present.copy(),
                )
            return -inner
        if isinstance(node, VectorSelector):
            return self._selector(node)
        if isinstance(node, (MatrixSelector, Subquery)):
            raise QueryError("range selector only valid as a range-function argument")
        if isinstance(node, Call):
            return self._call(node)
        if isinstance(node, Aggregation):
            return self._aggregation(node)
        if isinstance(node, BinaryOp):
            return self._binary(node)
        raise QueryError(f"cannot evaluate node {node!r}")

    # -- coercions -------------------------------------------------------
    def _vector(self, node: Expr) -> _Matrix:
        value = self.eval(node)
        if not isinstance(value, _Matrix):
            raise QueryError("expected an instant vector")
        return value

    def _scalar(self, node: Expr) -> np.ndarray:
        value = self.eval(node)
        if isinstance(value, _Matrix):
            raise QueryError("expected a scalar")
        if isinstance(value, str):
            return np.full(self.T, float(value))
        return value

    def _string(self, node: Expr) -> str:
        value = self.eval(node)
        if not isinstance(value, str):
            raise QueryError("expected a string literal")
        return value

    # -- selectors -------------------------------------------------------
    def _selector(self, node: VectorSelector) -> _Matrix:
        cached = self._selector_memo.get(node)
        if cached is not None:
            COLUMNAR_STATS["selector_memo_hits"] += 1
            return cached
        # Module-attribute call on purpose: the per-query stats hooks
        # stay swappable for the disabled-overhead bench.
        series_list = obsquery.tracked_select(self.storage, node.matchers)
        ats = self.steps - node.offset
        S = len(series_list)
        values = np.full((S, self.T), np.nan)
        present = np.zeros((S, self.T), dtype=bool)
        labels: list[Labels] = []
        if self.T == 1:
            # Instant fast path (rule evaluation): one bisect per
            # series beats per-series searchsorted setup.
            at = float(ats[0])
            for i, series in enumerate(series_list):
                labels.append(series.labels)
                point = series.at_or_before(at, self.lookback)
                if point is not None:
                    values[i, 0] = point[1]
                    present[i, 0] = True
        else:
            # Chunk-granular pruning: only samples in
            # [first step - lookback, last step] can be selected, and
            # pruned-out older samples can never shadow the
            # last-sample-<=-at search (they'd fail the lookback test
            # anyway), so a contiguous superset read is bit-identical.
            lo_bound = float(ats[0]) - self.lookback
            hi_bound = float(ats[-1])
            for i, series in enumerate(series_list):
                labels.append(series.labels)
                ts_a, vs_a = _pruned_arrays(series, lo_bound, hi_bound)
                if not len(ts_a):
                    continue
                idx = np.searchsorted(ts_a, ats, side="right") - 1
                ok = idx >= 0
                safe = np.maximum(idx, 0)
                t_found = ts_a[safe]
                v_found = vs_a[safe]
                ok &= t_found > ats - self.lookback
                ok &= ~np.isnan(v_found)  # staleness marker
                values[i, ok] = v_found[ok]
                present[i] = ok
        obsquery.record_samples(int(present.sum()))
        mat = _Matrix(labels, values, present)
        self._selector_memo[node] = mat
        return mat

    # -- range-vector windows --------------------------------------------
    def _window_data(self, node):
        """Per-series window bounds for a matrix selector / subquery.

        Returns ``(starts, ends, rows)`` where each row is
        ``(labels, ts, vs, los, his)``: the series' (compressed) sample
        arrays plus per-step ``[lo, hi)`` bounds into them.
        """
        cached = self._window_memo.get(node)
        if cached is not None:
            COLUMNAR_STATS["window_memo_hits"] += 1
            return cached
        if isinstance(node, Subquery):
            data = self._subquery_window_data(node)
        else:
            ends = self.steps - node.selector.offset
            starts = ends - node.range_seconds
            rows = []
            touched = 0
            # Windows only ever span [first start, last end]; chunks
            # outside that never contribute, so skip decoding them.
            lo_bound = float(starts[0])
            hi_bound = float(ends[-1])
            for series in obsquery.tracked_select(self.storage, node.selector.matchers):
                ts_a, vs_a = _pruned_arrays(series, lo_bound, hi_bound)
                if len(vs_a):
                    nan = np.isnan(vs_a)
                    if nan.any():
                        # Staleness markers delimit a series' life; range
                        # functions never see them.  Filtering before the
                        # window search selects the same sample set as
                        # the reference's filter-after-slice.
                        keep = ~nan
                        ts_a, vs_a = ts_a[keep], vs_a[keep]
                los = np.searchsorted(ts_a, starts, side="left")
                his = np.searchsorted(ts_a, ends, side="right")
                touched += int(np.sum(his - los))
                rows.append((series.labels, ts_a, vs_a, los, his))
            obsquery.record_samples(touched)
            data = (starts, ends, rows)
        self._window_memo[node] = data
        return data

    def _subquery_window_data(self, node: Subquery):
        """Range-vector windows from an instant sub-expression.

        Subquery steps live on the absolute grid ``m * step`` (exactly
        the reference's index-generated timestamps), so one inner
        columnar evaluation over the union grid serves every window.
        """
        ends = self.steps - node.offset
        starts = ends - node.range_seconds
        sstep = node.step_seconds
        k_lo = np.ceil(starts / sstep).astype(np.int64)
        k_hi = np.floor((ends + 1e-9) / sstep).astype(np.int64)
        # One-ULP corrections so membership exactly matches the
        # reference's `t <= end + 1e-9` loop condition.
        k_hi += ((k_hi + 1) * sstep <= ends + 1e-9).astype(np.int64)
        k_hi -= (k_hi * sstep > ends + 1e-9).astype(np.int64)
        first_ts = k_lo * sstep
        last_ts = k_hi * sstep
        if not len(k_lo) or k_hi.max() < k_lo.min():
            return starts, ends, []
        m0 = int(k_lo.min())
        grid = np.arange(m0, int(k_hi.max()) + 1, dtype=np.int64) * sstep
        inner = _ColumnarEval(self.engine, grid).eval(node.expr)
        if isinstance(inner, np.ndarray):
            inner = _Matrix(
                [Labels()],
                np.asarray(inner, dtype=np.float64).reshape(1, -1),
                np.ones((1, len(grid)), dtype=bool),
            )
        elif not isinstance(inner, _Matrix):
            return starts, ends, []  # string sub-expression: no series
        rows = []
        for i, labels in enumerate(inner.labels):
            pres = inner.present[i]
            tsf = grid[pres]
            vsf = inner.values[i][pres]
            los = np.searchsorted(tsf, first_ts, side="left")
            his = np.searchsorted(tsf, last_ts, side="right")
            # NaN *values* are kept: the reference only filters
            # staleness markers for raw matrix selectors, not for
            # synthesised subquery windows.
            rows.append((labels, tsf, vsf, los, his))
        return starts, ends, rows

    # -- calls -----------------------------------------------------------
    def _call(self, node: Call):
        func = node.func
        if func in RANGE_FUNCTIONS:
            if len(node.args) != 1 or not isinstance(node.args[0], (MatrixSelector, Subquery)):
                raise QueryError(f"{func}() expects a single range-vector argument")
            starts, ends, rows = self._window_data(node.args[0])
            kernel = WINDOW_FUNCTIONS[func]
            values = np.full((len(rows), self.T), np.nan)
            labels = []
            with prof.profile(f"promql.kernel.{func}"):
                for i, (lbl, tsf, vsf, los, his) in enumerate(rows):
                    labels.append(lbl.without_name())
                    values[i] = kernel(tsf, vsf, los, his, starts, ends)
            # The per-step engine drops None/NaN range-function results.
            return _Matrix(labels, values, ~np.isnan(values))
        if func == "quantile_over_time":
            if len(node.args) != 2 or not isinstance(node.args[1], (MatrixSelector, Subquery)):
                raise QueryError("quantile_over_time(scalar, range-vector) expected")
            q = self._scalar(node.args[0])
            starts, ends, rows = self._window_data(node.args[1])
            values = np.full((len(rows), self.T), np.nan)
            present = np.zeros((len(rows), self.T), dtype=bool)
            labels = []
            for i, (lbl, tsf, vsf, los, his) in enumerate(rows):
                labels.append(lbl.without_name())
                for j in np.nonzero(his > los)[0]:
                    values[i, j] = quantile_over_time(float(q[j]), vsf[los[j] : his[j]])
                    present[i, j] = True  # NaN quantiles stay present
            return _Matrix(labels, values, present)
        if func in ELEMENT_FUNCTIONS:
            return self._element_call(node)
        return self._special(node)

    def _element_call(self, node: Call) -> _Matrix:
        func = node.func
        if not node.args:
            raise QueryError(f"{func}() needs at least one argument")
        vec = self._vector(node.args[0])
        extras = [self._scalar(arg) for arg in node.args[1:]]
        labels = [l.without_name() for l in vec.labels]
        values = np.full_like(vec.values, np.nan)
        if func == "abs":
            np.copyto(values, np.abs(vec.values), where=vec.present)
        elif func == "sqrt":
            if bool((vec.present & (vec.values < 0)).any()):
                raise ValueError("math domain error")  # as math.sqrt raises
            np.copyto(values, np.sqrt(vec.values), where=vec.present)
        else:
            # Python impls may raise (exp overflow, floor of NaN…);
            # apply them per present element so semantics — including
            # exceptions — match the per-step engine exactly.
            impl = ELEMENT_FUNCTIONS[func]
            vals = vec.values
            for i, j in zip(*np.nonzero(vec.present)):
                # Plain Python floats in, as the per-step engine passes.
                values[i, j] = float(impl(float(vals[i, j]), *(float(e[j]) for e in extras)))
        return _Matrix(labels, values, vec.present.copy())

    # -- special forms ---------------------------------------------------
    def _special(self, node: Call):
        func = node.func
        T = self.T
        if func == "time":
            return self.steps.copy()
        if func == "scalar":
            vec = self._vector(node.args[0])
            out = np.full(T, np.nan)
            if vec.nrows:
                counts = vec.present.sum(axis=0)
                first = np.argmax(vec.present, axis=0)
                chosen = vec.values[first, np.arange(T)]
                one = counts == 1
                out[one] = chosen[one]
            return out
        if func == "vector":
            value = self._scalar(node.args[0])
            return _Matrix(
                [Labels()],
                np.asarray(value, dtype=np.float64).reshape(1, -1).copy(),
                np.ones((1, T), dtype=bool),
            )
        if func == "timestamp":
            vec = self._vector(node.args[0])
            values = np.where(vec.present, self.steps, np.nan)
            return _Matrix(
                [l.without_name() for l in vec.labels], values, vec.present.copy()
            )
        if func == "absent":
            vec = self._vector(node.args[0])
            any_present = (
                vec.present.any(axis=0) if vec.nrows else np.zeros(T, dtype=bool)
            )
            labels = {}
            arg = node.args[0]
            if isinstance(arg, VectorSelector):
                for m in arg.matchers:
                    if m.op.value == "=" and m.name != METRIC_NAME_LABEL:
                        labels[m.name] = m.value
            present = ~any_present
            return _Matrix(
                [Labels(labels)],
                np.where(present, 1.0, np.nan).reshape(1, -1),
                present.reshape(1, -1),
            )
        if func in ("sort", "sort_desc"):
            # Ordering is instant-query presentation; range results are
            # keyed by labels.  eval_instant_columnar re-applies it.
            return self._vector(node.args[0])
        if func == "label_replace":
            if len(node.args) != 5:
                raise QueryError("label_replace(v, dst, replacement, src, regex) expected")
            vec = self._vector(node.args[0])
            dst, replacement, src, regex = (self._string(a) for a in node.args[1:])
            pattern = _compile_anchored(regex)
            new_labels = []
            for l in vec.labels:
                match = pattern.match(l.get(src, ""))
                if match:
                    new_value = match.expand(replacement.replace("$", "\\"))
                    d = l.as_dict()
                    if new_value:
                        d[dst] = new_value
                    else:
                        d.pop(dst, None)
                    new_labels.append(Labels(d))
                else:
                    new_labels.append(l)
            return _Matrix(new_labels, vec.values.copy(), vec.present.copy())
        if func == "histogram_quantile":
            if len(node.args) != 2:
                raise QueryError("histogram_quantile(scalar, vector) expected")
            q = self._scalar(node.args[0])
            vec = self._vector(node.args[1])
            # Group bucket rows by series identity (labels sans name/le),
            # then run the shared bucketQuantile helper per present
            # column — same pairs, same helper, bit-identical to the
            # per-step path.
            groups: dict[Labels, list[tuple[float, int]]] = {}
            for i, l in enumerate(vec.labels):
                try:
                    le = float(l.get("le", ""))
                except ValueError:
                    continue
                groups.setdefault(l.without_name().drop("le"), []).append((le, i))
            out_labels: list[Labels] = []
            out_rows: list[np.ndarray] = []
            out_present: list[np.ndarray] = []
            for key, members in groups.items():
                members.sort(key=lambda pair: pair[0])
                rows = [i for _le, i in members]
                les = [le for le, _i in members]
                pres = vec.present[rows]
                col_present = pres.any(axis=0)
                vals = np.full(T, np.nan)
                for j in np.nonzero(col_present)[0]:
                    buckets = [
                        (les[r], float(vec.values[rows[r], j]))
                        for r in range(len(rows))
                        if pres[r, j]
                    ]
                    vals[j] = histogram_bucket_quantile(float(q[j]), buckets)
                out_labels.append(key)
                out_rows.append(vals)
                out_present.append(col_present)
            if not out_labels:
                return _Matrix([], np.zeros((0, T)), np.zeros((0, T), dtype=bool))
            return _Matrix(out_labels, np.vstack(out_rows), np.vstack(out_present))
        if func == "label_join":
            if len(node.args) < 3:
                raise QueryError("label_join(v, dst, sep, src...) expected")
            vec = self._vector(node.args[0])
            dst = self._string(node.args[1])
            sep = self._string(node.args[2])
            sources = [self._string(a) for a in node.args[3:]]
            new_labels = []
            for l in vec.labels:
                d = l.as_dict()
                d[dst] = sep.join(l.get(s, "") for s in sources)
                new_labels.append(Labels(d))
            return _Matrix(new_labels, vec.values.copy(), vec.present.copy())
        raise QueryError(f"unknown function {func!r}")

    # -- aggregations ----------------------------------------------------
    def _aggregation(self, node: Aggregation) -> _Matrix:
        vec = self._vector(node.expr)
        param = self._scalar(node.param) if node.param is not None else None
        T = self.T

        def group_key(labels: Labels) -> Labels:
            if node.without:
                return labels.drop(*node.grouping, METRIC_NAME_LABEL)
            if node.grouping:
                return labels.keep(node.grouping)
            return Labels()

        groups: dict[Labels, list[int]] = {}
        for i, labels in enumerate(vec.labels):
            groups.setdefault(group_key(labels), []).append(i)

        op = node.op
        if op in ("topk", "bottomk"):
            return self._topk(node, vec, groups, param)

        out_labels: list[Labels] = []
        out_rows: list[np.ndarray] = []
        out_present: list[np.ndarray] = []
        with np.errstate(divide="ignore", invalid="ignore"):
            for key, rows in groups.items():
                sub_vals = vec.values[rows]
                sub_pres = vec.present[rows]
                count = sub_pres.sum(axis=0)
                col_present = count > 0
                if op in ("sum", "avg", "stddev", "stdvar"):
                    # Row-sequential masked accumulation: absent cells
                    # add an exact +0.0, so each column reproduces the
                    # reference's _seq_sum over present members.
                    masked = np.where(sub_pres, sub_vals, 0.0)
                    acc = np.zeros(T)
                    for r in range(len(rows)):
                        acc = acc + masked[r]
                    if op == "sum":
                        vals = acc
                    elif op == "avg":
                        vals = acc / count
                    else:
                        mean = acc / count
                        dev = sub_vals - mean
                        dev2 = np.where(sub_pres, dev * dev, 0.0)
                        acc2 = np.zeros(T)
                        for r in range(len(rows)):
                            acc2 = acc2 + dev2[r]
                        vals = acc2 / count
                        if op == "stddev":
                            vals = np.sqrt(vals)
                elif op == "min":
                    vals = np.minimum.reduce(np.where(sub_pres, sub_vals, np.inf), axis=0)
                elif op == "max":
                    vals = np.maximum.reduce(np.where(sub_pres, sub_vals, -np.inf), axis=0)
                elif op == "count":
                    vals = count.astype(np.float64)
                elif op == "quantile":
                    if param is None:
                        raise QueryError("quantile requires a parameter")
                    vals = np.full(T, np.nan)
                    for j in np.nonzero(col_present)[0]:
                        members = sub_vals[:, j][sub_pres[:, j]]
                        q = float(param[j])
                        vals[j] = float(np.quantile(members, min(max(q, 0), 1)))
                else:
                    raise QueryError(f"unknown aggregation {op!r}")
                out_labels.append(key)
                out_rows.append(np.where(col_present, vals, np.nan))
                out_present.append(col_present)
        if not out_labels:
            return _Matrix([], np.zeros((0, T)), np.zeros((0, T), dtype=bool))
        return _Matrix(out_labels, np.vstack(out_rows), np.vstack(out_present))

    def _topk(self, node, vec: _Matrix, groups, param) -> _Matrix:
        op = node.op
        if param is None:
            raise QueryError(f"{op} requires a parameter")
        k_cols = np.maximum(param.astype(np.int64), 0)
        out_labels: list[Labels] = []
        out_rows: list[np.ndarray] = []
        out_present: list[np.ndarray] = []
        for _key, rows in groups.items():
            sub_vals = vec.values[rows]
            sub_pres = vec.present[rows]
            if op == "topk":
                order = np.argsort(
                    -np.where(sub_pres, sub_vals, -np.inf), axis=0, kind="stable"
                )
            else:
                order = np.argsort(
                    np.where(sub_pres, sub_vals, np.inf), axis=0, kind="stable"
                )
            ranks = np.empty_like(order)
            np.put_along_axis(
                ranks,
                order,
                np.broadcast_to(np.arange(len(rows)).reshape(-1, 1), order.shape),
                axis=0,
            )
            keep = sub_pres & (ranks < k_cols)
            for local_i, row in enumerate(rows):
                # topk keeps the original element labels (incl. name).
                out_labels.append(vec.labels[row])
                out_rows.append(np.where(keep[local_i], sub_vals[local_i], np.nan))
                out_present.append(keep[local_i])
        if not out_labels:
            return _Matrix([], np.zeros((0, self.T)), np.zeros((0, self.T), dtype=bool))
        return _Matrix(out_labels, np.vstack(out_rows), np.vstack(out_present))

    # -- binary operators ------------------------------------------------
    def _binary(self, node: BinaryOp):
        lhs = self.eval(node.lhs)
        rhs = self.eval(node.rhs)
        lhs_mat = isinstance(lhs, _Matrix)
        rhs_mat = isinstance(rhs, _Matrix)
        if node.op in ("and", "or", "unless"):
            if not (lhs_mat and rhs_mat):
                raise QueryError(f"set operator {node.op} requires vector operands")
            return self._set_op(node, lhs, rhs)
        if lhs_mat and rhs_mat:
            return self._vector_vector(node, lhs, rhs)
        if lhs_mat or rhs_mat:
            return self._vector_scalar(node, lhs, rhs, scalar_on_right=not rhs_mat)
        return self._scalar_scalar(node, lhs, rhs)

    @staticmethod
    def _compare_raw(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            if op == ">":
                return a > b
            if op == "<":
                return a < b
            if op == ">=":
                return a >= b
            if op == "<=":
                return a <= b
        raise QueryError(f"unknown operator {op!r}")

    @classmethod
    def _apply_op_array(cls, op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise _apply_op.  +,-,*,/ and comparisons are IEEE ops
        whose results match the scalar special-casing bit for bit; % and
        ^ loop through the scalar implementation because ``math.fmod``/
        ``**`` have Python-level edge semantics (exceptions) that numpy
        ufuncs do not reproduce."""
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                return a / b
            if op in ("%", "^"):
                a2, b2 = np.broadcast_arrays(a, b)
                out = np.empty(a2.shape)
                flat_a, flat_b = a2.ravel(), b2.ravel()
                flat_o = out.ravel()
                for i in range(flat_a.size):
                    flat_o[i] = PromQLEngine._apply_op(op, float(flat_a[i]), float(flat_b[i]))
                return out
            if op in _COMPARISONS:
                return cls._compare_raw(op, a, b).astype(np.float64)
        raise QueryError(f"unknown operator {op!r}")

    def _as_scalar_array(self, value) -> np.ndarray:
        if isinstance(value, str):
            return np.full(self.T, float(value))
        return value

    def _scalar_scalar(self, node: BinaryOp, lhs, rhs) -> np.ndarray:
        if node.op in _COMPARISONS and not node.return_bool:
            raise QueryError("comparisons between scalars must use the bool modifier")
        return self._apply_op_array(
            node.op, self._as_scalar_array(lhs), self._as_scalar_array(rhs)
        )

    def _vector_scalar(self, node: BinaryOp, lhs, rhs, *, scalar_on_right: bool) -> _Matrix:
        vec: _Matrix = lhs if scalar_on_right else rhs
        scal = self._as_scalar_array(rhs if scalar_on_right else lhs)
        comparison = node.op in _COMPARISONS
        a = vec.values if scalar_on_right else scal
        b = scal if scalar_on_right else vec.values
        if comparison and not node.return_bool:
            raw = self._compare_raw(node.op, a, b)
            present = vec.present & raw
            # Filter semantics: kept elements are unchanged.
            return _Matrix(
                list(vec.labels),
                np.where(present, vec.values, np.nan),
                present,
            )
        values = self._apply_op_array(node.op, a, b)
        values = np.where(vec.present, values, np.nan)
        return _Matrix(
            [l.without_name() for l in vec.labels], values, vec.present.copy()
        )

    def _vector_vector(self, node: BinaryOp, lhs: _Matrix, rhs: _Matrix) -> _Matrix:
        matching = node.matching
        group = matching.group if matching else ""
        comparison = node.op in _COMPARISONS
        signature = PromQLEngine._signature
        T = self.T

        if group == "right":
            many, one = rhs, lhs
        else:
            many, one = lhs, rhs

        one_sigs = [signature(l, matching) for l in one.labels]
        one_groups: dict[Labels, list[int]] = {}
        for i, s in enumerate(one_sigs):
            one_groups.setdefault(s, []).append(i)
        # Duplicate signatures are only an error where two elements are
        # simultaneously present — column-aware, like the per-step path.
        for s, idxs in one_groups.items():
            if len(idxs) > 1 and bool((one.present[idxs].sum(axis=0) > 1).any()):
                raise QueryError(
                    f"many-to-many matching: duplicate signature {s} on the "
                    f"'one' side of {node.op}"
                )

        out_labels: list[Labels] = []
        out_rows: list[np.ndarray] = []
        out_present: list[np.ndarray] = []

        def emit(labels: Labels, values: np.ndarray, present: np.ndarray) -> None:
            out_labels.append(labels)
            out_rows.append(np.where(present, values, np.nan))
            out_present.append(present)

        if group:
            many_sigs = [signature(l, matching) for l in many.labels]
            for m_i, m_sig in enumerate(many_sigs):
                partners = one_groups.get(m_sig)
                if not partners:
                    continue
                for o_i in partners:
                    both = many.present[m_i] & one.present[o_i]
                    if group == "left":
                        a, b = many.values[m_i], one.values[o_i]
                    else:
                        a, b = one.values[o_i], many.values[m_i]
                    if comparison and not node.return_bool:
                        raw = self._compare_raw(node.op, a, b)
                        emit(many.labels[m_i], many.values[m_i], both & raw)
                        continue
                    labels = many.labels[m_i].without_name()
                    if matching and matching.include:
                        merged = labels.as_dict()
                        partner_labels = one.labels[o_i]
                        for name in matching.include:
                            value_from_one = partner_labels.get(name, "")
                            if value_from_one:
                                merged[name] = value_from_one
                            else:
                                merged.pop(name, None)
                        labels = Labels(merged)
                    emit(labels, self._apply_op_array(node.op, a, b), both)
        else:
            lhs_sigs = [signature(l, matching) for l in lhs.labels]
            lhs_groups: dict[Labels, list[int]] = {}
            for i, s in enumerate(lhs_sigs):
                lhs_groups.setdefault(s, []).append(i)
            for s, idxs in lhs_groups.items():
                if len(idxs) > 1 and bool((lhs.present[idxs].sum(axis=0) > 1).any()):
                    raise QueryError(
                        f"many-to-many matching: duplicate signature {s} on left side"
                    )
            for l_i, s in enumerate(lhs_sigs):
                partners = one_groups.get(s)
                if not partners:
                    continue
                for r_i in partners:
                    both = lhs.present[l_i] & rhs.present[r_i]
                    a, b = lhs.values[l_i], rhs.values[r_i]
                    if comparison and not node.return_bool:
                        raw = self._compare_raw(node.op, a, b)
                        emit(lhs.labels[l_i], lhs.values[l_i], both & raw)
                        continue
                    labels = s if (matching and matching.on) else lhs.labels[l_i].without_name()
                    emit(labels, self._apply_op_array(node.op, a, b), both)

        if not out_labels:
            return _Matrix([], np.zeros((0, T)), np.zeros((0, T), dtype=bool))
        return _Matrix(out_labels, np.vstack(out_rows), np.vstack(out_present))

    def _set_op(self, node: BinaryOp, lhs: _Matrix, rhs: _Matrix) -> _Matrix:
        matching = node.matching
        signature = PromQLEngine._signature
        T = self.T

        def sig_masks(mat: _Matrix) -> dict[Labels, np.ndarray]:
            masks: dict[Labels, np.ndarray] = {}
            for i, labels in enumerate(mat.labels):
                s = signature(labels, matching)
                prev = masks.get(s)
                masks[s] = mat.present[i] if prev is None else (prev | mat.present[i])
            return masks

        if node.op in ("and", "unless"):
            rhs_masks = sig_masks(rhs)
            rows = []
            for i, labels in enumerate(lhs.labels):
                mask = rhs_masks.get(signature(labels, matching))
                if mask is None:
                    mask = np.zeros(T, dtype=bool)
                present = lhs.present[i] & (mask if node.op == "and" else ~mask)
                rows.append(present)
            present = (
                np.vstack(rows) if rows else np.zeros((0, T), dtype=bool)
            )
            return _Matrix(
                list(lhs.labels), np.where(present, lhs.values, np.nan), present
            )
        # or: all of lhs plus rhs columns whose signature is absent on lhs
        lhs_masks = sig_masks(lhs)
        out_labels = list(lhs.labels)
        out_rows = [np.where(lhs.present[i], lhs.values[i], np.nan) for i in range(lhs.nrows)]
        out_present = [lhs.present[i].copy() for i in range(lhs.nrows)]
        for i, labels in enumerate(rhs.labels):
            shadow = lhs_masks.get(signature(labels, matching))
            present = rhs.present[i] & ~shadow if shadow is not None else rhs.present[i].copy()
            out_labels.append(labels)
            out_rows.append(np.where(present, rhs.values[i], np.nan))
            out_present.append(present)
        if not out_labels:
            return _Matrix([], np.zeros((0, T)), np.zeros((0, T), dtype=bool))
        return _Matrix(out_labels, np.vstack(out_rows), np.vstack(out_present))
