"""Kubernetes (kubelet) simulator.

Kubelet places each pod in a slice under ``kubepods.slice``, nested by
QoS class, with the pod UID embedded in the slice name — the third
path pattern the exporter recognises.  Namespaces play the role of
projects; pods may complete (batch pods) or run indefinitely (service
pods, ended by deletion).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.hwsim.node import SimulatedNode, UsageProfile
from repro.resourcemgr.base import ComputeUnit, ResourceManager, UnitState

QOS_CLASSES = ("guaranteed", "burstable", "besteffort")


@dataclass
class PodSpec:
    """A pod creation request (the scheduler-relevant subset)."""

    user: str
    namespace: str
    cpus: int = 1
    memory_bytes: int = 2 * 1024**3
    gpus: int = 0
    qos: str = "burstable"
    name: str = "pod"
    #: None = service pod (runs until deleted); otherwise batch runtime.
    duration: float | None = None
    profile: UsageProfile = field(default_factory=lambda: UsageProfile.constant(0.5))

    def __post_init__(self) -> None:
        if self.qos not in QOS_CLASSES:
            raise SimulationError(f"unknown QoS class {self.qos!r}")


class KubernetesCluster(ResourceManager):
    """A kubelet-level view of a Kubernetes cluster."""

    manager = "k8s"
    CGROUP_TEMPLATE = "/kubepods.slice/kubepods-{qos}-pod{uid}.slice"

    def __init__(self, cluster_name: str, nodes: list[SimulatedNode]) -> None:
        super().__init__(cluster_name, nodes)
        self._uid_seq = itertools.count(1)
        self._placements: dict[str, SimulatedNode] = {}
        self._deadlines: dict[str, float] = {}

    def create_pod(self, spec: PodSpec, now: float) -> str:
        """Schedule a pod; returns the pod UID."""
        candidates = self.nodes_with_capacity(spec.cpus, spec.gpus)
        if not candidates:
            raise SimulationError("0/{} nodes available: insufficient cpu".format(len(self.nodes)))
        node = min(candidates, key=lambda n: len(n.tasks))
        uid = f"{next(self._uid_seq):08x}-0000-4000-8000-000000000000"
        cgroup_uid = uid.replace("-", "_")
        cgroup_path = self.CGROUP_TEMPLATE.format(qos=spec.qos, uid=cgroup_uid)
        node.place_task(
            uuid=uid,
            cgroup_path=cgroup_path,
            ncores=spec.cpus,
            memory_limit_bytes=spec.memory_bytes,
            profile=spec.profile,
            start_time=now,
            ngpus=spec.gpus,
        )
        unit = ComputeUnit(
            uuid=uid,
            name=spec.name,
            manager=self.manager,
            cluster=self.cluster_name,
            user=spec.user,
            project=spec.namespace,
            created_at=now,
            started_at=now,
            state=UnitState.RUNNING,
            cpus=spec.cpus,
            memory_bytes=spec.memory_bytes,
            gpus=spec.gpus,
            nodelist=(node.spec.name,),
        )
        self._record_unit(unit)
        self._placements[uid] = node
        if spec.duration is not None:
            self._deadlines[uid] = now + spec.duration
        return uid

    def delete_pod(self, uid: str, now: float) -> None:
        node = self._placements.pop(uid, None)
        if node is None:
            raise SimulationError(f"no pod {uid}")
        node.remove_task(uid)
        self._deadlines.pop(uid, None)
        unit = self._units[uid]
        unit.state = UnitState.CANCELLED if unit.state is UnitState.RUNNING else unit.state
        unit.ended_at = now

    def step(self, now: float) -> None:
        """Complete batch pods whose runtime elapsed."""
        done = [uid for uid, deadline in self._deadlines.items() if now >= deadline]
        for uid in done:
            node = self._placements.pop(uid)
            node.remove_task(uid)
            del self._deadlines[uid]
            unit = self._units[uid]
            unit.state = UnitState.COMPLETED
            unit.ended_at = now

    def list_pods(self, namespace: str | None = None) -> list[ComputeUnit]:
        pods = [u.snapshot() for u in self._units.values()]
        if namespace is not None:
            pods = [p for p in pods if p.project == namespace]
        return sorted(pods, key=lambda p: p.created_at)
