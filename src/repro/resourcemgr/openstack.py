"""OpenStack / libvirt simulator.

On an OpenStack compute node, Nova asks libvirt to start a qemu/KVM
machine per server; systemd places it in a ``machine.slice`` scope
cgroup named after the libvirt domain, which embeds the instance UUID
— that is the path pattern the exporter's ``libvirt`` rule matches.

VMs differ from batch jobs in the ways that matter to the stack: they
are **long-lived** (no natural completion; they run until deleted),
sized by **flavors**, and owned by a **project** (tenant) rather than
an account.  The accounting view is the server list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.hwsim.node import SimulatedNode, UsageProfile
from repro.resourcemgr.base import ComputeUnit, ResourceManager, UnitState


@dataclass(frozen=True)
class Flavor:
    """An OpenStack flavor: the VM size menu."""

    name: str
    vcpus: int
    memory_bytes: int
    gpus: int = 0


DEFAULT_FLAVORS: dict[str, Flavor] = {
    "m1.small": Flavor("m1.small", vcpus=2, memory_bytes=4 * 1024**3),
    "m1.large": Flavor("m1.large", vcpus=8, memory_bytes=16 * 1024**3),
    "m1.xlarge": Flavor("m1.xlarge", vcpus=16, memory_bytes=64 * 1024**3),
    "g1.gpu": Flavor("g1.gpu", vcpus=16, memory_bytes=96 * 1024**3, gpus=1),
}


@dataclass
class ServerSpec:
    """A server-create request."""

    user: str
    project: str
    flavor: str = "m1.large"
    name: str = "server"
    profile: UsageProfile = field(default_factory=lambda: UsageProfile.constant(0.4))


class OpenStackCluster(ResourceManager):
    """Nova+libvirt over simulated compute nodes."""

    manager = "openstack"
    CGROUP_TEMPLATE = "/machine.slice/machine-qemu-{domain_id}-instance-{uuid}.scope"

    def __init__(
        self,
        cluster_name: str,
        nodes: list[SimulatedNode],
        flavors: dict[str, Flavor] | None = None,
    ) -> None:
        super().__init__(cluster_name, nodes)
        self.flavors = flavors or dict(DEFAULT_FLAVORS)
        self._domain_ids = itertools.count(1)
        self._instance_seq = itertools.count(1)
        self._placements: dict[str, SimulatedNode] = {}

    # -- server lifecycle ------------------------------------------------
    def create_server(self, spec: ServerSpec, now: float) -> str:
        """``openstack server create``; returns the instance UUID."""
        flavor = self.flavors.get(spec.flavor)
        if flavor is None:
            raise SimulationError(f"no flavor {spec.flavor!r}")
        candidates = self.nodes_with_capacity(flavor.vcpus, flavor.gpus)
        if not candidates:
            raise SimulationError("no valid host found (all hosts full)")
        node = min(candidates, key=lambda n: len(n.tasks))  # spread scheduler
        uuid = f"{next(self._instance_seq):08x}"
        cgroup_path = self.CGROUP_TEMPLATE.format(domain_id=next(self._domain_ids), uuid=uuid)
        node.place_task(
            uuid=uuid,
            cgroup_path=cgroup_path,
            ncores=flavor.vcpus,
            memory_limit_bytes=flavor.memory_bytes,
            profile=spec.profile,
            start_time=now,
            ngpus=flavor.gpus,
        )
        unit = ComputeUnit(
            uuid=uuid,
            name=spec.name,
            manager=self.manager,
            cluster=self.cluster_name,
            user=spec.user,
            project=spec.project,
            created_at=now,
            started_at=now,
            state=UnitState.RUNNING,
            cpus=flavor.vcpus,
            memory_bytes=flavor.memory_bytes,
            gpus=flavor.gpus,
            nodelist=(node.spec.name,),
        )
        self._record_unit(unit)
        self._placements[uuid] = node
        return uuid

    def delete_server(self, uuid: str, now: float) -> None:
        node = self._placements.pop(uuid, None)
        if node is None:
            raise SimulationError(f"no server {uuid}")
        node.remove_task(uuid)
        unit = self._units[uuid]
        unit.state = UnitState.COMPLETED
        unit.ended_at = now

    def step(self, now: float) -> None:
        """VMs have no natural end; nothing to reap."""

    # -- accounting view -----------------------------------------------------
    def list_servers(self, project: str | None = None) -> list[ComputeUnit]:
        servers = [u.snapshot() for u in self._units.values()]
        if project is not None:
            servers = [s for s in servers if s.project == project]
        return sorted(servers, key=lambda s: s.created_at)
