"""SLURM simulator: partitions, FIFO+first-fit scheduler, accounting.

Reproduces the slice of SLURM the stack interacts with:

* jobs are submitted to a partition with core/GPU/memory/walltime
  requests and run inside per-job cgroups under
  ``/system.slice/slurmstepd.scope/job_<id>`` on every allocated node
  (the path the exporter's ``slurm`` pattern matches);
* a scheduling pass (FIFO with first-fit placement, one pass per
  ``step``) starts pending jobs when nodes have capacity — enough
  realism to generate the churn and co-location patterns Eq. (1) must
  cope with, without reimplementing backfill;
* an accounting database (``sacct``-like) records the fields the
  CEEMS API server syncs: user, account, resources, timestamps, state
  and exit code;
* jobs end by natural completion, timeout (walltime exceeded),
  cancellation, or OOM (observed from the cgroup's oom events).

Multi-node jobs allocate the same core count on each of ``nnodes``
nodes and appear in every node's cgroup tree with the same job id —
as on a real SLURM cluster.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SimulationError
from repro.hwsim.node import SimulatedNode, UsageProfile
from repro.resourcemgr.base import ComputeUnit, ResourceManager, UnitState


class AdmissionDecision(str, enum.Enum):
    """What an admission hook may decide about a pending job.

    ``ADMIT`` lets the scheduling pass proceed normally; ``DEFER``
    parks the job outside the FIFO queue until
    :meth:`SlurmCluster.release_deferred`.  Anything else a hook does
    — raising, returning an unknown value — fails *open* to ADMIT: an
    energy policy daemon must never be able to wedge the scheduler.
    """

    ADMIT = "admit"
    DEFER = "defer"


@dataclass
class JobSpec:
    """A batch job submission (``sbatch``)."""

    user: str
    account: str
    ncores: int
    memory_bytes: int
    walltime: float
    #: Real runtime; the job completes after min(duration, walltime).
    duration: float
    profile: UsageProfile = field(default_factory=lambda: UsageProfile.constant(0.8))
    ngpus: int = 0
    nnodes: int = 1
    partition: str = "cpu"
    name: str = "job"
    #: Opt-in flag for carbon-aware scheduling: only deferrable jobs
    #: may be parked by an admission hook (``sbatch --deferrable``
    #: in the governor's deployment story).
    deferrable: bool = False

    def __post_init__(self) -> None:
        if self.ncores <= 0 or self.nnodes <= 0:
            raise SimulationError("job must request at least one core on one node")
        if self.duration < 0 or self.walltime <= 0:
            raise SimulationError("job durations must be positive")


@dataclass
class _RunningJob:
    unit: ComputeUnit
    spec: JobSpec
    nodes: list[SimulatedNode]
    ends_at: float
    timeout_at: float


class SlurmCluster(ResourceManager):
    """A SLURM-managed cluster over simulated nodes."""

    manager = "slurm"
    CGROUP_TEMPLATE = "/system.slice/slurmstepd.scope/job_{job_id}"

    def __init__(self, cluster_name: str, partitions: dict[str, list[SimulatedNode]]) -> None:
        all_nodes = [n for nodes in partitions.values() for n in nodes]
        if len({n.spec.name for n in all_nodes}) != len(all_nodes):
            raise SimulationError("duplicate node names across partitions")
        super().__init__(cluster_name, all_nodes)
        self.partitions = partitions
        self._job_ids = itertools.count(1000)
        self._queue: list[tuple[str, JobSpec]] = []  # (uuid, spec) FIFO
        #: Jobs parked by the admission hook, in submit order; they
        #: hold no node resources and survive node failures untouched.
        self._deferred: list[tuple[str, JobSpec]] = []
        #: Pluggable admission seam (the governor's carbon policy):
        #: ``hook(uuid, spec, now) -> AdmissionDecision``.  Consulted
        #: once per scheduling pass per queued job; failures admit.
        self.admission_hook: Callable[[str, JobSpec, float], AdmissionDecision] | None = None
        self.admission_hook_errors = 0
        self._running: dict[str, _RunningJob] = {}
        #: Nodes drained out of scheduling (down or admin-drained).
        self._down_nodes: set[str] = set()
        #: uuid -> node names, retained after job end (the GPU map
        #: problem from §II.A.d does not apply to *nodes*: sacct keeps
        #: the nodelist, and so do we).
        self.jobs_completed = 0
        self.jobs_submitted = 0

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec, now: float) -> str:
        """Queue a job; returns its job id (the unit uuid)."""
        if spec.partition not in self.partitions:
            raise SimulationError(f"no partition {spec.partition!r}")
        job_id = str(next(self._job_ids))
        unit = ComputeUnit(
            uuid=job_id,
            name=spec.name,
            manager=self.manager,
            cluster=self.cluster_name,
            user=spec.user,
            project=spec.account,
            created_at=now,
            cpus=spec.ncores * spec.nnodes,
            memory_bytes=spec.memory_bytes * spec.nnodes,
            gpus=spec.ngpus * spec.nnodes,
        )
        self._record_unit(unit)
        self._queue.append((job_id, spec))
        self.jobs_submitted += 1
        return job_id

    def cancel(self, job_id: str, now: float) -> None:
        """``scancel``: drop a pending, deferred or running job."""
        for queue in (self._queue, self._deferred):
            for i, (uuid, _spec) in enumerate(queue):
                if uuid == job_id:
                    del queue[i]
                    unit = self._units[job_id]
                    unit.state = UnitState.CANCELLED
                    unit.ended_at = now
                    return
        running = self._running.get(job_id)
        if running is None:
            raise SimulationError(f"no pending or running job {job_id}")
        self._finish(running, now, UnitState.CANCELLED, exit_code=130)

    # -- scheduling ------------------------------------------------------------
    def step(self, now: float) -> None:
        self._reap(now)
        self._schedule(now)

    def _schedule(self, now: float) -> None:
        """One FIFO pass with first-fit placement (no backfill)."""
        still_pending: list[tuple[str, JobSpec]] = []
        for uuid, spec in self._queue:
            if self._consult_hook(uuid, spec, now) is AdmissionDecision.DEFER:
                self._deferred.append((uuid, spec))
                continue
            nodes = self._find_nodes(spec)
            if nodes is None:
                still_pending.append((uuid, spec))
                continue
            self._start(uuid, spec, nodes, now)
        self._queue = still_pending

    def _consult_hook(self, uuid: str, spec: JobSpec, now: float) -> AdmissionDecision:
        """Ask the admission hook about one job; fail open to ADMIT.

        A hook that raises or answers with anything other than an
        :class:`AdmissionDecision` admits the job and bumps
        ``admission_hook_errors`` — queue state is left untouched, so
        a broken policy daemon degrades to plain FIFO scheduling.
        """
        if self.admission_hook is None:
            return AdmissionDecision.ADMIT
        try:
            decision = self.admission_hook(uuid, spec, now)
        except Exception:
            self.admission_hook_errors += 1
            return AdmissionDecision.ADMIT
        if not isinstance(decision, AdmissionDecision):
            self.admission_hook_errors += 1
            return AdmissionDecision.ADMIT
        return decision

    def release_deferred(self, now: float) -> list[str]:
        """Return every parked job to the queue, restoring submit order.

        Job ids are monotonic, so merging the deferred list back by id
        re-establishes global FIFO fairness: a job deferred through a
        high-carbon window never ends up behind jobs submitted after
        it.  Returns the released job ids (in submit order).
        """
        if not self._deferred:
            return []
        released = [uuid for uuid, _spec in self._deferred]
        self._queue = sorted(self._queue + self._deferred, key=lambda e: int(e[0]))
        self._deferred = []
        return released

    def _find_nodes(self, spec: JobSpec) -> list[SimulatedNode] | None:
        candidates = [
            n
            for n in self.partitions[spec.partition]
            if n.spec.name not in self._down_nodes and n.can_fit(spec.ncores, spec.ngpus)
        ]
        if len(candidates) < spec.nnodes:
            return None
        return candidates[: spec.nnodes]

    def _start(self, uuid: str, spec: JobSpec, nodes: list[SimulatedNode], now: float) -> None:
        cgroup_path = self.CGROUP_TEMPLATE.format(job_id=uuid)
        for node in nodes:
            node.place_task(
                uuid=uuid,
                cgroup_path=cgroup_path,
                ncores=spec.ncores,
                memory_limit_bytes=spec.memory_bytes,
                profile=spec.profile,
                start_time=now,
                ngpus=spec.ngpus,
            )
        unit = self._units[uuid]
        unit.state = UnitState.RUNNING
        unit.started_at = now
        unit.nodelist = tuple(n.spec.name for n in nodes)
        self._running[uuid] = _RunningJob(
            unit=unit,
            spec=spec,
            nodes=nodes,
            ends_at=now + min(spec.duration, spec.walltime),
            timeout_at=now + spec.walltime,
        )

    def _reap(self, now: float) -> None:
        done = [job for job in self._running.values() if now >= job.ends_at]
        for job in done:
            if job.spec.duration > job.spec.walltime:
                self._finish(job, now, UnitState.TIMEOUT, exit_code=1)
            else:
                oomed = any(
                    node.cgroupfs.exists(self.CGROUP_TEMPLATE.format(job_id=job.unit.uuid))
                    and node.cgroupfs.get(
                        self.CGROUP_TEMPLATE.format(job_id=job.unit.uuid)
                    ).memory_oom_events
                    > 0
                    for node in job.nodes
                )
                if oomed:
                    self._finish(job, now, UnitState.OOM, exit_code=137)
                else:
                    self._finish(job, now, UnitState.COMPLETED, exit_code=0)

    def _finish(self, job: _RunningJob, now: float, state: UnitState, exit_code: int) -> None:
        for node in job.nodes:
            node.remove_task(job.unit.uuid)
        job.unit.state = state
        job.unit.ended_at = min(now, job.ends_at) if state is not UnitState.CANCELLED else now
        job.unit.exit_code = exit_code
        del self._running[job.unit.uuid]
        self.jobs_completed += 1

    # -- node failures -----------------------------------------------------
    def fail_node(self, node_name: str, now: float, *, requeue: bool = False) -> list[str]:
        """A node crashes: its jobs die (or requeue), it leaves scheduling.

        Multi-node jobs die with any of their nodes, as on real SLURM.
        Returns the affected job ids.  The node stays out of the
        scheduler until :meth:`resume_node`.
        """
        if node_name not in self.nodes:
            raise SimulationError(f"no node {node_name}")
        self._down_nodes.add(node_name)
        affected = [
            job for job in self._running.values()
            if node_name in (n.spec.name for n in job.nodes)
        ]
        job_ids = []
        for job in affected:
            spec = job.spec
            self._finish(job, now, UnitState.FAILED, exit_code=1)
            job_ids.append(job.unit.uuid)
            if requeue:
                # SLURM's --requeue: resubmit as a fresh job id.
                self.submit(spec, now)
        return job_ids

    def resume_node(self, node_name: str) -> None:
        """Return a repaired node to the scheduler."""
        self._down_nodes.discard(node_name)

    @property
    def down_nodes(self) -> set[str]:
        return set(self._down_nodes)

    # -- sacct-like accounting ------------------------------------------------
    def sacct(self, start: float, end: float, user: str | None = None) -> list[ComputeUnit]:
        """Accounting query, as the API server issues against slurmdbd."""
        units = self.list_units(start, end)
        if user is not None:
            units = [u for u in units if u.user == user]
        return units

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    @property
    def deferred_job_ids(self) -> list[str]:
        return [uuid for uuid, _spec in self._deferred]

    @property
    def running_count(self) -> int:
        return len(self._running)
