"""Common resource-manager interface and the unified compute unit.

The CEEMS API server *"serves as an abstraction layer for different
resource managers by defining a unified DB schema to store compute
units of different resource managers"* (paper §II.B.b).
:class:`ComputeUnit` is that unified record: a SLURM job, an OpenStack
VM and a Kubernetes pod all map onto it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterable

from repro.hwsim.node import SimulatedNode


class UnitState(str, Enum):
    """Lifecycle states, superset of the three managers' vocabularies."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    OOM = "oom"

    @property
    def terminal(self) -> bool:
        return self not in (UnitState.PENDING, UnitState.RUNNING)


@dataclass
class ComputeUnit:
    """The unified compute-unit record shared by all managers.

    ``uuid`` is manager-scoped but globally unique in a deployment
    (SLURM job id, OpenStack instance UUID, k8s pod UID).  ``project``
    is the SLURM account / OpenStack project / k8s namespace.
    """

    uuid: str
    name: str
    manager: str  # "slurm" | "openstack" | "k8s"
    cluster: str
    user: str
    project: str
    created_at: float
    started_at: float | None = None
    ended_at: float | None = None
    state: UnitState = UnitState.PENDING
    cpus: int = 0
    memory_bytes: int = 0
    gpus: int = 0
    nodelist: tuple[str, ...] = ()
    exit_code: int = 0

    @property
    def elapsed(self) -> float:
        """Wall time the unit has run (0 while pending)."""
        if self.started_at is None:
            return 0.0
        end = self.ended_at if self.ended_at is not None else self.started_at
        return max(end - self.started_at, 0.0)

    def snapshot(self) -> "ComputeUnit":
        """Immutable copy for handing to the API server."""
        return replace(self)


class ResourceManager(abc.ABC):
    """What the CEEMS API server needs from any resource manager."""

    #: Manager kind, matches the exporter's cgroup path patterns.
    manager: str = "generic"

    def __init__(self, cluster_name: str, nodes: Iterable[SimulatedNode]) -> None:
        self.cluster_name = cluster_name
        self.nodes: dict[str, SimulatedNode] = {n.spec.name: n for n in nodes}
        self._units: dict[str, ComputeUnit] = {}

    # -- accounting view (what the API server syncs) -------------------
    def list_units(self, start: float, end: float) -> list[ComputeUnit]:
        """Units active at any point within ``[start, end]``.

        This is the ``sacct -S -E`` / server-list / pod-list analogue.
        Includes units that started before ``start`` but were still
        running, and units still running at ``end``.
        """
        out = []
        for unit in self._units.values():
            begin = unit.started_at if unit.started_at is not None else unit.created_at
            finish = unit.ended_at if unit.ended_at is not None else float("inf")
            if begin <= end and finish >= start:
                out.append(unit.snapshot())
        out.sort(key=lambda u: (u.created_at, u.uuid))
        return out

    def get_unit(self, uuid: str) -> ComputeUnit | None:
        unit = self._units.get(uuid)
        return unit.snapshot() if unit else None

    def active_units(self) -> list[ComputeUnit]:
        return [u.snapshot() for u in self._units.values() if u.state is UnitState.RUNNING]

    @property
    def total_units(self) -> int:
        return len(self._units)

    # -- lifecycle driving ------------------------------------------------
    @abc.abstractmethod
    def step(self, now: float) -> None:
        """Advance manager state: schedule, start, finish workloads."""

    def register_timer(self, clock, interval: float = 30.0) -> None:
        clock.every(interval, self.step)

    # -- shared helpers -----------------------------------------------------
    def _record_unit(self, unit: ComputeUnit) -> None:
        self._units[unit.uuid] = unit

    def nodes_with_capacity(self, ncores: int, ngpus: int) -> list[SimulatedNode]:
        return [n for n in self.nodes.values() if n.can_fit(ncores, ngpus)]
