"""Deterministic workload generation.

Produces the job streams that drive the experiments: Poisson arrivals,
log-normal durations (the canonical HPC job-duration shape), a Zipfian
user population (few heavy users, long tail — what makes the Fig. 2a
per-user rollups interesting), and a configurable mix of job sizes
including GPU jobs.

Everything derives from one :class:`numpy.random.Generator` seed, so a
90-day Jean-Zay history is bit-reproducible across runs — the property
every benchmark in this repo leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hwsim.node import UsageProfile
from repro.resourcemgr.slurm import JobSpec, SlurmCluster


@dataclass(frozen=True)
class SizeClass:
    """One entry of the job-size mix."""

    name: str
    weight: float
    ncores: int
    ngpus: int = 0
    nnodes: int = 1
    memory_gb: int = 8
    partition: str = "cpu"


@dataclass
class WorkloadMix:
    """The statistical description of a cluster's workload."""

    #: Mean job inter-arrival time in seconds.
    mean_interarrival: float = 120.0
    #: Log-normal duration parameters (median ~ exp(mu)).
    duration_mu: float = 7.5  # median ≈ 30 min
    duration_sigma: float = 1.2
    max_duration: float = 20 * 3600.0
    #: Walltime request = duration * this factor (users over-request).
    walltime_factor: float = 2.0
    nusers: int = 40
    nprojects: int = 12
    #: Zipf exponent for user activity skew.
    user_zipf_s: float = 1.3
    #: Diurnal arrival modulation in [0, 1): 0 = flat Poisson; 0.6
    #: means the 2pm submission peak runs 1.6x the mean rate and the
    #: 2am trough 0.4x — the shape real sacct logs show.
    diurnal_amplitude: float = 0.0
    #: Fraction of jobs submitted ``--deferrable`` (eligible for
    #: carbon-aware deferral).  0 draws nothing from the RNG, so
    #: existing seeded streams are bit-identical when the governor
    #: is off.
    deferrable_fraction: float = 0.0
    sizes: tuple[SizeClass, ...] = (
        SizeClass("small", weight=0.45, ncores=4, memory_gb=8),
        SizeClass("medium", weight=0.30, ncores=16, memory_gb=32),
        SizeClass("large", weight=0.15, ncores=40, memory_gb=96),
        SizeClass("multinode", weight=0.05, ncores=40, nnodes=2, memory_gb=96),
        SizeClass("gpu", weight=0.05, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
    )

    def __post_init__(self) -> None:
        total = sum(s.weight for s in self.sizes)
        if not np.isclose(total, 1.0):
            raise ValueError(f"size-class weights must sum to 1, got {total}")


@dataclass
class WorkloadGenerator:
    """Samples job submissions from a :class:`WorkloadMix`."""

    mix: WorkloadMix = field(default_factory=WorkloadMix)
    seed: int = 42

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        mix = self.mix
        ranks = np.arange(1, mix.nusers + 1, dtype=np.float64)
        weights = ranks**-mix.user_zipf_s
        self._user_probs = weights / weights.sum()
        self._users = [f"user{u:03d}" for u in range(mix.nusers)]
        self._projects = [f"project{p:02d}" for p in range(mix.nprojects)]
        # Fixed user→project assignment (users belong to one project).
        self._user_project = {
            user: self._projects[int(self._rng.integers(0, mix.nprojects))] for user in self._users
        }
        self._size_probs = np.array([s.weight for s in mix.sizes])
        self._counter = 0

    def user_project(self, user: str) -> str:
        return self._user_project[user]

    # -- sampling ---------------------------------------------------------
    def arrival_intensity(self, at: float) -> float:
        """Relative submission rate at wall-clock time ``at``.

        Peaks at 14:00, troughs at 02:00 (working-hours shape).
        """
        amplitude = self.mix.diurnal_amplitude
        if amplitude <= 0.0:
            return 1.0
        hour = (at % 86400.0) / 3600.0
        return 1.0 + amplitude * np.cos(2 * np.pi * (hour - 14.0) / 24.0)

    def next_interarrival(self, at: float | None = None) -> float:
        """Exponential gap, scaled down when the diurnal rate is high."""
        base = float(self._rng.exponential(self.mix.mean_interarrival))
        if at is None:
            return base
        return base / self.arrival_intensity(at)

    def sample_job(self) -> JobSpec:
        """One job submission."""
        mix = self.mix
        user = self._users[int(self._rng.choice(len(self._users), p=self._user_probs))]
        size = mix.sizes[int(self._rng.choice(len(mix.sizes), p=self._size_probs))]
        duration = float(
            np.clip(self._rng.lognormal(mix.duration_mu, mix.duration_sigma), 60.0, mix.max_duration)
        )
        cpu_level = float(np.clip(self._rng.beta(5, 2), 0.05, 1.0))  # mostly busy
        profile = UsageProfile(
            cpu_base=cpu_level,
            cpu_amplitude=float(self._rng.uniform(0.0, 0.15)),
            cpu_period=float(self._rng.uniform(600, 7200)),
            mem_base=float(np.clip(self._rng.beta(2, 3), 0.05, 0.9)),
            gpu_base=float(np.clip(self._rng.beta(5, 2), 0.1, 1.0)) if size.ngpus else 0.0,
            ramp_seconds=float(self._rng.uniform(0, 300)),
            phase=float(self._rng.uniform(0, 2 * np.pi)),
            read_bps=float(self._rng.uniform(0, 20e6)),
            write_bps=float(self._rng.uniform(0, 5e6)),
        )
        deferrable = bool(
            mix.deferrable_fraction > 0.0
            and self._rng.uniform() < mix.deferrable_fraction
        )
        self._counter += 1
        return JobSpec(
            user=user,
            account=self._user_project[user],
            ncores=size.ncores,
            ngpus=size.ngpus,
            nnodes=size.nnodes,
            memory_bytes=size.memory_gb * 1024**3,
            walltime=duration * mix.walltime_factor,
            duration=duration,
            profile=profile,
            partition=size.partition,
            name=f"{size.name}-{self._counter}",
            deferrable=deferrable,
        )

    # -- driving a cluster ------------------------------------------------
    def submit_stream(self, cluster: SlurmCluster, start: float, end: float) -> list[str]:
        """Pre-materialise all submissions in ``[start, end]``.

        Returns the submitted job ids.  Used by benchmarks that build a
        history in one pass rather than stepping a clock.
        """
        t = start + self.next_interarrival(start)
        job_ids = []
        while t < end:
            job_ids.append(cluster.submit(self.sample_job(), t))
            t += self.next_interarrival(t)
        return job_ids

    def register_timer(self, clock, cluster: SlurmCluster) -> None:
        """Drive submissions from a :class:`SimClock`."""

        def submit_and_reschedule(now: float) -> None:
            cluster.submit(self.sample_job(), now)
            clock.at(now + self.next_interarrival(now), submit_and_reschedule)

        clock.at(clock.now() + self.next_interarrival(clock.now()), submit_and_reschedule)
