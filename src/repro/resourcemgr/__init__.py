"""Resource-manager simulators: SLURM, OpenStack (libvirt), Kubernetes.

The defining property of CEEMS is being *resource manager agnostic*
(it is in the paper's title): SLURM batch jobs, OpenStack VMs and
Kubernetes pods are all just cgroups plus an accounting source.  This
package provides all three managers over one common interface:

* each manager **places workloads on simulated nodes**, creating the
  cgroup hierarchy its real counterpart would create (which the
  exporter's path patterns recognise);
* each manager exposes an **accounting view** (``sacct`` for SLURM,
  the server list for OpenStack, the pod list for kubelet) that the
  CEEMS API server syncs into its unified compute-unit schema;
* :mod:`repro.resourcemgr.workload` generates deterministic,
  realistic workload streams (arrival processes, size and duration
  distributions, user/project populations) to drive them.
"""

from repro.resourcemgr.base import ComputeUnit, ResourceManager, UnitState
from repro.resourcemgr.k8s import KubernetesCluster, PodSpec
from repro.resourcemgr.openstack import OpenStackCluster, ServerSpec
from repro.resourcemgr.slurm import JobSpec, SlurmCluster
from repro.resourcemgr.workload import WorkloadGenerator, WorkloadMix

__all__ = [
    "ComputeUnit",
    "ResourceManager",
    "UnitState",
    "SlurmCluster",
    "JobSpec",
    "OpenStackCluster",
    "ServerSpec",
    "KubernetesCluster",
    "PodSpec",
    "WorkloadGenerator",
    "WorkloadMix",
]
