"""Standard Workload Format (SWF) traces: parse, convert, replay.

The Parallel Workloads Archive's SWF is the lingua franca for HPC job
traces (one line per job, 18 whitespace-separated fields, ``;``
header comments).  Supporting it lets this stack be driven by *real
cluster histories* instead of synthetic arrivals — the natural way to
ask "what would CEEMS have reported for our last quarter?".

Implemented here:

* :func:`parse_swf` — reader for the 18-field format (tolerant of the
  archive's ``-1`` missing-value convention);
* :class:`SWFJob` — one trace record;
* :func:`to_job_specs` — conversion to the simulator's
  :class:`~repro.resourcemgr.slurm.JobSpec`, mapping processors to
  cores/nodes against a target node size and synthesising an activity
  profile from the trace's CPU-time/runtime ratio (the trace tells us
  average utilisation; the profile reproduces it);
* :func:`replay` — submits the converted jobs on their trace
  timestamps through a :class:`SimClock`;
* :func:`write_swf` — emitter, so tests and examples can round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import SimulationError
from repro.hwsim.node import UsageProfile
from repro.resourcemgr.slurm import JobSpec, SlurmCluster

#: SWF status codes (field 11).
STATUS_FAILED = 0
STATUS_COMPLETED = 1
STATUS_CANCELLED = 5


@dataclass(frozen=True)
class SWFJob:
    """One SWF record (field numbers from the archive's definition)."""

    job_id: int  # 1
    submit_time: float  # 2 (seconds from trace start)
    wait_time: float  # 3
    run_time: float  # 4
    allocated_procs: int  # 5
    avg_cpu_time: float  # 6 (per processor; -1 if unknown)
    used_memory_kb: float  # 7 (per processor)
    requested_procs: int  # 8
    requested_time: float  # 9
    requested_memory_kb: float  # 10
    status: int  # 11
    user_id: int  # 12
    group_id: int  # 13
    executable: int  # 14
    queue: int  # 15
    partition: int  # 16
    preceding_job: int  # 17
    think_time: float  # 18

    @property
    def cpu_utilisation(self) -> float:
        """Average fraction of allocated processors actually busy."""
        if self.avg_cpu_time < 0 or self.run_time <= 0:
            return 0.75  # the archive's usual guess for missing data
        return min(max(self.avg_cpu_time / self.run_time, 0.02), 1.0)


def parse_swf(text: str) -> list[SWFJob]:
    """Parse SWF text; header comments (``;``) are skipped."""
    jobs: list[SWFJob] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) != 18:
            raise SimulationError(
                f"SWF line {lineno}: expected 18 fields, got {len(fields)}"
            )
        try:
            values = [float(f) for f in fields]
        except ValueError as exc:
            raise SimulationError(f"SWF line {lineno}: non-numeric field") from exc
        jobs.append(
            SWFJob(
                job_id=int(values[0]),
                submit_time=values[1],
                wait_time=values[2],
                run_time=values[3],
                allocated_procs=int(values[4]),
                avg_cpu_time=values[5],
                used_memory_kb=values[6],
                requested_procs=int(values[7]),
                requested_time=values[8],
                requested_memory_kb=values[9],
                status=int(values[10]),
                user_id=int(values[11]),
                group_id=int(values[12]),
                executable=int(values[13]),
                queue=int(values[14]),
                partition=int(values[15]),
                preceding_job=int(values[16]),
                think_time=values[17],
            )
        )
    return jobs


def write_swf(jobs: Iterable[SWFJob], comment: str = "synthetic trace") -> str:
    """Emit SWF text (round-trips through :func:`parse_swf`)."""
    lines = [f"; {comment}", "; Format: SWF v2.2"]
    for j in jobs:
        lines.append(
            f"{j.job_id} {j.submit_time:.0f} {j.wait_time:.0f} {j.run_time:.0f} "
            f"{j.allocated_procs} {j.avg_cpu_time:.0f} {j.used_memory_kb:.0f} "
            f"{j.requested_procs} {j.requested_time:.0f} {j.requested_memory_kb:.0f} "
            f"{j.status} {j.user_id} {j.group_id} {j.executable} {j.queue} "
            f"{j.partition} {j.preceding_job} {j.think_time:.0f}"
        )
    return "\n".join(lines) + "\n"


def to_job_specs(
    jobs: Iterable[SWFJob],
    *,
    cores_per_node: int,
    partition: str = "cpu",
    default_memory_gb_per_proc: float = 2.0,
) -> list[tuple[float, JobSpec]]:
    """Convert trace records to ``(submit_time, JobSpec)`` pairs.

    Processor counts map onto nodes of ``cores_per_node`` cores:
    a job wanting more processors than one node holds becomes a
    multi-node job.  Failed/cancelled trace jobs convert too — the
    monitoring stack must account them like any other.
    """
    out: list[tuple[float, JobSpec]] = []
    for j in jobs:
        procs = max(j.allocated_procs if j.allocated_procs > 0 else j.requested_procs, 1)
        nnodes = max((procs + cores_per_node - 1) // cores_per_node, 1)
        ncores = min(procs, cores_per_node) if nnodes == 1 else cores_per_node
        mem_kb = j.used_memory_kb if j.used_memory_kb > 0 else (
            default_memory_gb_per_proc * 1024 * 1024
        )
        memory_bytes = int(mem_kb * 1024 * min(procs, cores_per_node))
        run_time = max(j.run_time, 60.0)
        requested = j.requested_time if j.requested_time > 0 else run_time * 2
        profile = UsageProfile(
            cpu_base=j.cpu_utilisation,
            mem_base=0.7,  # footprint vs the limit derived from the trace
        )
        out.append(
            (
                j.submit_time,
                JobSpec(
                    user=f"user{j.user_id:03d}",
                    account=f"group{j.group_id:02d}",
                    ncores=ncores,
                    nnodes=nnodes,
                    memory_bytes=max(memory_bytes, 1024**3),
                    walltime=max(requested, run_time),
                    duration=run_time,
                    profile=profile,
                    partition=partition,
                    name=f"swf-{j.job_id}",
                ),
            )
        )
    out.sort(key=lambda pair: pair[0])
    return out


def replay(
    clock,
    cluster: SlurmCluster,
    specs: list[tuple[float, JobSpec]],
    *,
    trace_start: float | None = None,
) -> int:
    """Schedule every trace job for submission at its timestamp.

    ``trace_start`` anchors trace-relative times onto the clock
    (default: the clock's current time).  Returns the number of jobs
    scheduled.
    """
    origin = clock.now() if trace_start is None else trace_start
    scheduled = 0
    for submit_time, spec in specs:
        when = origin + submit_time
        if when < clock.now():
            continue
        clock.at(when, lambda now, s=spec: cluster.submit(s, now))
        scheduled += 1
    return scheduled
