"""Operator analytics over the accounting data.

Paper §III.B: cluster operators can *"perform data analysis on the
job metrics data to optimize the cluster usage, identify users and/or
projects that are using the cluster resources inefficiently"*.  This
module is that analysis layer, computed from the two stores the stack
already maintains:

* :func:`efficiency_report` — per-user resource-efficiency scores
  from the API server's SQLite (CPU efficiency = used core-seconds /
  allocated core-seconds; memory efficiency = peak / requested;
  energy per delivered core-hour), with an inefficiency flag list;
* :func:`cluster_utilisation_report` — fleet-level numbers from the
  TSDB: power by node group, idle-node detection (nodes drawing only
  their idle floor while running no units), and the cluster's
  aggregate carbon intensity.

Both return plain dataclasses with ``render()`` text tables so the
examples and the CLI can print them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apiserver.db import Database
from repro.common.units import format_co2, format_energy
from repro.tsdb.promql.engine import PromQLEngine


@dataclass
class UserEfficiency:
    """One user's efficiency scores over their finished units."""

    user: str
    project: str
    num_units: int
    core_hours_allocated: float
    cpu_efficiency: float  # mean used/allocated cores, time-weighted
    memory_efficiency: float  # mean peak/requested
    energy_joules: float
    emissions_g: float

    @property
    def energy_per_core_hour(self) -> float:
        return self.energy_joules / self.core_hours_allocated if self.core_hours_allocated else 0.0


@dataclass
class EfficiencyReport:
    rows: list[UserEfficiency]
    inefficiency_threshold: float

    @property
    def flagged(self) -> list[UserEfficiency]:
        """Users below the CPU-efficiency threshold (the paper's lens)."""
        return [r for r in self.rows if r.cpu_efficiency < self.inefficiency_threshold]

    def render(self) -> str:
        header = (
            f"{'user':<10} {'project':<11} {'units':>5} {'core-h':>8} "
            f"{'cpu-eff':>8} {'mem-eff':>8} {'J/core-h':>9} {'energy':>11} {'CO2e':>11}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            flag = " ⚠" if r.cpu_efficiency < self.inefficiency_threshold else ""
            lines.append(
                f"{r.user:<10} {r.project:<11} {r.num_units:>5} {r.core_hours_allocated:>8.1f} "
                f"{r.cpu_efficiency * 100:>7.1f}% {r.memory_efficiency * 100:>7.1f}% "
                f"{r.energy_per_core_hour:>9.0f} {format_energy(r.energy_joules):>11} "
                f"{format_co2(r.emissions_g):>11}{flag}"
            )
        return "\n".join(lines)


def efficiency_report(
    db: Database,
    cluster: str | None = None,
    *,
    inefficiency_threshold: float = 0.25,
    min_elapsed: float = 300.0,
) -> EfficiencyReport:
    """Per-user efficiency from the unit accounting records.

    Units shorter than ``min_elapsed`` are excluded (their averages
    are dominated by ramp-up noise; they are also the cleanup-cutoff
    population whose series may be gone).
    """
    clauses = ["elapsed >= ?"]
    params: list = [min_elapsed]
    if cluster is not None:
        clauses.append("cluster = ?")
        params.append(cluster)
    rows = db.conn.execute(
        f"""
        SELECT user, project,
               COUNT(*) AS num_units,
               SUM(elapsed * cpus) / 3600.0 AS core_hours,
               SUM(elapsed * MIN(avg_cpu_usage / MAX(cpus, 1), 1.0)) / SUM(elapsed) AS cpu_eff,
               SUM(elapsed * MIN(peak_memory_bytes / MAX(memory_bytes, 1), 1.0)) / SUM(elapsed) AS mem_eff,
               SUM(energy_joules) AS energy,
               SUM(emissions_g) AS emissions
        FROM units
        WHERE {' AND '.join(clauses)}
        GROUP BY user, project
        ORDER BY energy DESC
        """,
        params,
    ).fetchall()
    report_rows = [
        UserEfficiency(
            user=r["user"],
            project=r["project"],
            num_units=r["num_units"],
            core_hours_allocated=r["core_hours"] or 0.0,
            cpu_efficiency=min(max(r["cpu_eff"] or 0.0, 0.0), 1.0),
            memory_efficiency=min(max(r["mem_eff"] or 0.0, 0.0), 1.0),
            energy_joules=r["energy"] or 0.0,
            emissions_g=r["emissions"] or 0.0,
        )
        for r in rows
    ]
    return EfficiencyReport(rows=report_rows, inefficiency_threshold=inefficiency_threshold)


@dataclass
class ClusterUtilisation:
    """Fleet-level snapshot from the TSDB."""

    at: float
    total_power_w: float
    attributed_power_w: float
    power_by_nodegroup: dict[str, float] = field(default_factory=dict)
    nodes_total: int = 0
    nodes_idle: int = 0
    idle_power_w: float = 0.0
    carbon_intensity_g_per_kwh: float = 0.0

    @property
    def attribution_ratio(self) -> float:
        return self.attributed_power_w / self.total_power_w if self.total_power_w else 0.0

    def render(self) -> str:
        lines = [
            f"cluster power: {self.total_power_w / 1000:.1f} kW "
            f"({self.attribution_ratio * 100:.0f}% attributed to units)",
            f"idle nodes: {self.nodes_idle}/{self.nodes_total} "
            f"drawing {self.idle_power_w / 1000:.1f} kW doing nothing",
            f"grid intensity: {self.carbon_intensity_g_per_kwh:.0f} gCO2e/kWh",
            "power by node group:",
        ]
        for group, watts in sorted(self.power_by_nodegroup.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {group:<16} {watts / 1000:8.2f} kW")
        return "\n".join(lines)


def cluster_utilisation_report(
    engine: PromQLEngine,
    at: float,
    *,
    idle_margin: float = 1.3,
) -> ClusterUtilisation:
    """Fleet snapshot at time ``at``.

    A node counts as *idle* when it draws power but hosts no unit CPU
    activity — detected as a ``ceems:node:power_watts`` series with no
    matching per-unit series on the same hostname.  ``idle_margin`` is
    reserved for callers that want a wattage-based definition instead.
    """
    node_power = engine.query("ceems:node:power_watts", at=at)
    unit_power = engine.query("sum by (hostname) (ceems:compute_unit:power_watts)", at=at)
    busy_hosts = {el.labels.get("hostname") for el in unit_power.vector}
    total = sum(el.value for el in node_power.vector)
    attributed = sum(el.value for el in unit_power.vector)
    by_group: dict[str, float] = {}
    idle_nodes = 0
    idle_power = 0.0
    for el in node_power.vector:
        group = el.labels.get("nodegroup", "unknown")
        by_group[group] = by_group.get(group, 0.0) + el.value
        if el.labels.get("hostname") not in busy_hosts:
            idle_nodes += 1
            idle_power += el.value
    factor = engine.query('ceems_emissions_gCo2_kWh{provider="resolved"}', at=at)
    intensity = factor.vector[0].value if factor.vector else 0.0
    del idle_margin
    return ClusterUtilisation(
        at=at,
        total_power_w=total,
        attributed_power_w=attributed,
        power_by_nodegroup=by_group,
        nodes_total=len(node_power.vector),
        nodes_idle=idle_nodes,
        idle_power_w=idle_power,
        carbon_intensity_g_per_kwh=intensity,
    )
