"""Per-component telemetry bundle: registry + span store + log.

Every :class:`~repro.common.httpx.App` owns one :class:`Telemetry`
(auto-created), and non-HTTP components (the TSDB storage, the scrape
manager, the updater) can be handed one to record spans and metrics
into.  Two span entry points cover the two call patterns:

* :meth:`Telemetry.span` — always records; roots a new trace when no
  context is active.  For periodic activities that *originate* work
  (an updater pass, a scrape cycle).
* :meth:`Telemetry.child_span` — records only when a trace is already
  active, and is free (yields ``None``) otherwise.  For hot internals
  (storage selects, query evaluation) that must not mint junk traces
  on every rule evaluation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.log import StructuredLogger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    Span,
    SpanStore,
    TailSampler,
    activate,
    current_trace,
    deactivate,
    make_span,
)


class Telemetry:
    """One component's self-telemetry sink."""

    def __init__(
        self,
        component: str,
        span_capacity: int = 1024,
        sampler: TailSampler | None = None,
    ) -> None:
        self.component = component
        self.registry = MetricsRegistry()
        self.spans = SpanStore(capacity=span_capacity)
        #: Tail sampler applied at record time (shared across the sim's
        #: components so a trace is kept or dropped coherently).
        self.spans.sampler = sampler
        #: Structured JSONL log, trace-correlated via the ambient
        #: context (see :mod:`repro.obs.log`).
        self.log = StructuredLogger(component)

    def set_sampler(self, sampler: TailSampler | None) -> None:
        self.spans.sampler = sampler

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Record a span, rooting a new trace if none is active."""
        span, ctx = make_span(name, self.component, current_trace(), **attrs)
        token = activate(ctx)
        started = time.perf_counter()
        try:
            yield span
        except Exception:
            span.status = "error"
            raise
        finally:
            deactivate(token)
            span.duration = time.perf_counter() - started
            self.spans.record(span)

    @contextmanager
    def child_span(self, name: str, **attrs: Any) -> Iterator[Span | None]:
        """Record a span only when already inside a trace."""
        parent = current_trace()
        if parent is None:
            yield None
            return
        span, ctx = make_span(name, self.component, parent, **attrs)
        token = activate(ctx)
        started = time.perf_counter()
        try:
            yield span
        except Exception:
            span.status = "error"
            raise
        finally:
            deactivate(token)
            span.duration = time.perf_counter() - started
            self.spans.record(span)

    # -- exposition -------------------------------------------------------
    def collect(self):
        return self.registry.collect()

    def render(self) -> str:
        return self.registry.render()
