"""Query introspection: per-query stats, active-query tracker, slow log.

Reproduces the Prometheus operational trio the paper's deployments
lean on:

* **per-query stats** (``stats=all`` on the HTTP API): per-phase wall
  timings (parse / select / eval / render), series selected and
  samples touched, plus the evaluation strategy.  A
  :class:`QueryStats` is activated on a :mod:`contextvars` variable
  for the duration of one evaluation; the engine's selector paths
  report into it through :func:`tracked_select` /
  :func:`record_samples`, which cost one context-variable read when no
  stats object is active.

* an **active query tracker** with bounded concurrency slots and
  queued → running → done states, backed by a crash-surviving on-disk
  journal à la Prometheus's ``queries.active``: each admitted query
  appends a ``start`` record, each completion an ``end`` record.  A
  journal reopened with unmatched ``start`` records means the previous
  process died mid-query — those entries are *logged* ("unclean
  shutdown, N queries were in flight") and cleared, never replayed as
  running.

* a **slow-query log**: queries whose total wall time exceeds a
  configurable threshold land in a bounded ring and (via the
  structured logger) an optional JSONL sink, each entry carrying the
  query, its stats and the trace id it ran under.

Call sites in the engine must call through the module
(``obsquery.tracked_select(...)``) so the overhead bench can swap the
hooks for no-ops and measure their disabled cost.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO

from repro.common.errors import QueryError
from repro.obs.log import StructuredLogger

#: Per-query phases, in pipeline order.
PHASES = ("parse", "select", "eval", "render")


class QueryQueueFullError(QueryError):
    """All tracker slots busy and the queue wait timed out (HTTP 503)."""


# -- per-query stats -----------------------------------------------------
@dataclass
class QueryStats:
    """Accounting for one query evaluation."""

    query: str = ""
    strategy: str = ""
    #: Wall seconds per phase; ``select`` is a subset of ``eval``.
    phases: dict[str, float] = field(default_factory=dict)
    series_selected: int = 0
    samples_touched: int = 0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = (
                self.phases.get(name, 0.0) + time.perf_counter() - started
            )

    def add_select(self, series: int, seconds: float) -> None:
        self.series_selected += series
        self.phases["select"] = self.phases.get("select", 0.0) + seconds

    def total_seconds(self) -> float:
        """Pipeline wall time (select is nested inside eval)."""
        return sum(v for k, v in self.phases.items() if k != "select")

    def to_dict(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "timings": {
                f"{name}Seconds": self.phases.get(name, 0.0) for name in PHASES
            },
            "samples": {
                "seriesSelected": self.series_selected,
                "samplesTouched": self.samples_touched,
            },
        }


_active_stats: ContextVar[QueryStats | None] = ContextVar(
    "repro_obs_query_stats", default=None
)


def current_stats() -> QueryStats | None:
    """The stats object of the query being evaluated, if any."""
    return _active_stats.get()


def activate_stats(stats: QueryStats):
    """Make ``stats`` the ambient accounting sink; returns reset token."""
    return _active_stats.set(stats)


def deactivate_stats(token) -> None:
    _active_stats.reset(token)


def tracked_select(storage, matchers):
    """``storage.select`` with per-query accounting.

    Free when no stats object is active (one context-variable read);
    otherwise times the select and counts the series it returned.
    """
    stats = _active_stats.get()
    if stats is None:
        return storage.select(matchers)
    started = time.perf_counter()
    series_list = storage.select(matchers)
    stats.add_select(len(series_list), time.perf_counter() - started)
    return series_list


def record_samples(n: int) -> None:
    """Count ``n`` samples consulted by the active query, if any."""
    stats = _active_stats.get()
    if stats is not None:
        stats.samples_touched += n


# -- active query tracker ------------------------------------------------
@dataclass
class QueryRecord:
    """One tracked query's lifecycle."""

    id: int
    query: str
    #: Selector fingerprint: the plain series selectors the query
    #: touches (bounded cardinality, unlike the raw query text).
    fingerprint: tuple[str, ...] = ()
    strategy: str = ""
    state: str = "queued"  # queued | running | done | error
    #: Wall-clock admission time (display, as in ``queries.active``).
    start_time: float = 0.0
    queued_seconds: float = 0.0
    duration_seconds: float = 0.0
    trace_id: str = ""
    stats: QueryStats | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "query": self.query,
            "fingerprint": list(self.fingerprint),
            "strategy": self.strategy,
            "state": self.state,
            "start_time": self.start_time,
            "queued_seconds": self.queued_seconds,
            "duration_seconds": self.duration_seconds,
            "trace_id": self.trace_id,
        }
        if self.stats is not None:
            # Live view: an in-flight query shows the phases finished
            # so far; a done query its full breakdown.
            out["stats"] = self.stats.to_dict()
        return out


class ActiveQueryTracker:
    """Bounded-slot admission control plus the on-disk journal.

    ``max_concurrent`` callers run at once; excess queries wait in
    ``queued`` state up to ``queue_timeout`` seconds, then fail with
    :class:`QueryQueueFullError` — Prometheus's
    ``--query.max-concurrency`` gate.  With a ``journal_path`` every
    admission/completion is journaled so a killed process leaves
    evidence of what was in flight.
    """

    def __init__(
        self,
        max_concurrent: int = 20,
        *,
        journal_path: str = "",
        queue_timeout: float = 5.0,
        done_capacity: int = 64,
        logger: StructuredLogger | None = None,
    ) -> None:
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        self.max_concurrent = max_concurrent
        self.journal_path = journal_path
        self.queue_timeout = queue_timeout
        self.done_capacity = done_capacity
        self.log = logger or StructuredLogger("query-tracker")
        self._cond = threading.Condition()
        self._next_id = 1
        self._queued: list[QueryRecord] = []
        self._running: list[QueryRecord] = []
        self._done: list[QueryRecord] = []
        self._journal: TextIO | None = None
        self.queries_tracked = 0
        self.queue_timeouts = 0
        #: Queries found in flight in a stale journal at open (the
        #: previous process died mid-query).
        self.unclean_queries: list[dict[str, Any]] = []
        if journal_path:
            self._reopen_journal()

    # -- journal ---------------------------------------------------------
    def _reopen_journal(self) -> None:
        """Recover the journal: log + clear stale in-flight entries.

        Unmatched ``start`` records mean an unclean shutdown.  They are
        reported through the structured log and dropped — a dead
        process's queries must never reappear as running.
        """
        stale: dict[int, dict[str, Any]] = {}
        if os.path.exists(self.journal_path):
            with open(self.journal_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail of a killed writer
                    if entry.get("op") == "start":
                        stale[entry.get("id", 0)] = entry
                    elif entry.get("op") == "end":
                        stale.pop(entry.get("id", 0), None)
        self.unclean_queries = [
            {"query": e.get("query", ""), "start_time": e.get("ts", 0.0)}
            for e in stale.values()
        ]
        if self.unclean_queries:
            self.log.warning(
                "unclean shutdown, queries were in flight",
                in_flight=len(self.unclean_queries),
                queries=[q["query"] for q in self.unclean_queries],
            )
        # Truncate: recovered state must not be replayed on the next
        # reopen, and the journal restarts clean for this process.
        self._journal = open(self.journal_path, "w", encoding="utf-8")

    def _journal_write(self, entry: dict[str, Any]) -> None:
        if self._journal is None:
            return
        self._journal.write(json.dumps(entry) + "\n")
        self._journal.flush()

    # -- tracking --------------------------------------------------------
    @contextmanager
    def track(
        self,
        query: str,
        *,
        fingerprint: tuple[str, ...] = (),
        strategy: str = "",
        stats: QueryStats | None = None,
    ) -> Iterator[QueryRecord]:
        """Admit one query: blocks for a slot, journals, tracks states."""
        record = QueryRecord(
            id=0,
            query=query,
            fingerprint=fingerprint,
            strategy=strategy,
            start_time=time.time(),
            stats=stats,
        )
        queued_at = time.perf_counter()
        with self._cond:
            record.id = self._next_id
            self._next_id += 1
            self.queries_tracked += 1
            self._queued.append(record)
            deadline = queued_at + self.queue_timeout
            while len(self._running) >= self.max_concurrent:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    self._queued.remove(record)
                    self.queue_timeouts += 1
                    raise QueryQueueFullError(
                        f"query queue full: {len(self._running)} of "
                        f"{self.max_concurrent} slots busy for "
                        f"{self.queue_timeout:.1f}s"
                    )
            self._queued.remove(record)
            record.queued_seconds = time.perf_counter() - queued_at
            record.state = "running"
            self._running.append(record)
        self._journal_write(
            {"op": "start", "id": record.id, "query": query, "ts": record.start_time}
        )
        started = time.perf_counter()
        try:
            yield record
        except BaseException:
            record.state = "error"
            raise
        else:
            record.state = "done"
        finally:
            record.duration_seconds = time.perf_counter() - started
            self._journal_write({"op": "end", "id": record.id})
            with self._cond:
                self._running.remove(record)
                self._done.append(record)
                if len(self._done) > self.done_capacity:
                    del self._done[: len(self._done) - self.done_capacity]
                self._cond.notify()

    # -- views -----------------------------------------------------------
    def active(self) -> list[QueryRecord]:
        """Queued + running queries, admission order."""
        with self._cond:
            return list(self._queued) + list(self._running)

    def recent(self) -> list[QueryRecord]:
        """Finished queries, oldest first (bounded ring)."""
        with self._cond:
            return list(self._done)

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_concurrent": self.max_concurrent,
            "queries_tracked": self.queries_tracked,
            "queue_timeouts": self.queue_timeouts,
            "active": [r.to_dict() for r in self.active()],
            "recent": [r.to_dict() for r in self.recent()],
            "unclean_shutdown": list(self.unclean_queries),
        }

    def close(self) -> None:
        with self._cond:
            if self._journal is not None:
                self._journal.close()
                self._journal = None


# -- slow-query log ------------------------------------------------------
class SlowQueryLog:
    """Ring of queries slower than the threshold, with a JSONL sink.

    ``threshold_ms < 0`` disables the log entirely; ``0`` records every
    query (useful in tests and for full query logs à la Prometheus's
    ``--query.log-file``).
    """

    def __init__(
        self,
        threshold_ms: float = 100.0,
        *,
        capacity: int = 128,
        sink_path: str = "",
        component: str = "slow-query",
    ) -> None:
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.log = StructuredLogger(component, sink_path=sink_path)
        self._entries: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self.total_observed = 0
        self.total_slow = 0

    def observe(
        self,
        query: str,
        duration_seconds: float,
        *,
        stats: QueryStats | None = None,
        trace_id: str = "",
        endpoint: str = "",
    ) -> dict[str, Any] | None:
        """Record one finished query; returns the entry if it was slow."""
        self.total_observed += 1
        if self.threshold_ms < 0 or duration_seconds * 1000.0 < self.threshold_ms:
            return None
        entry: dict[str, Any] = {
            "ts": time.time(),
            "query": query,
            "endpoint": endpoint,
            "duration_seconds": duration_seconds,
            "trace_id": trace_id,
        }
        if stats is not None:
            entry["stats"] = stats.to_dict()
        with self._lock:
            self._entries.append(entry)
            self.total_slow += 1
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]
        self.log.warning(
            "slow query",
            query=query,
            endpoint=endpoint,
            duration_ms=duration_seconds * 1000.0,
            threshold_ms=self.threshold_ms,
            series_selected=stats.series_selected if stats else 0,
            samples_touched=stats.samples_touched if stats else 0,
        )
        return entry

    def entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
