"""Blackbox probing of the simulated stack.

Meta-monitoring via ``/metrics`` scrapes only proves a component can
render its own telemetry; it says nothing about whether the component
answers the requests users actually send.  Following the blackbox-
exporter pattern, :class:`BlackboxProber` issues synthetic requests
on the sim clock against the LB readiness endpoint, the API server,
the Prometheus backends and every exporter, and records

* ``probe_success{instance=...}`` — 1 when the endpoint answered with
  the expected status, else 0;
* ``probe_duration_seconds{instance=...}`` — wall-clock handler time;
* ``probe_http_status_code{instance=...}`` — the observed status;

into the meta-monitoring TSDB, where alerting rules and the ops
dashboard consume them like any other series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.httpx import App, Request
from repro.tsdb.model import METRIC_NAME_LABEL, Labels

PROBE_JOB = "blackbox"


@dataclass
class ProbeTarget:
    """One endpoint the prober hits every interval."""

    app: App
    instance: str
    path: str = "/-/healthy"
    module: str = "http_2xx"
    headers: dict[str, str] = field(default_factory=dict)
    expect_status: int = 200

    last_success: bool | None = None
    last_duration: float = 0.0
    last_status: int = 0


class BlackboxProber:
    """Probes targets on the sim clock, recording results as series."""

    def __init__(self, storage, *, interval: float = 60.0, job: str = PROBE_JOB) -> None:
        self.storage = storage
        self.interval = interval
        self.job = job
        self.targets: list[ProbeTarget] = []
        self.probes_total = 0
        self.failures_total = 0

    def add_target(self, target: ProbeTarget) -> None:
        if any(t.instance == target.instance for t in self.targets):
            raise ValueError(f"duplicate probe target {target.instance!r}")
        self.targets.append(target)

    def probe_all(self, now: float) -> int:
        """Probe every target once at sim time ``now``; returns failures."""
        failures = 0
        for target in self.targets:
            request = Request.from_url("GET", target.path, headers=target.headers)
            started = time.perf_counter()
            try:
                response = target.app.handle(request)
                status = response.status
            except Exception:
                status = 0
            duration = time.perf_counter() - started
            success = status == target.expect_status
            target.last_success = success
            target.last_duration = duration
            target.last_status = status
            self.probes_total += 1
            if not success:
                failures += 1
                self.failures_total += 1
            labels = {"instance": target.instance, "job": self.job, "module": target.module}
            self._append("probe_success", labels, now, 1.0 if success else 0.0)
            self._append("probe_duration_seconds", labels, now, duration)
            self._append("probe_http_status_code", labels, now, float(status))
        return failures

    def _append(self, name: str, labels: dict[str, str], now: float, value: float) -> None:
        self.storage.append(Labels({METRIC_NAME_LABEL: name, **labels}), now, value)

    def register_timer(self, clock) -> None:
        clock.every(self.interval, self.probe_all)

    def register_metrics(self, registry) -> None:
        registry.gauge_func(
            "ceems_probes_total",
            lambda: float(self.probes_total),
            help="Blackbox probes issued.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_probe_failures_total",
            lambda: float(self.failures_total),
            help="Blackbox probes that failed.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_probe_targets",
            lambda: float(len(self.targets)),
            help="Probe targets configured.",
        )
