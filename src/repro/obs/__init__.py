"""Self-telemetry subsystem (``repro.obs``).

The CEEMS paper's footprint claims (15-20 MB, tiny CPU per scrape)
come from the stack observing *itself*: real deployments scrape the
exporter, TSDB, LB and API server as ordinary Prometheus targets.
This package gives the reproduction the same property:

* :mod:`repro.obs.registry` — an in-process metrics registry
  (counters, gauges, fixed-bucket histograms, callback gauges) that
  renders to the existing :mod:`repro.tsdb.exposition` text format;
* :mod:`repro.obs.trace` — a W3C-``traceparent``-style trace context
  propagated through forwarded requests, plus a bounded in-memory
  span store per component;
* :mod:`repro.obs.telemetry` — the per-component bundle (registry +
  span store + structured log) that the HTTP middleware in
  :mod:`repro.common.httpx` and the non-HTTP components (storage,
  scrape manager, updater) record into;
* :mod:`repro.obs.log` — structured JSONL logging with automatic
  trace correlation (``component``/``level``/``trace_id``/``span_id``
  fields);
* :mod:`repro.obs.query` — query introspection: per-query stats
  (phase timings, series/samples counts), the bounded active-query
  tracker with its crash-surviving journal, and the slow-query log;
* :mod:`repro.obs.prof` — a wall-clock phase profiler (near-zero cost
  disabled) instrumenting the engine and storage hot paths, dumped at
  ``/debug/prof``.

The simulation wires each component's ``/metrics`` endpoint as a
scrape target of the sim Prometheus, so one PromQL query answers
"what is the p99 LB routing latency" from inside the stack.
"""

from repro.obs.log import LogRecord, StructuredLogger
from repro.obs.prof import PROFILER, Profiler
from repro.obs.query import (
    ActiveQueryTracker,
    QueryQueueFullError,
    QueryRecord,
    QueryStats,
    SlowQueryLog,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    SAMPLER_STATS,
    TRACEPARENT_HEADER,
    Span,
    SpanStore,
    TailSampler,
    TraceContext,
    current_trace,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TRACEPARENT_HEADER",
    "SAMPLER_STATS",
    "Span",
    "SpanStore",
    "TailSampler",
    "TraceContext",
    "current_trace",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "LogRecord",
    "StructuredLogger",
    "PROFILER",
    "Profiler",
    "ActiveQueryTracker",
    "QueryQueueFullError",
    "QueryRecord",
    "QueryStats",
    "SlowQueryLog",
]
