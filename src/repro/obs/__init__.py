"""Self-telemetry subsystem (``repro.obs``).

The CEEMS paper's footprint claims (15-20 MB, tiny CPU per scrape)
come from the stack observing *itself*: real deployments scrape the
exporter, TSDB, LB and API server as ordinary Prometheus targets.
This package gives the reproduction the same property:

* :mod:`repro.obs.registry` — an in-process metrics registry
  (counters, gauges, fixed-bucket histograms, callback gauges) that
  renders to the existing :mod:`repro.tsdb.exposition` text format;
* :mod:`repro.obs.trace` — a W3C-``traceparent``-style trace context
  propagated through forwarded requests, plus a bounded in-memory
  span store per component;
* :mod:`repro.obs.telemetry` — the per-component bundle (registry +
  span store) that the HTTP middleware in
  :mod:`repro.common.httpx` and the non-HTTP components (storage,
  scrape manager, updater) record into.

The simulation wires each component's ``/metrics`` endpoint as a
scrape target of the sim Prometheus, so one PromQL query answers
"what is the p99 LB routing latency" from inside the stack.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    Span,
    SpanStore,
    TraceContext,
    current_trace,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TRACEPARENT_HEADER",
    "Span",
    "SpanStore",
    "TraceContext",
    "current_trace",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]
