"""A production-semantics Alertmanager for the simulated stack.

The CEEMS deployment pairs Prometheus with Alertmanager: alerting
rules fire in Prometheus, and Alertmanager turns raw alert streams
into *notifications* an operator can live with.  This module
implements the Alertmanager core on the sim clock:

* **routing tree** (:class:`Route`) — label matchers select a
  receiver; child routes refine the parent, ``continue`` lets one
  alert notify several receivers;
* **grouping** — alerts sharing a route's ``group_by`` labels are
  batched into one notification, throttled by ``group_wait`` (first
  notification), ``group_interval`` (updates) and ``repeat_interval``
  (unchanged re-notification);
* **silences** (:class:`Silence`) — matcher sets with a TTL that
  suppress matching alerts without resolving them;
* **inhibition** (:class:`InhibitRule`) — an active source alert
  suppresses target alerts that agree on the ``equal`` labels (e.g.
  a firing ``CEEMSTargetDown`` inhibits per-collector noise for the
  same instance);
* **receivers** — named callables; :class:`JSONLReceiver` appends
  one JSON object per notification, which is what the integration
  tests assert against;
* a bounded **notification log** for ``/api/v1/*`` introspection.

The Alertmanager owns an :class:`~repro.common.httpx.App` so it can
be meta-scraped (``job="alertmanager"``) and serve the
``/api/v1/alerts``, ``/api/v1/silences`` and ``/api/v1/silence/{id}``
endpoints the LB proxies to Prometheus backends.
"""

from __future__ import annotations

import itertools
import json
import re
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.common.httpx import App, Request, Response
from repro.tsdb.alerts import AlertInstance, AlertState
from repro.tsdb.model import Labels

__all__ = [
    "Alertmanager",
    "InhibitRule",
    "JSONLReceiver",
    "Notification",
    "Route",
    "Silence",
]


def _full_match(pattern: str, value: str) -> bool:
    return re.fullmatch(pattern, value) is not None


@dataclass
class Route:
    """One node of the Alertmanager routing tree.

    The root route matches everything; child routes narrow by label
    matchers.  Routing walks depth-first: the first matching child
    wins unless it sets ``continue_`` (Alertmanager's ``continue``),
    in which case later siblings are also tried.
    """

    receiver: str = "default"
    match: dict[str, str] = field(default_factory=dict)
    match_re: dict[str, str] = field(default_factory=dict)
    group_by: tuple[str, ...] = ("alertname",)
    group_wait: float = 30.0
    group_interval: float = 300.0
    repeat_interval: float = 4 * 3600.0
    continue_: bool = False
    routes: list["Route"] = field(default_factory=list)

    def matches(self, labels: Labels) -> bool:
        for name, value in self.match.items():
            if labels.get(name) != value:
                return False
        for name, pattern in self.match_re.items():
            if not _full_match(pattern, labels.get(name) or ""):
                return False
        return True

    def route(self, labels: Labels) -> list["Route"]:
        """All routes this label set lands on (usually exactly one)."""
        matched: list[Route] = []
        for child in self.routes:
            if not child.matches(labels):
                continue
            matched.extend(child.route(labels))
            if not child.continue_:
                return matched
        return matched or [self]


@dataclass
class Silence:
    """A matcher set that suppresses alerts until ``ends_at``."""

    id: str
    matchers: list[dict]  # {"name": ..., "value": ..., "isRegex": bool}
    starts_at: float
    ends_at: float
    created_by: str = ""
    comment: str = ""

    def state(self, now: float) -> str:
        if now < self.starts_at:
            return "pending"
        if now >= self.ends_at:
            return "expired"
        return "active"

    def matches(self, labels: Labels) -> bool:
        for m in self.matchers:
            value = labels.get(m["name"]) or ""
            if m.get("isRegex"):
                if not _full_match(m["value"], value):
                    return False
            elif value != m["value"]:
                return False
        return True

    def to_dict(self, now: float) -> dict:
        return {
            "id": self.id,
            "matchers": list(self.matchers),
            "startsAt": self.starts_at,
            "endsAt": self.ends_at,
            "createdBy": self.created_by,
            "comment": self.comment,
            "status": {"state": self.state(now)},
        }


@dataclass
class InhibitRule:
    """Suppress target alerts while a matching source alert fires."""

    source_match: dict[str, str] = field(default_factory=dict)
    target_match: dict[str, str] = field(default_factory=dict)
    equal: tuple[str, ...] = ()

    def _matches(self, spec: dict[str, str], labels: Labels) -> bool:
        return all(labels.get(name) == value for name, value in spec.items())

    def source_matches(self, labels: Labels) -> bool:
        return self._matches(self.source_match, labels)

    def target_matches(self, labels: Labels) -> bool:
        return self._matches(self.target_match, labels)


@dataclass
class Notification:
    """One grouped notification dispatched to a receiver."""

    receiver: str
    status: str  # "firing" | "resolved"
    group_labels: dict[str, str]
    alerts: list[dict]
    sent_at: float

    def to_dict(self) -> dict:
        return {
            "receiver": self.receiver,
            "status": self.status,
            "groupLabels": self.group_labels,
            "alerts": self.alerts,
            "sentAt": self.sent_at,
        }


class JSONLReceiver:
    """Webhook stand-in: append one JSON object per notification."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.sent = 0

    def __call__(self, notification: Notification) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(notification.to_dict(), sort_keys=True) + "\n")
        self.sent += 1


class _Group:
    """Mutable state of one (route, group-key) aggregation group."""

    def __init__(self, route: Route, group_labels: dict[str, str]) -> None:
        self.route = route
        self.group_labels = group_labels
        #: fingerprint -> most recent AlertInstance (firing or resolved)
        self.alerts: dict[tuple, AlertInstance] = {}
        self.flush_due: float | None = None
        self.last_flush: float | None = None
        self.last_notified_at: float | None = None
        self.last_notified_hash: tuple | None = None


def _fingerprint(alert: AlertInstance) -> tuple:
    return (alert.name, alert.labels)


class Alertmanager:
    """Routing, grouping, silencing and inhibition on the sim clock."""

    def __init__(
        self,
        clock=None,
        *,
        route: Route | None = None,
        inhibit_rules: list[InhibitRule] | None = None,
        notification_log_size: int = 1000,
        tick_interval: float = 15.0,
        name: str = "alertmanager",
    ) -> None:
        self.clock = clock
        self.route = route or Route()
        self.inhibit_rules = inhibit_rules or []
        self.tick_interval = tick_interval
        self.receivers: dict[str, Callable[[Notification], None]] = {}
        self.notification_log: deque[Notification] = deque(maxlen=notification_log_size)
        self.notifications_total = 0
        self.silences: dict[str, Silence] = {}
        self._silence_ids = itertools.count(1)
        #: fingerprint -> currently-firing alert (the AM's world view)
        self._active: dict[tuple, AlertInstance] = {}
        self._groups: dict[tuple, _Group] = {}
        self._now = 0.0

        self.app = App(name)
        self.app.expose_telemetry()
        self._register_metrics(self.app.telemetry.registry)
        r = self.app.router
        r.get("/-/healthy", lambda req: Response.text("ok"))
        r.get("/api/v1/alerts", self._serve_alerts)
        r.post("/api/v1/alerts", self._serve_post_alerts)
        r.get("/api/v1/silences", self._serve_silences)
        r.post("/api/v1/silences", self._serve_post_silence)
        r.get("/api/v1/silence/{id}", self._serve_get_silence)
        r.delete("/api/v1/silence/{id}", self._serve_delete_silence)
        r.get("/api/v1/status", self._serve_status)

    # -- ingest -------------------------------------------------------

    def receive(self, transitions: list[AlertInstance], now: float) -> None:
        """Accept alert state transitions from the rule evaluator."""
        self._now = max(self._now, now)
        for alert in transitions:
            # Alertmanager semantics treat the alert name as the
            # ``alertname`` label — routing, grouping, silences and
            # inhibition all match on it.
            if alert.labels.get("alertname") != alert.name:
                alert = replace(alert, labels=alert.labels.merge({"alertname": alert.name}))
            fp = _fingerprint(alert)
            if alert.state is AlertState.FIRING:
                self._active[fp] = alert
            elif alert.state is AlertState.RESOLVED:
                self._active.pop(fp, None)
            else:
                continue  # pending alerts never reach Alertmanager
            for route in self.route.route(alert.labels):
                key_labels = {
                    name: alert.labels.get(name) or "" for name in route.group_by
                }
                key = (id(route), tuple(sorted(key_labels.items())))
                group = self._groups.get(key)
                if group is None:
                    group = self._groups[key] = _Group(route, key_labels)
                group.alerts[fp] = alert
                self._schedule_flush(group, now)

    def _schedule_flush(self, group: _Group, now: float) -> None:
        if group.flush_due is not None:
            return
        if group.last_flush is None:
            group.flush_due = now + group.route.group_wait
        else:
            group.flush_due = max(now, group.last_flush + group.route.group_interval)

    # -- flush loop ---------------------------------------------------

    def tick(self, now: float) -> None:
        """Flush every group whose wait elapsed (clock-driven)."""
        self._now = max(self._now, now)
        for key in list(self._groups):
            group = self._groups[key]
            if group.flush_due is None or group.flush_due > now:
                continue
            self._flush(group, now)
            if not group.alerts:
                del self._groups[key]

    def _flush(self, group: _Group, now: float) -> None:
        group.last_flush = now
        group.flush_due = None
        sendable = [
            alert
            for alert in group.alerts.values()
            if not self._suppressed(alert.labels, now)
        ]
        if sendable:
            content_hash = tuple(
                sorted((a.name, str(a.labels), a.state.value) for a in sendable)
            )
            changed = content_hash != group.last_notified_hash
            repeat_elapsed = (
                group.last_notified_at is not None
                and now - group.last_notified_at >= group.route.repeat_interval
            )
            if changed or repeat_elapsed or group.last_notified_at is None:
                self._notify(group, sendable, now)
                group.last_notified_at = now
                group.last_notified_hash = content_hash
        # Resolved alerts leave the group once their flush ran —
        # whether notified or suppressed — so the group can empty out.
        for fp in [
            fp for fp, a in group.alerts.items() if a.state is AlertState.RESOLVED
        ]:
            del group.alerts[fp]
        if group.alerts:
            group.flush_due = now + group.route.group_interval

    def _notify(self, group: _Group, alerts: list[AlertInstance], now: float) -> None:
        status = (
            "firing"
            if any(a.state is AlertState.FIRING for a in alerts)
            else "resolved"
        )
        notification = Notification(
            receiver=group.route.receiver,
            status=status,
            group_labels=dict(group.group_labels),
            alerts=[
                {
                    "labels": {"alertname": a.name, **a.labels.as_dict()},
                    "annotations": dict(a.annotations),
                    "status": a.state.value,
                    "activeAt": a.active_since,
                    "value": a.value,
                }
                for a in sorted(alerts, key=lambda a: (a.name, str(a.labels)))
            ],
            sent_at=now,
        )
        self.notification_log.append(notification)
        self.notifications_total += 1
        receiver = self.receivers.get(group.route.receiver)
        if receiver is not None:
            receiver(notification)

    # -- suppression --------------------------------------------------

    def silenced_by(self, labels: Labels, now: float | None = None) -> list[str]:
        now = self._now if now is None else now
        return [
            s.id
            for s in self.silences.values()
            if s.state(now) == "active" and s.matches(labels)
        ]

    def inhibited_by(self, labels: Labels, now: float | None = None) -> list[str]:
        now = self._now if now is None else now
        out: list[str] = []
        for rule in self.inhibit_rules:
            if not rule.target_matches(labels):
                continue
            for source in self._active.values():
                if not rule.source_matches(source.labels):
                    continue
                if source.labels == labels:
                    continue  # an alert never inhibits itself
                if self.silenced_by(source.labels, now):
                    continue  # silenced sources don't inhibit
                if all(
                    labels.get(name) == source.labels.get(name) for name in rule.equal
                ):
                    out.append(source.name)
                    break
        return out

    def _suppressed(self, labels: Labels, now: float) -> bool:
        return bool(self.silenced_by(labels, now)) or bool(
            self.inhibited_by(labels, now)
        )

    def status_of(self, labels: Labels, now: float | None = None) -> dict:
        """Alertmanager status envelope for one alert's label set."""
        silenced = self.silenced_by(labels, now)
        inhibited = self.inhibited_by(labels, now)
        return {
            "state": "suppressed" if silenced or inhibited else "active",
            "silencedBy": silenced,
            "inhibitedBy": inhibited,
        }

    # -- silences -----------------------------------------------------

    def add_silence(
        self,
        matchers: list[dict],
        *,
        starts_at: float | None = None,
        ends_at: float,
        created_by: str = "",
        comment: str = "",
    ) -> Silence:
        for m in matchers:
            if not m.get("name") or "value" not in m:
                raise ValueError("silence matchers need name and value")
        silence = Silence(
            id=f"silence-{next(self._silence_ids)}",
            matchers=[
                {
                    "name": m["name"],
                    "value": m["value"],
                    "isRegex": bool(m.get("isRegex")),
                }
                for m in matchers
            ],
            starts_at=self._now if starts_at is None else starts_at,
            ends_at=ends_at,
            created_by=created_by,
            comment=comment,
        )
        self.silences[silence.id] = silence
        return silence

    def expire_silence(self, silence_id: str) -> bool:
        silence = self.silences.get(silence_id)
        if silence is None:
            return False
        silence.ends_at = min(silence.ends_at, self._now)
        return True

    def gc_silences(self, keep_expired_for: float = 3600.0) -> int:
        """Drop silences expired for longer than ``keep_expired_for``."""
        cutoff = self._now - keep_expired_for
        stale = [s.id for s in self.silences.values() if s.ends_at < cutoff]
        for sid in stale:
            del self.silences[sid]
        return len(stale)

    # -- introspection ------------------------------------------------

    def active_alerts(self) -> list[AlertInstance]:
        return sorted(self._active.values(), key=lambda a: (a.name, str(a.labels)))

    def register_timer(self, clock) -> None:
        clock.every(self.tick_interval, self.tick)

    def _register_metrics(self, registry) -> None:
        registry.gauge_func(
            "ceems_alert_notifications_total",
            lambda: float(self.notifications_total),
            help="Grouped notifications dispatched to receivers.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_am_active_alerts",
            lambda: float(len(self._active)),
            help="Alerts currently firing in the Alertmanager view.",
        )
        registry.gauge_func(
            "ceems_am_groups",
            lambda: float(len(self._groups)),
            help="Aggregation groups currently tracked.",
        )
        registry.gauge_func(
            "ceems_am_silences_active",
            lambda: float(
                sum(1 for s in self.silences.values() if s.state(self._now) == "active")
            ),
            help="Silences currently active.",
        )

    # -- HTTP surface (shared with PromAPI via delegation) ------------

    def _serve_alerts(self, request: Request) -> Response:
        now = self._now
        return Response.json(
            {
                "status": "success",
                "data": [
                    {
                        "labels": {"alertname": a.name, **a.labels.as_dict()},
                        "annotations": dict(a.annotations),
                        "state": a.state.value,
                        "activeAt": a.active_since,
                        "value": a.value,
                        "status": self.status_of(a.labels, now),
                    }
                    for a in self.active_alerts()
                ],
            }
        )

    def _serve_post_alerts(self, request: Request) -> Response:
        """Accept externally-posted alerts (amtool/webhook parity)."""
        try:
            payload = request.json()
        except (ValueError, UnicodeDecodeError):
            return Response.error(400, "invalid JSON body")
        if not isinstance(payload, list):
            return Response.error(400, "expected a JSON array of alerts")
        transitions = []
        for entry in payload:
            labels = dict(entry.get("labels") or {})
            name = labels.pop("alertname", "") or "external"
            resolved = entry.get("status") == "resolved"
            transitions.append(
                AlertInstance(
                    name=name,
                    labels=Labels(labels),
                    state=AlertState.RESOLVED if resolved else AlertState.FIRING,
                    active_since=float(entry.get("activeAt") or self._now),
                    value=float(entry.get("value") or 1.0),
                    annotations=dict(entry.get("annotations") or {}),
                )
            )
        self.receive(transitions, self._now)
        return Response.json({"status": "success"})

    def _serve_silences(self, request: Request) -> Response:
        now = self._now
        return Response.json(
            {
                "status": "success",
                "data": [
                    s.to_dict(now)
                    for s in sorted(self.silences.values(), key=lambda s: s.id)
                ],
            }
        )

    def _serve_post_silence(self, request: Request) -> Response:
        try:
            payload = request.json()
        except (ValueError, UnicodeDecodeError):
            return Response.error(400, "invalid JSON body")
        if not isinstance(payload, dict) or not payload.get("matchers"):
            return Response.error(400, "silence needs a matchers list")
        try:
            silence = self.add_silence(
                payload["matchers"],
                starts_at=payload.get("startsAt"),
                ends_at=float(payload["endsAt"]),
                created_by=str(payload.get("createdBy", "")),
                comment=str(payload.get("comment", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            return Response.error(400, f"invalid silence: {exc}")
        return Response.json({"status": "success", "data": {"silenceID": silence.id}})

    def _serve_get_silence(self, request: Request) -> Response:
        silence = self.silences.get(request.path_params["id"])
        if silence is None:
            return Response.error(404, "silence not found")
        return Response.json({"status": "success", "data": silence.to_dict(self._now)})

    def _serve_delete_silence(self, request: Request) -> Response:
        if not self.expire_silence(request.path_params["id"]):
            return Response.error(404, "silence not found")
        return Response.json({"status": "success"})

    def _serve_status(self, request: Request) -> Response:
        return Response.json(
            {
                "status": "success",
                "data": {
                    "receivers": sorted(self.receivers),
                    "groups": len(self._groups),
                    "activeAlerts": len(self._active),
                    "silences": len(self.silences),
                    "notificationLog": len(self.notification_log),
                    "notificationsTotal": self.notifications_total,
                },
            }
        )
