"""Wall-clock phase profiler for hot internals.

A context-manager hook that storage and engine hot paths wrap around
their phases::

    from repro.obs import prof
    with prof.profile("wal.fsync"):
        os.fsync(fd)

When the process-wide :data:`PROFILER` is disabled (the default), the
hook is one global attribute load, a bool test and a shared no-op
context manager — no allocation, no lock, no timestamps — so leaving
the instrumentation in the hot paths is essentially free (guarded by
``benchmarks/bench_obs_overhead.py``).  When enabled, each phase
accumulates into a flat profile (count / total / max seconds) that
``/debug/prof`` renders, answering "where does the wall time go"
without an external profiler attached.

Call sites must call through the module (``prof.profile(...)``), not
bind the function at import time — that keeps the hook swappable for
the overhead bench and monkeypatch-friendly in tests.
"""

from __future__ import annotations

import threading
import time


class _NullTimer:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """One enabled measurement; records into its profiler on exit."""

    __slots__ = ("profiler", "name", "started")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.profiler._record(self.name, time.perf_counter() - self.started)
        return False


class Profiler:
    """Aggregating flat profile: per-phase count / total / max seconds."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        # name -> [count, total_seconds, max_seconds]
        self._flat: dict[str, list[float]] = {}

    def profile(self, name: str):
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    def _record(self, name: str, elapsed: float) -> None:
        with self._lock:
            entry = self._flat.get(name)
            if entry is None:
                self._flat[name] = [1, elapsed, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
                if elapsed > entry[2]:
                    entry[2] = elapsed

    # -- control ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._flat.clear()

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, float]]:
        """Flat profile ordered by total seconds, heaviest first."""
        with self._lock:
            items = [(name, list(entry)) for name, entry in self._flat.items()]
        items.sort(key=lambda kv: -kv[1][1])
        return {
            name: {
                "count": int(count),
                "total_seconds": total,
                "max_seconds": peak,
                "avg_seconds": total / count if count else 0.0,
            }
            for name, (count, total, peak) in items
        }


#: The process-wide profiler every instrumentation site records into.
PROFILER = Profiler()


def profile(name: str):
    """Module-level hook used by the instrumented hot paths."""
    if not PROFILER.enabled:
        return _NULL_TIMER
    return _Timer(PROFILER, name)
