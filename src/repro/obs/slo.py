"""Declarative SLOs compiled to multi-window burn-rate alerts.

An SLO ("99.9% of LB requests succeed over the window") is the
contract the ROADMAP's scale-out work must not break.  Following the
multiwindow, multi-burn-rate recipe from the Google SRE workbook,
each :class:`SLO` compiles into

* **recording rules** — ``slo:<name>:error_ratio_rate<w>`` for every
  window the burn-rate alerts consult, plus
  ``slo:<name>:error_budget_remaining`` for dashboards;
* **alerting rules** — one per :class:`BurnRateWindow`, firing when
  the error ratio exceeds ``factor × (1 - objective)`` on *both* a
  short and a long window (the short window makes the alert reset
  quickly, the long window makes it ignore blips).

Two SLO kinds are supported over the PR-2 self-telemetry request
histograms: ``availability`` (non-5xx ratio of
``ceems_http_requests_total``) and ``latency`` (requests under a
histogram bucket bound of ``ceems_http_request_duration_seconds``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tsdb.alerts import AlertingRule, AlertingRuleGroup
from repro.tsdb.rules import RecordingRule, RuleGroup

__all__ = [
    "SLO",
    "BurnRateWindow",
    "DEFAULT_BURN_WINDOWS",
    "slo_recording_group",
    "slo_alert_group",
    "standard_slos",
]


@dataclass(frozen=True)
class BurnRateWindow:
    """One (short, long) window pair of the multiwindow recipe."""

    short: str
    long: str
    factor: float
    severity: str
    hold: float = 120.0


#: Fast burn pages (14.4x exhausts a 30-day budget in ~2 days), slow
#: burn tickets (6x in ~5 days) — SRE-workbook defaults.
DEFAULT_BURN_WINDOWS = (
    BurnRateWindow(short="5m", long="1h", factor=14.4, severity="critical", hold=120.0),
    BurnRateWindow(short="30m", long="6h", factor=6.0, severity="warning", hold=900.0),
)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over the self-telemetry histograms."""

    name: str  # metric-name-safe (letters, digits, underscores)
    objective: float  # e.g. 0.999
    selector: str  # label matchers, e.g. 'job="ceems-lb"'
    kind: str = "availability"  # "availability" | "latency"
    latency_threshold: str = "0.5"  # ``le`` bucket bound for kind=latency
    requests_metric: str = "ceems_http_requests_total"
    duration_metric: str = "ceems_http_request_duration_seconds"
    error_matcher: str = 'code=~"5.."'
    windows: tuple[BurnRateWindow, ...] = DEFAULT_BURN_WINDOWS
    #: long window used for the error-budget-remaining recording rule
    budget_window: str = "1h"
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")

    # -- expression compilation ---------------------------------------

    def error_ratio_expr(self, window: str) -> str:
        """PromQL for the bad-request ratio over one window.

        The ``or total*0`` arm pins the ratio to 0 while there is
        traffic but no errors (an empty numerator would otherwise make
        the recorded series vanish and the burn alert blind).
        """
        if self.kind == "availability":
            total = f"sum(rate({self.requests_metric}{{{self.selector}}}[{window}]))"
            errors = (
                f"sum(rate({self.requests_metric}"
                f"{{{self.selector},{self.error_matcher}}}[{window}]))"
            )
            return f"({errors} / {total}) or ({total} * 0)"
        total = f"sum(rate({self.duration_metric}_count{{{self.selector}}}[{window}]))"
        fast = (
            f"sum(rate({self.duration_metric}_bucket"
            f'{{{self.selector},le="{self.latency_threshold}"}}[{window}]))'
        )
        return f"(1 - ({fast} / {total})) or ({total} * 0)"

    def record_name(self, window: str) -> str:
        return f"slo:{self.name}:error_ratio_rate{window}"

    def all_windows(self) -> list[str]:
        seen: list[str] = []
        for w in self.windows:
            for name in (w.short, w.long):
                if name not in seen:
                    seen.append(name)
        if self.budget_window not in seen:
            seen.append(self.budget_window)
        return seen

    def recording_rules(self) -> list[RecordingRule]:
        rules = [
            RecordingRule(
                record=self.record_name(window),
                expr=self.error_ratio_expr(window),
                labels={"slo": self.name},
            )
            for window in self.all_windows()
        ]
        budget = 1.0 - self.objective
        rules.append(
            RecordingRule(
                record=f"slo:{self.name}:error_budget_remaining",
                expr=(
                    f"1 - ({self.record_name(self.budget_window)}"
                    f'{{slo="{self.name}"}} / {budget:.10g})'
                ),
                labels={"slo": self.name},
            )
        )
        return rules

    def alerting_rules(self) -> list[AlertingRule]:
        budget = 1.0 - self.objective
        rules = []
        for w in self.windows:
            bound = f"{w.factor * budget:.10g}"
            short_series = f'{self.record_name(w.short)}{{slo="{self.name}"}}'
            long_series = f'{self.record_name(w.long)}{{slo="{self.name}"}}'
            rules.append(
                AlertingRule(
                    name=f"SLOErrorBudgetBurn_{self.name}_{w.short}_{w.long}",
                    expr=f"({short_series} > {bound}) and ({long_series} > {bound})",
                    hold=w.hold,
                    labels={"severity": w.severity, "slo": self.name},
                    annotations={
                        "summary": (
                            f"SLO {self.name} burning error budget at >"
                            f"{w.factor:g}x ({w.short} and {w.long} windows)"
                        ),
                        **self.annotations,
                    },
                )
            )
        return rules


def slo_recording_group(slos: list[SLO], interval: float = 30.0) -> RuleGroup:
    """One recording group feeding every SLO's burn-rate series."""
    group = RuleGroup(name="slo-rules", interval=interval)
    for slo in slos:
        group.rules.extend(slo.recording_rules())
    return group


def slo_alert_group(slos: list[SLO], interval: float = 60.0) -> AlertingRuleGroup:
    """One alerting group holding every SLO's burn-rate alerts."""
    group = AlertingRuleGroup(name="slo-alerts", interval=interval)
    for slo in slos:
        group.rules.extend(slo.alerting_rules())
    return group


def standard_slos() -> list[SLO]:
    """The shipped SLO pack: LB availability and LB latency."""
    return [
        SLO(
            name="lb_availability",
            objective=0.999,
            selector='job="ceems-lb"',
            kind="availability",
        ),
        SLO(
            name="lb_latency",
            objective=0.95,
            selector='job="ceems-lb"',
            kind="latency",
            latency_threshold="0.5",
        ),
    ]
