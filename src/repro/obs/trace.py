"""Trace context (W3C ``traceparent`` style) and the span store.

A trace is born at the edge of the stack — the LB or a Grafana-facing
endpoint — and flows through every forwarded request: the HTTP
middleware parses the incoming ``traceparent`` header, opens a child
span, and rewrites the header so the next hop sees this span as its
parent.  Non-HTTP hops (the in-process engine → storage call chain,
the updater's periodic pass) propagate through a :mod:`contextvars`
context variable instead, which also gives each socket-server thread
its own independent context.

Header format (the ``00`` version of the W3C spec, fixed sampled
flag)::

    traceparent: 00-<32 hex trace id>-<16 hex span id>-01

Span/trace ids come from one process-wide counter, so a simulation
run produces the same ids every time — determinism the rest of the
test suite relies on.

Spans land in a **bounded** per-component :class:`SpanStore` (a ring
buffer); self-observation must never become the memory leak it is
meant to detect.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

TRACEPARENT_HEADER = "traceparent"

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")


@dataclass(frozen=True)
class TraceContext:
    """The propagated part of a trace: who we are inside which trace."""

    trace_id: str
    span_id: str

    def header_value(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; malformed values yield ``None``.

    Malformed propagation must degrade to "start a new trace", never
    to an error — a monitoring stack cannot 500 on a bad header.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4 or parts[0] != "00":
        return None
    trace_id, span_id = parts[1], parts[2]
    if not _TRACE_ID_RE.match(trace_id) or not _SPAN_ID_RE.match(span_id):
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


# One process-wide id source: deterministic (a counter, not random)
# and thread-safe.  Trace and span ids share the counter; they only
# need to be unique, not dense.
_id_counter = itertools.count(1)
_id_lock = threading.Lock()


def _next_id() -> int:
    with _id_lock:
        return next(_id_counter)


def new_trace_id() -> str:
    return f"{_next_id():032x}"


def new_span_id() -> str:
    return f"{_next_id():016x}"


_current: ContextVar[TraceContext | None] = ContextVar("repro_obs_trace", default=None)


def current_trace() -> TraceContext | None:
    """The active trace context of this thread/task, if any."""
    return _current.get()


def activate(ctx: TraceContext):
    """Make ``ctx`` the active context; returns the reset token."""
    return _current.set(ctx)


def deactivate(token) -> None:
    _current.reset(token)


@dataclass
class Span:
    """One recorded operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    component: str
    #: Wall-clock start (``time.time()``) — for display only; ordering
    #: and duration use the monotonic clock.
    start: float
    duration: float = 0.0
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


#: Process-wide tail-sampling totals, aggregated across every
#: component's sampler so the PromAPI engine-stats collector can
#: expose ``ceems_trace_sampler_{kept,dropped}_total`` without holding
#: references to each store.
SAMPLER_STATS = {"kept": 0, "dropped": 0}

#: Knuth's multiplicative-hash constant: spreads the (sequential,
#: deterministic) trace-id counter uniformly over [0, 1) so a sample
#: rate of 0.1 really keeps ~10% of traces, not the first 10%.
_HASH_MULT = 2654435761
_HASH_MOD = 2**32


def _trace_fraction(trace_id: str) -> float:
    """Deterministic per-trace uniform draw in [0, 1)."""
    try:
        seed = int(trace_id, 16)
    except ValueError:
        seed = hash(trace_id)
    return (seed * _HASH_MULT) % _HASH_MOD / _HASH_MOD


@dataclass
class TailSampler:
    """Tail-based sampling: decide *after* the span finished.

    Unlike head sampling the decision can see the outcome, so the
    traces worth keeping — errors and slow requests, exactly the ones
    exemplars point operators at — are always retained; only the
    boring fast-and-ok majority is thinned probabilistically.  The
    probabilistic draw hashes the trace id, so every span of a trace
    gets the same draw and a kept trace is kept coherently across
    components sharing the sampler.
    """

    #: Probability of keeping a fast, successful span. 1.0 keeps all.
    rate: float = 1.0
    #: Spans at least this slow (milliseconds) are always kept.
    keep_slow_ms: float = 250.0
    kept_total: int = 0
    dropped_total: int = 0

    def keep(self, span: Span) -> bool:
        if span.status != "ok":
            decision = True
        elif span.duration * 1000.0 >= self.keep_slow_ms:
            decision = True
        elif self.rate >= 1.0:
            decision = True
        elif self.rate <= 0.0:
            decision = False
        else:
            decision = _trace_fraction(span.trace_id) < self.rate
        if decision:
            self.kept_total += 1
            SAMPLER_STATS["kept"] += 1
        else:
            self.dropped_total += 1
            SAMPLER_STATS["dropped"] += 1
        return decision


class SpanStore:
    """Bounded in-memory ring of finished spans (newest last)."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("span store capacity must be positive")
        self.capacity = capacity
        self._spans: list[Span] = []
        #: trace id -> retained spans of that trace, ring order.  The
        #: exemplar deep-link path (``/debug/traces?trace_id=``) made
        #: ``for_trace`` hot; the index turns its O(capacity) scan
        #: into a dict hit and is maintained on eviction so a dead
        #: trace id can never pin its spans.
        self._by_trace: dict[str, list[Span]] = {}
        self._lock = threading.Lock()
        #: Optional :class:`TailSampler`; when set, spans it rejects
        #: are counted in ``total_recorded`` but never stored.
        self.sampler: TailSampler | None = None
        self.total_recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self.total_recorded += 1
            sampler = self.sampler
            if sampler is not None and not sampler.keep(span):
                return
            self._spans.append(span)
            self._by_trace.setdefault(span.trace_id, []).append(span)
            excess = len(self._spans) - self.capacity
            if excess > 0:
                # Both the ring and each trace bucket are append-
                # ordered, so the evicted span is always its bucket's
                # head; empty buckets are deleted so evicted trace ids
                # never leak.
                for doomed in self._spans[:excess]:
                    bucket = self._by_trace[doomed.trace_id]
                    bucket.pop(0)
                    if not bucket:
                        del self._by_trace[doomed.trace_id]
                del self._spans[:excess]

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> list[Span]:
        with self._lock:
            return list(self._by_trace.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently retained, oldest first."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._by_trace.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def make_span(
    name: str,
    component: str,
    parent: TraceContext | None,
    **attrs: Any,
) -> tuple[Span, TraceContext]:
    """Create a span continuing ``parent`` (or rooting a new trace).

    Returns the span plus the context downstream hops should see.
    """
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        trace_id, parent_id = new_trace_id(), ""
    ctx = TraceContext(trace_id=trace_id, span_id=new_span_id())
    span = Span(
        trace_id=trace_id,
        span_id=ctx.span_id,
        parent_id=parent_id,
        name=name,
        component=component,
        start=time.time(),
        attrs=attrs,
    )
    return span, ctx
