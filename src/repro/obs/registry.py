"""In-process metrics registry rendering to the exposition format.

The registry is the write side of the stack's self-telemetry: the
HTTP middleware and component internals record counters, gauges and
histograms here, and each component's ``/metrics`` endpoint renders
the registry with :func:`repro.tsdb.exposition.render` — the same
wire format the exporters speak, so the sim Prometheus can scrape the
stack's own components with zero new parsing code.

Histograms use fixed buckets and expose the standard Prometheus
triplet (``*_bucket`` with cumulative ``le`` labels including
``+Inf``, ``*_sum``, ``*_count``), which keeps them compatible with
``histogram_quantile()`` in the PromQL engine.

Thread safety: observation methods take a lock, because components
mounted on :func:`repro.common.httpx.serve_threading` handle requests
from server threads concurrently.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import TYPE_CHECKING, Callable, Iterable

from repro.common.errors import CEEMSError
from repro.obs.trace import current_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tsdb.exposition import MetricFamily


def _exposition():
    """Deferred import of :mod:`repro.tsdb.exposition`.

    ``repro.tsdb``'s package init pulls in the scrape manager, which
    imports :mod:`repro.common.httpx`, which imports this module — a
    cycle if the exposition types were imported at module load.  At
    collect/render time every module involved is fully initialised.
    """
    from repro.tsdb import exposition

    return exposition

#: Default latency buckets (seconds), tuned for in-process handlers:
#: most requests land well under a millisecond, but socket-served and
#: query-evaluating requests reach into the tens of milliseconds.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted(labels.items()))


#: Exemplar capture switch.  Process-wide on purpose: the bench guard
#: measures enabled-vs-disabled ingest, and an operator turning
#: exemplars off wants *every* component to stop paying for capture.
_EXEMPLARS_ENABLED = True

#: Per-slot replacement rate limit (seconds).  A hot counter or bucket
#: would otherwise replace its exemplar on every observation; one
#: fresh trace reference per slot per interval is plenty to drill into
#: a spike and keeps the capture branch off the allocation path.
_EXEMPLAR_MIN_INTERVAL = 0.25


def set_exemplars_enabled(enabled: bool) -> bool:
    """Toggle exemplar capture process-wide; returns the old value."""
    global _EXEMPLARS_ENABLED
    old = _EXEMPLARS_ENABLED
    _EXEMPLARS_ENABLED = bool(enabled)
    return old


_monotonic = time.monotonic

# Exemplar capture stores raw ``(trace_id, value, monotonic)`` tuples
# inline in each metric's per-label-set entry — no side dict, so the
# hot path pays no second hash of the label key.  The rate-limit check
# runs before the trace lookup: on a hot metric nearly every
# observation exits on the freshness test, so the steady-state cost is
# one list index and one clock read.  The wire-format
# :class:`~repro.tsdb.exposition.Exemplar` is only built at collect()
# time, keeping exposition types off the ingest path entirely.


def _as_exemplar(exposition, captured):
    """Raw captured tuple -> wire :class:`Exemplar` (or ``None``)."""
    if captured is None:
        return None
    trace_id, value, _mono = captured
    return exposition.Exemplar(labels={"trace_id": trace_id}, value=value)


class _Metric:
    """Shared bookkeeping for labelled metrics."""

    type = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def collect(self) -> list[MetricFamily]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value, optionally labelled."""

    type = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        # per label set: [running total, captured exemplar tuple|None]
        self._values: dict[_LabelKey, list] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise CEEMSError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                entry = self._values[key] = [0.0, None]
            entry[0] += amount
            if _EXEMPLARS_ENABLED:
                # Exemplar value is the increment, not the running
                # total: "this trace contributed this much".
                prev = entry[1]
                if prev is None or _monotonic() - prev[2] >= _EXEMPLAR_MIN_INTERVAL:
                    ctx = current_trace()
                    if ctx is not None:
                        entry[1] = (ctx.trace_id, amount, _monotonic())

    def value(self, **labels: str) -> float:
        entry = self._values.get(_label_key(labels))
        return entry[0] if entry else 0.0

    def collect(self) -> list[MetricFamily]:
        exposition = _exposition()
        family = exposition.MetricFamily(self.name, help=self.help, type=self.type)
        with self._lock:
            for key, (value, captured) in self._values.items():
                family.add(
                    value, exemplar=_as_exemplar(exposition, captured), **dict(key)
                )
        return [family]


class Gauge(_Metric):
    """A value that can go up and down, optionally labelled."""

    type = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def collect(self) -> list[MetricFamily]:
        family = _exposition().MetricFamily(self.name, help=self.help, type=self.type)
        with self._lock:
            for key, value in self._values.items():
                family.add(value, **dict(key))
        return [family]


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative Prometheus exposition."""

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise CEEMSError(f"histogram {self.name} needs at least one bucket")
        # ``le`` label text is a pure function of the (immutable)
        # bucket bounds; formatting it once here keeps collect() —
        # which runs on every exporter scrape — allocation-light.
        self._le_strs: tuple[str, ...] = tuple(self._le(b) for b in self.buckets)
        # per label set: (per-bucket counts (+overflow slot),
        # [sum, count], per-bucket exemplar tuples (+overflow slot))
        self._data: dict[_LabelKey, tuple[list[int], list[float], list]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        # First bucket with ``le >= value`` (Prometheus bucket rule);
        # past the last bucket the observation lands in +Inf only.
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                slots = len(self.buckets) + 1
                entry = ([0] * slots, [0.0, 0.0], [None] * slots)
                self._data[key] = entry
            entry[0][idx] += 1
            entry[1][0] += value  # sum
            entry[1][1] += 1  # count
            if _EXEMPLARS_ENABLED:
                # Per-bucket slots, like Prometheus client_golang: the
                # exemplar rides the bucket the observation landed in,
                # so a p99 spike's bucket carries a p99 trace.
                exemplars = entry[2]
                prev = exemplars[idx]
                if prev is None or _monotonic() - prev[2] >= _EXEMPLAR_MIN_INTERVAL:
                    ctx = current_trace()
                    if ctx is not None:
                        exemplars[idx] = (ctx.trace_id, value, _monotonic())

    def count(self, **labels: str) -> float:
        entry = self._data.get(_label_key(labels))
        return entry[1][1] if entry else 0.0

    def sum(self, **labels: str) -> float:
        entry = self._data.get(_label_key(labels))
        return entry[1][0] if entry else 0.0

    @staticmethod
    def _le(bound: float) -> str:
        if float(bound).is_integer():
            return str(float(bound))
        return repr(float(bound))

    def collect(self) -> list[MetricFamily]:
        # The marker family carries HELP/TYPE histogram; sample lines
        # live in the _bucket/_sum/_count families (what the scrape
        # parser turns into the queryable series).
        exposition = _exposition()
        marker = exposition.MetricFamily(self.name, help=self.help, type=self.type)
        buckets = exposition.MetricFamily(f"{self.name}_bucket", type="counter")
        sums = exposition.MetricFamily(f"{self.name}_sum", type="counter")
        counts = exposition.MetricFamily(f"{self.name}_count", type="counter")
        point = exposition.MetricPoint
        bucket_points = buckets.points
        with self._lock:
            for key, (counts_per_bucket, sum_count, exemplars) in self._data.items():
                cumulative = 0
                for idx, (le_str, n) in enumerate(
                    zip(self._le_strs, counts_per_bucket)
                ):
                    cumulative += n
                    labels = dict(key)
                    labels["le"] = le_str
                    bucket_points.append(
                        point(
                            labels=labels,
                            value=float(cumulative),
                            exemplar=_as_exemplar(exposition, exemplars[idx]),
                        )
                    )
                labels = dict(key)
                labels["le"] = "+Inf"
                bucket_points.append(
                    point(
                        labels=labels,
                        value=sum_count[1],
                        exemplar=_as_exemplar(exposition, exemplars[-1]),
                    )
                )
                sums.add(sum_count[0], **dict(key))
                counts.add(sum_count[1], **dict(key))
        return [marker, buckets, sums, counts]


class _CallbackGauge(_Metric):
    """A gauge whose value is read at collect time."""

    def __init__(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        type: str = "gauge",
        **const_labels: str,
    ) -> None:
        super().__init__(name, help)
        self.type = type
        self.fn = fn
        self.const_labels = const_labels

    def collect(self) -> list[MetricFamily]:
        family = _exposition().MetricFamily(self.name, help=self.help, type=self.type)
        family.add(float(self.fn()), **self.const_labels)
        return [family]


class MetricsRegistry:
    """All of one component's self-telemetry metrics.

    Metrics are registered once (get-or-create by name) and collected
    in registration order; ``collector()`` callbacks run last, letting
    components expose pre-existing plain-attribute statistics (cache
    hit counters, backend health) without double bookkeeping.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], list[MetricFamily]]] = []
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, *args, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise CEEMSError(
                        f"metric {name!r} already registered as {existing.type}"
                    )
                return existing
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets)

    def gauge_func(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        type: str = "gauge",
        **const_labels: str,
    ) -> None:
        """Register a collect-time callback exposed as one sample."""
        with self._lock:
            if name in self._metrics:
                raise CEEMSError(f"metric {name!r} already registered")
            self._metrics[name] = _CallbackGauge(name, fn, help, type, **const_labels)

    def collector(self, fn: Callable[[], list[MetricFamily]]) -> None:
        """Register a callback producing whole metric families."""
        self._collectors.append(fn)

    @property
    def names(self) -> list[str]:
        return list(self._metrics)

    def collect(self) -> list[MetricFamily]:
        families: list[MetricFamily] = []
        for metric in list(self._metrics.values()):
            families.extend(metric.collect())
        for fn in self._collectors:
            families.extend(fn())
        return families

    def render(self) -> str:
        return _exposition().render(self.collect())
