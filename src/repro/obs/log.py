"""Structured, trace-correlated JSONL logging.

Every component can emit structured log records — one JSON object per
line — carrying ``component``/``level``/``event`` fields plus whatever
key/value context the call site adds.  Records are automatically
correlated with the PR-2 trace layer: when a :mod:`repro.obs.trace`
context is active (inside an HTTP handler, an instrumented periodic
pass, …) the record picks up the ambient ``trace_id``/``span_id``, so
a slow-query log line links straight to its trace in
``/debug/traces``.

Records land in a bounded in-memory ring (the same
never-become-the-leak rule the span store follows) and, when a
``sink_path`` is configured, are appended as JSONL to a file — the
shape Prometheus's ``--log.format=json`` query log writes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, TextIO

from repro.obs.trace import current_trace

#: Severity order used by the logger's level threshold.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


@dataclass
class LogRecord:
    """One structured log entry."""

    ts: float
    level: str
    component: str
    event: str
    trace_id: str = ""
    span_id: str = ""
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "ts": self.ts,
            "level": self.level,
            "component": self.component,
            "event": self.event,
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.span_id:
            out["span_id"] = self.span_id
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=False)


class StructuredLogger:
    """Bounded ring of :class:`LogRecord` plus an optional JSONL sink.

    Thread-safe (handlers on :func:`repro.common.httpx.serve_threading`
    log concurrently).  The sink file is opened lazily in append mode
    and flushed per record, so two loggers may safely share one path
    (each record is a single ``write`` of one line).
    """

    def __init__(
        self,
        component: str,
        *,
        capacity: int = 1024,
        sink_path: str = "",
        level: str = "debug",
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        if capacity <= 0:
            raise ValueError("log ring capacity must be positive")
        self.component = component
        self.capacity = capacity
        self.sink_path = sink_path
        self.level = level
        self._records: list[LogRecord] = []
        self._lock = threading.Lock()
        self._sink: TextIO | None = None
        self.total_logged = 0
        self.counts: dict[str, int] = {}

    # -- emission --------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> LogRecord | None:
        """Emit one record; returns it (or ``None`` below the threshold)."""
        if LEVELS.get(level, 0) < LEVELS[self.level]:
            return None
        ctx = current_trace()
        record = LogRecord(
            ts=time.time(),
            level=level,
            component=self.component,
            event=event,
            trace_id=ctx.trace_id if ctx else "",
            span_id=ctx.span_id if ctx else "",
            fields=fields,
        )
        line = record.to_json() if self.sink_path else ""
        with self._lock:
            self._records.append(record)
            self.total_logged += 1
            self.counts[level] = self.counts.get(level, 0) + 1
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
            if self.sink_path:
                if self._sink is None:
                    self._sink = open(self.sink_path, "a", encoding="utf-8")
                self._sink.write(line + "\n")
                self._sink.flush()
        return record

    def debug(self, event: str, **fields: Any) -> LogRecord | None:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> LogRecord | None:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> LogRecord | None:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> LogRecord | None:
        return self.log("error", event, **fields)

    # -- access ----------------------------------------------------------
    def records(self, level: str | None = None) -> list[LogRecord]:
        with self._lock:
            if level is None:
                return list(self._records)
            return [r for r in self._records if r.level == level]

    def for_trace(self, trace_id: str) -> list[LogRecord]:
        with self._lock:
            return [r for r in self._records if r.trace_id == trace_id]

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
