"""The Thanos object store: blocks + per-resolution sample storage.

Real Thanos stores immutable TSDB blocks in object storage and keeps
an index per resolution (raw, 5m, 1h).  Here each resolution is one
:class:`~repro.tsdb.storage.TSDB` (reusing its label index and window
reads) plus a block ledger carrying the metadata compaction decisions
are made from.  The behavioural contract — what uploads, what gets
downsampled, what a long-range query reads — is preserved.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import StorageError
from repro.tsdb.storage import TSDB

#: Thanos resolution levels, seconds per downsampled point.
RESOLUTIONS = ("raw", "5m", "1h")
RESOLUTION_SECONDS = {"raw": 0.0, "5m": 300.0, "1h": 3600.0}


@dataclass
class BlockMeta:
    """Metadata of one uploaded/compacted block."""

    ulid: str
    min_time: float
    max_time: float
    resolution: str
    num_samples: int
    num_series: int
    #: Compaction level: 1 = fresh upload, grows when merged.
    level: int = 1
    source_ulids: tuple[str, ...] = ()


@dataclass
class ObjectStore:
    """Block ledger plus per-resolution sample stores."""

    raw_retention: float = 0.0  # 0 = keep forever
    five_m_retention: float = 0.0
    one_h_retention: float = 0.0

    blocks: list[BlockMeta] = field(default_factory=list)
    _ulid_seq: itertools.count = field(default_factory=lambda: itertools.count(1), repr=False)

    def __post_init__(self) -> None:
        self.tsdbs: dict[str, TSDB] = {
            "raw": TSDB(name="thanos-raw"),
            "5m": TSDB(name="thanos-5m"),
            "1h": TSDB(name="thanos-1h"),
        }

    # -- block management ------------------------------------------------
    def new_ulid(self) -> str:
        return f"01BLOCK{next(self._ulid_seq):012d}"

    def add_block(self, meta: BlockMeta) -> None:
        if meta.resolution not in RESOLUTIONS:
            raise StorageError(f"unknown resolution {meta.resolution!r}")
        if meta.max_time < meta.min_time:
            raise StorageError("block max_time before min_time")
        self.blocks.append(meta)

    def blocks_at(self, resolution: str) -> list[BlockMeta]:
        return sorted(
            (b for b in self.blocks if b.resolution == resolution), key=lambda b: b.min_time
        )

    def drop_block(self, ulid: str) -> None:
        self.blocks = [b for b in self.blocks if b.ulid != ulid]

    # -- querying -----------------------------------------------------------
    def tsdb(self, resolution: str) -> TSDB:
        try:
            return self.tsdbs[resolution]
        except KeyError:
            raise StorageError(f"unknown resolution {resolution!r}") from None

    def select(self, matchers):
        """Batched-select contract (raw resolution), so a PromQL engine
        — per-step or columnar — can point at the store gateway
        directly; selection rides the raw TSDB's selector memo."""
        return self.tsdbs["raw"].select(matchers)

    def selector_cache_stats(self) -> dict[str, dict[str, float]]:
        """Per-resolution selector-memo counters (bench observability)."""
        return {
            resolution: tsdb.selector_cache_stats()
            for resolution, tsdb in self.tsdbs.items()
        }

    def pick_resolution(self, range_seconds: float) -> str:
        """Thanos auto-downsampling heuristic: keep point counts sane.

        Queries spanning more than ~2 days read the 5m resolution;
        more than ~2 weeks, the 1h resolution (when populated).
        """
        if range_seconds > 14 * 86400 and self.tsdbs["1h"].num_series:
            return "1h"
        if range_seconds > 2 * 86400 and self.tsdbs["5m"].num_series:
            return "5m"
        return "raw"

    # -- retention ------------------------------------------------------------
    def apply_retention(self, now: float) -> dict[str, int]:
        """Per-resolution retention (mirrors Thanos's compactor flags)."""
        dropped: dict[str, int] = {}
        for resolution, horizon in (
            ("raw", self.raw_retention),
            ("5m", self.five_m_retention),
            ("1h", self.one_h_retention),
        ):
            if horizon <= 0:
                continue
            tsdb = self.tsdbs[resolution]
            tsdb.retention = horizon
            samples, _series = tsdb.apply_retention(now)
            dropped[resolution] = samples
            cutoff = now - horizon
            for block in [b for b in self.blocks_at(resolution) if b.max_time < cutoff]:
                self.drop_block(block.ulid)
        return dropped
