"""The Thanos object store: blocks + per-resolution sample storage.

Real Thanos stores immutable TSDB blocks in object storage and keeps
an index per resolution (raw, 5m, 1h).  Here each resolution is one
:class:`~repro.tsdb.storage.TSDB` (reusing its label index and window
reads) plus a block ledger carrying the metadata compaction decisions
are made from.  The behavioural contract — what uploads, what gets
downsampled, what a long-range query reads — is preserved.

With a ``persist_dir`` the store is durable: every block registered
through :meth:`persist_block` exists as an immutable on-disk
directory (``meta.json`` + index + Gorilla chunk files, see
:mod:`repro.tsdb.persist.block`), a fresh store loads every persisted
block back into its ledger and per-resolution TSDBs on open, and
:meth:`drop_block` removes the directory along with the ledger entry.

``lazy_blocks=True`` (requires a ``persist_dir``) switches block
reads to query-over-chunks: opening the store reads only each block's
``index.json`` and registers decode-on-demand chunk handles
(mmap-backed, see :mod:`repro.tsdb.persist.chunkio`) into a
per-resolution :class:`~repro.tsdb.persist.chunkio.ChunkIndex`
instead of decoding every chunk into the TSDBs.  Queries then decode
exactly the chunks their time range touches, through the process-wide
decoded-chunk LRU.  Retention over chunked data is block-granular
(whole expired blocks drop), matching Thanos semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import StorageError
from repro.tsdb.storage import TSDB

#: Thanos resolution levels, seconds per downsampled point.
RESOLUTIONS = ("raw", "5m", "1h")
RESOLUTION_SECONDS = {"raw": 0.0, "5m": 300.0, "1h": 3600.0}


@dataclass
class BlockMeta:
    """Metadata of one uploaded/compacted block."""

    ulid: str
    min_time: float
    max_time: float
    resolution: str
    num_samples: int
    num_series: int
    #: Compaction level: 1 = fresh upload, grows when merged.
    level: int = 1
    source_ulids: tuple[str, ...] = ()


@dataclass
class ObjectStore:
    """Block ledger plus per-resolution sample stores."""

    raw_retention: float = 0.0  # 0 = keep forever
    five_m_retention: float = 0.0
    one_h_retention: float = 0.0
    #: When set, blocks are written/read as directories under this
    #: path and reloaded on construction.
    persist_dir: str = ""
    #: Query-over-chunks mode: serve persisted blocks straight from
    #: mmap'd chunk files (decode on demand) instead of decoding every
    #: block into the per-resolution TSDBs at open.  Requires
    #: ``persist_dir``.
    lazy_blocks: bool = False

    blocks: list[BlockMeta] = field(default_factory=list)
    _ulid_seq: itertools.count = field(default_factory=lambda: itertools.count(1), repr=False)

    def __post_init__(self) -> None:
        if self.lazy_blocks and not self.persist_dir:
            raise StorageError("lazy_blocks requires a persist_dir")
        self.tsdbs: dict[str, TSDB] = {
            "raw": TSDB(name="thanos-raw"),
            "5m": TSDB(name="thanos-5m"),
            "1h": TSDB(name="thanos-1h"),
        }
        if self.lazy_blocks:
            from repro.tsdb.persist.chunkio import ChunkIndex

            self.chunk_indexes = {
                res: ChunkIndex(name=f"thanos-{res}") for res in RESOLUTIONS
            }
        else:
            self.chunk_indexes = {}
        self._readers: dict[str, object] = {}
        # merged-select memo per resolution: matcher tuple ->
        # (version, series list); validated against `version()` so any
        # TSDB mutation or block add/drop rebuilds the merge.
        self._merge_memo: dict[str, dict] = {res: {} for res in RESOLUTIONS}
        self.persisted_blocks = 0
        self.persisted_raw_bytes = 0
        self.persisted_encoded_bytes = 0
        self.loaded_blocks = 0
        self.loaded_raw_bytes = 0
        self.loaded_encoded_bytes = 0
        if self.persist_dir:
            self._load_persisted()

    # -- persistence ------------------------------------------------------
    def _register_block_chunks(self, ulid: str, resolution: str) -> None:
        """Register a persisted block's chunk handles (lazy mode)."""
        from repro.tsdb.persist.block import BlockReader

        reader = BlockReader(self.persist_dir, ulid)
        self._readers[ulid] = reader
        self.chunk_indexes[resolution].add_block(ulid, reader.chunk_series())

    def _load_persisted(self) -> None:
        """Rebuild ledger + per-resolution stores from disk on open.

        Eager mode decodes every chunk into the TSDBs; lazy mode only
        parses each block's index and registers chunk handles — open
        cost is metadata-proportional, decode is deferred to queries.
        """
        from repro.tsdb.persist.block import BlockReader, list_block_ulids

        max_seq = 0
        for ulid in list_block_ulids(self.persist_dir):
            reader = BlockReader(self.persist_dir, ulid)
            meta = reader.meta
            resolution = meta.get("resolution", "raw")
            if resolution not in RESOLUTIONS:
                raise StorageError(f"persisted block {ulid}: unknown resolution {resolution!r}")
            if self.lazy_blocks:
                self._readers[ulid] = reader
                self.chunk_indexes[resolution].add_block(ulid, reader.chunk_series())
            else:
                tsdb = self.tsdbs[resolution]
                for labels, ts, vs in reader.series():
                    tsdb.append_array(labels, ts, vs)
            stats = meta.get("stats", {})
            compaction = meta.get("compaction", {})
            self.blocks.append(
                BlockMeta(
                    ulid=ulid,
                    min_time=meta["minTime"],
                    max_time=meta["maxTime"],
                    resolution=resolution,
                    num_samples=stats.get("numSamples", 0),
                    num_series=stats.get("numSeries", 0),
                    level=compaction.get("level", 1),
                    source_ulids=tuple(compaction.get("sources", ())),
                )
            )
            self.loaded_blocks += 1
            codec = meta.get("codec", {})
            self.loaded_raw_bytes += codec.get("rawBytes", 0)
            self.loaded_encoded_bytes += codec.get("encodedBytes", 0)
            if ulid.startswith("01BLOCK"):
                try:
                    max_seq = max(max_seq, int(ulid[len("01BLOCK"):]))
                except ValueError:
                    pass
        self._ulid_seq = itertools.count(max_seq + 1)

    def persist_block(
        self,
        ulid: str,
        series,
        *,
        min_time: float,
        max_time: float,
        resolution: str = "raw",
        level: int = 1,
        sources: tuple[str, ...] = (),
    ) -> dict | None:
        """Write one immutable block directory (no-op when in-memory).

        ``series`` is an iterable of ``(labels, ts_array, vs_array)``.
        Returns the written ``meta.json`` dict, or ``None`` when the
        store has no ``persist_dir``.
        """
        if not self.persist_dir:
            return None
        from repro.tsdb.persist.block import write_block

        meta = write_block(
            self.persist_dir,
            ulid,
            series,
            min_time=min_time,
            max_time=max_time,
            resolution=resolution,
            level=level,
            sources=sources,
        )
        self.persisted_blocks += 1
        self.persisted_raw_bytes += meta["codec"]["rawBytes"]
        self.persisted_encoded_bytes += meta["codec"]["encodedBytes"]
        return meta

    # -- block management ------------------------------------------------
    def new_ulid(self) -> str:
        return f"01BLOCK{next(self._ulid_seq):012d}"

    def add_block(self, meta: BlockMeta) -> None:
        if meta.resolution not in RESOLUTIONS:
            raise StorageError(f"unknown resolution {meta.resolution!r}")
        if meta.max_time < meta.min_time:
            raise StorageError("block max_time before min_time")
        self.blocks.append(meta)
        if self.lazy_blocks:
            # In lazy mode the persisted directory *is* the data: a
            # registered block must be queryable through its chunks.
            self._register_block_chunks(meta.ulid, meta.resolution)

    def blocks_at(self, resolution: str) -> list[BlockMeta]:
        return sorted(
            (b for b in self.blocks if b.resolution == resolution), key=lambda b: b.min_time
        )

    def drop_block(self, ulid: str) -> None:
        dropped = [b for b in self.blocks if b.ulid == ulid]
        self.blocks = [b for b in self.blocks if b.ulid != ulid]
        for meta in dropped:
            if self.lazy_blocks:
                self.chunk_indexes[meta.resolution].remove_block(ulid)
        reader = self._readers.pop(ulid, None)
        if reader is not None:
            reader.close()
        if self.persist_dir:
            from repro.tsdb.persist.block import delete_block

            delete_block(self.persist_dir, ulid)

    # -- querying -----------------------------------------------------------
    def tsdb(self, resolution: str) -> TSDB:
        try:
            return self.tsdbs[resolution]
        except KeyError:
            raise StorageError(f"unknown resolution {resolution!r}") from None

    def version(self, resolution: str) -> tuple:
        """Monotone validity token for anything caching select results
        at this resolution: changes on any TSDB mutation *or* chunked
        block add/drop."""
        tsdb = self.tsdb(resolution)
        index = self.chunk_indexes.get(resolution)
        return (
            tsdb.series_epoch,
            tsdb.data_epoch,
            index.generation if index is not None else 0,
        )

    def select_at(self, resolution: str, matchers):
        """Matching series at one resolution: TSDB + chunked blocks.

        Eager stores delegate straight to the TSDB (selector memo and
        all).  Lazy stores merge the TSDB's live series with
        chunk-backed series from registered blocks — overlapping label
        sets become :class:`~repro.tsdb.persist.chunkio.MergedSeries`
        (live head wins duplicate timestamps).  Merged results are
        memoised per matcher tuple, validated by :meth:`version`.
        """
        tsdb = self.tsdb(resolution)
        if not self.lazy_blocks:
            return tsdb.select(matchers)
        key = tuple(matchers)
        version = self.version(resolution)
        memo = self._merge_memo[resolution]
        cached = memo.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        chunked = self.chunk_indexes[resolution].select(key)
        live = tsdb.select(matchers) if tsdb.num_series else []
        if not chunked:
            out = live
        elif not live:
            out = chunked
        else:
            from repro.tsdb.persist.chunkio import MergedSeries

            by_labels = {s.labels: s for s in chunked}
            seen = set()
            out = []
            for series in live:
                secondary = by_labels.get(series.labels)
                seen.add(series.labels)
                out.append(
                    series if secondary is None else MergedSeries(series, secondary)
                )
            out.extend(s for s in chunked if s.labels not in seen)
            out.sort(key=lambda s: tuple(s.labels))
        if len(memo) >= 128:
            memo.clear()
        memo[key] = (version, out)
        return out

    def select(self, matchers):
        """Batched-select contract (raw resolution), so a PromQL engine
        — per-step or columnar — can point at the store gateway
        directly; selection rides the raw TSDB's selector memo (and,
        in lazy mode, the chunk index + merge memo)."""
        return self.select_at("raw", matchers)

    def window_series(self, resolution: str, lo: float, hi: float):
        """Yield non-empty ``(labels, ts, vs)`` slices of ``[lo, hi)``
        across TSDB and chunked-block series — the compactor's and
        downsampler's resolution-agnostic read path."""
        from repro.tsdb.persist.chunkio import MergedSeries

        tsdb = self.tsdb(resolution)
        index = self.chunk_indexes.get(resolution)
        if index is None:
            for series in tsdb.all_series():
                ts, vs = series.window_half_open(lo, hi)
                if len(ts):
                    yield series.labels, ts, vs
            return
        live = {s.labels: s for s in tsdb.all_series()}
        chunked = {s.labels: s for s in index.all_series()}
        for labels in sorted(set(live) | set(chunked), key=tuple):
            primary = live.get(labels)
            secondary = chunked.get(labels)
            if primary is None:
                series = secondary
            elif secondary is None:
                series = primary
            else:
                series = MergedSeries(primary, secondary, labels)
            ts, vs = series.window_half_open(lo, hi)
            if len(ts):
                yield labels, ts, vs

    def num_series_at(self, resolution: str) -> int:
        """Distinct series at a resolution (TSDB plus chunked blocks).

        Upper-bounds the union (overlapping label sets counted once
        per side would need a set build); used only as a non-emptiness
        signal by :meth:`pick_resolution`.
        """
        count = self.tsdb(resolution).num_series
        index = self.chunk_indexes.get(resolution)
        if index is not None:
            count += index.num_series
        return count

    def label_values_at(self, resolution: str, label_name: str) -> list[str]:
        values = set(self.tsdb(resolution).label_values(label_name))
        index = self.chunk_indexes.get(resolution)
        if index is not None:
            values |= index.label_values(label_name)
        return sorted(values)

    def selector_cache_stats(self) -> dict[str, dict[str, float]]:
        """Per-resolution selector-memo counters (bench observability)."""
        return {
            resolution: tsdb.selector_cache_stats()
            for resolution, tsdb in self.tsdbs.items()
        }

    def pick_resolution(self, range_seconds: float) -> str:
        """Thanos auto-downsampling heuristic: keep point counts sane.

        Queries spanning more than ~2 days read the 5m resolution;
        more than ~2 weeks, the 1h resolution (when populated).
        """
        if range_seconds > 14 * 86400 and self.num_series_at("1h"):
            return "1h"
        if range_seconds > 2 * 86400 and self.num_series_at("5m"):
            return "5m"
        return "raw"

    # -- retention ------------------------------------------------------------
    def apply_retention(self, now: float) -> dict[str, int]:
        """Per-resolution retention (mirrors Thanos's compactor flags)."""
        dropped: dict[str, int] = {}
        for resolution, horizon in (
            ("raw", self.raw_retention),
            ("5m", self.five_m_retention),
            ("1h", self.one_h_retention),
        ):
            if horizon <= 0:
                continue
            tsdb = self.tsdbs[resolution]
            tsdb.retention = horizon
            samples, _series = tsdb.apply_retention(now)
            dropped[resolution] = samples
            cutoff = now - horizon
            for block in [b for b in self.blocks_at(resolution) if b.max_time < cutoff]:
                self.drop_block(block.ulid)
        return dropped

    # -- observability --------------------------------------------------------
    def compression_ratio(self) -> float:
        """Raw float64 bytes per encoded chunk byte, over every block on
        disk — both written this process and reloaded at open, so the
        gauge is meaningful immediately after a restart."""
        encoded = self.persisted_encoded_bytes + self.loaded_encoded_bytes
        if not encoded:
            return 0.0
        return (self.persisted_raw_bytes + self.loaded_raw_bytes) / encoded

    def register_metrics(self, registry) -> None:
        """Expose block-persistence counters on a component's registry."""
        registry.gauge_func(
            "ceems_thanos_blocks_persisted_total",
            lambda: float(self.persisted_blocks),
            help="Block directories written to the store's persist_dir.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_bytes_written_total",
            lambda: float(self.persisted_encoded_bytes),
            help="Encoded chunk bytes written into persisted blocks.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_raw_bytes_total",
            lambda: float(self.persisted_raw_bytes),
            help="Uncompressed (16 B/sample) bytes covered by persisted blocks.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_compression_ratio",
            self.compression_ratio,
            help="Raw bytes per encoded byte across persisted blocks.",
        )
        # Chunk-level alias under the tsdb namespace: dashboards track
        # codec efficiency next to the WAL/head families.
        registry.gauge_func(
            "ceems_tsdb_chunk_compression_ratio",
            self.compression_ratio,
            help="Gorilla chunk compression ratio (raw/encoded bytes).",
        )
        registry.gauge_func(
            "ceems_thanos_blocks_loaded_total",
            lambda: float(self.loaded_blocks),
            help="Persisted blocks reloaded when this store opened.",
            type="counter",
        )
