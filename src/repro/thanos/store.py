"""The Thanos object store: blocks + per-resolution sample storage.

Real Thanos stores immutable TSDB blocks in object storage and keeps
an index per resolution (raw, 5m, 1h).  Here each resolution is one
:class:`~repro.tsdb.storage.TSDB` (reusing its label index and window
reads) plus a block ledger carrying the metadata compaction decisions
are made from.  The behavioural contract — what uploads, what gets
downsampled, what a long-range query reads — is preserved.

With a ``persist_dir`` the store is durable: every block registered
through :meth:`persist_block` exists as an immutable on-disk
directory (``meta.json`` + index + Gorilla chunk files, see
:mod:`repro.tsdb.persist.block`), a fresh store loads every persisted
block back into its ledger and per-resolution TSDBs on open, and
:meth:`drop_block` removes the directory along with the ledger entry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import StorageError
from repro.tsdb.storage import TSDB

#: Thanos resolution levels, seconds per downsampled point.
RESOLUTIONS = ("raw", "5m", "1h")
RESOLUTION_SECONDS = {"raw": 0.0, "5m": 300.0, "1h": 3600.0}


@dataclass
class BlockMeta:
    """Metadata of one uploaded/compacted block."""

    ulid: str
    min_time: float
    max_time: float
    resolution: str
    num_samples: int
    num_series: int
    #: Compaction level: 1 = fresh upload, grows when merged.
    level: int = 1
    source_ulids: tuple[str, ...] = ()


@dataclass
class ObjectStore:
    """Block ledger plus per-resolution sample stores."""

    raw_retention: float = 0.0  # 0 = keep forever
    five_m_retention: float = 0.0
    one_h_retention: float = 0.0
    #: When set, blocks are written/read as directories under this
    #: path and reloaded on construction.
    persist_dir: str = ""

    blocks: list[BlockMeta] = field(default_factory=list)
    _ulid_seq: itertools.count = field(default_factory=lambda: itertools.count(1), repr=False)

    def __post_init__(self) -> None:
        self.tsdbs: dict[str, TSDB] = {
            "raw": TSDB(name="thanos-raw"),
            "5m": TSDB(name="thanos-5m"),
            "1h": TSDB(name="thanos-1h"),
        }
        self.persisted_blocks = 0
        self.persisted_raw_bytes = 0
        self.persisted_encoded_bytes = 0
        self.loaded_blocks = 0
        self.loaded_raw_bytes = 0
        self.loaded_encoded_bytes = 0
        if self.persist_dir:
            self._load_persisted()

    # -- persistence ------------------------------------------------------
    def _load_persisted(self) -> None:
        """Rebuild ledger + per-resolution TSDBs from disk on open."""
        from repro.tsdb.persist.block import BlockReader, list_block_ulids

        max_seq = 0
        for ulid in list_block_ulids(self.persist_dir):
            reader = BlockReader(self.persist_dir, ulid)
            meta = reader.meta
            resolution = meta.get("resolution", "raw")
            if resolution not in RESOLUTIONS:
                raise StorageError(f"persisted block {ulid}: unknown resolution {resolution!r}")
            tsdb = self.tsdbs[resolution]
            for labels, ts, vs in reader.series():
                tsdb.append_array(labels, ts, vs)
            stats = meta.get("stats", {})
            compaction = meta.get("compaction", {})
            self.blocks.append(
                BlockMeta(
                    ulid=ulid,
                    min_time=meta["minTime"],
                    max_time=meta["maxTime"],
                    resolution=resolution,
                    num_samples=stats.get("numSamples", 0),
                    num_series=stats.get("numSeries", 0),
                    level=compaction.get("level", 1),
                    source_ulids=tuple(compaction.get("sources", ())),
                )
            )
            self.loaded_blocks += 1
            codec = meta.get("codec", {})
            self.loaded_raw_bytes += codec.get("rawBytes", 0)
            self.loaded_encoded_bytes += codec.get("encodedBytes", 0)
            if ulid.startswith("01BLOCK"):
                try:
                    max_seq = max(max_seq, int(ulid[len("01BLOCK"):]))
                except ValueError:
                    pass
        self._ulid_seq = itertools.count(max_seq + 1)

    def persist_block(
        self,
        ulid: str,
        series,
        *,
        min_time: float,
        max_time: float,
        resolution: str = "raw",
        level: int = 1,
        sources: tuple[str, ...] = (),
    ) -> dict | None:
        """Write one immutable block directory (no-op when in-memory).

        ``series`` is an iterable of ``(labels, ts_array, vs_array)``.
        Returns the written ``meta.json`` dict, or ``None`` when the
        store has no ``persist_dir``.
        """
        if not self.persist_dir:
            return None
        from repro.tsdb.persist.block import write_block

        meta = write_block(
            self.persist_dir,
            ulid,
            series,
            min_time=min_time,
            max_time=max_time,
            resolution=resolution,
            level=level,
            sources=sources,
        )
        self.persisted_blocks += 1
        self.persisted_raw_bytes += meta["codec"]["rawBytes"]
        self.persisted_encoded_bytes += meta["codec"]["encodedBytes"]
        return meta

    # -- block management ------------------------------------------------
    def new_ulid(self) -> str:
        return f"01BLOCK{next(self._ulid_seq):012d}"

    def add_block(self, meta: BlockMeta) -> None:
        if meta.resolution not in RESOLUTIONS:
            raise StorageError(f"unknown resolution {meta.resolution!r}")
        if meta.max_time < meta.min_time:
            raise StorageError("block max_time before min_time")
        self.blocks.append(meta)

    def blocks_at(self, resolution: str) -> list[BlockMeta]:
        return sorted(
            (b for b in self.blocks if b.resolution == resolution), key=lambda b: b.min_time
        )

    def drop_block(self, ulid: str) -> None:
        self.blocks = [b for b in self.blocks if b.ulid != ulid]
        if self.persist_dir:
            from repro.tsdb.persist.block import delete_block

            delete_block(self.persist_dir, ulid)

    # -- querying -----------------------------------------------------------
    def tsdb(self, resolution: str) -> TSDB:
        try:
            return self.tsdbs[resolution]
        except KeyError:
            raise StorageError(f"unknown resolution {resolution!r}") from None

    def select(self, matchers):
        """Batched-select contract (raw resolution), so a PromQL engine
        — per-step or columnar — can point at the store gateway
        directly; selection rides the raw TSDB's selector memo."""
        return self.tsdbs["raw"].select(matchers)

    def selector_cache_stats(self) -> dict[str, dict[str, float]]:
        """Per-resolution selector-memo counters (bench observability)."""
        return {
            resolution: tsdb.selector_cache_stats()
            for resolution, tsdb in self.tsdbs.items()
        }

    def pick_resolution(self, range_seconds: float) -> str:
        """Thanos auto-downsampling heuristic: keep point counts sane.

        Queries spanning more than ~2 days read the 5m resolution;
        more than ~2 weeks, the 1h resolution (when populated).
        """
        if range_seconds > 14 * 86400 and self.tsdbs["1h"].num_series:
            return "1h"
        if range_seconds > 2 * 86400 and self.tsdbs["5m"].num_series:
            return "5m"
        return "raw"

    # -- retention ------------------------------------------------------------
    def apply_retention(self, now: float) -> dict[str, int]:
        """Per-resolution retention (mirrors Thanos's compactor flags)."""
        dropped: dict[str, int] = {}
        for resolution, horizon in (
            ("raw", self.raw_retention),
            ("5m", self.five_m_retention),
            ("1h", self.one_h_retention),
        ):
            if horizon <= 0:
                continue
            tsdb = self.tsdbs[resolution]
            tsdb.retention = horizon
            samples, _series = tsdb.apply_retention(now)
            dropped[resolution] = samples
            cutoff = now - horizon
            for block in [b for b in self.blocks_at(resolution) if b.max_time < cutoff]:
                self.drop_block(block.ulid)
        return dropped

    # -- observability --------------------------------------------------------
    def compression_ratio(self) -> float:
        """Raw float64 bytes per encoded chunk byte, over every block on
        disk — both written this process and reloaded at open, so the
        gauge is meaningful immediately after a restart."""
        encoded = self.persisted_encoded_bytes + self.loaded_encoded_bytes
        if not encoded:
            return 0.0
        return (self.persisted_raw_bytes + self.loaded_raw_bytes) / encoded

    def register_metrics(self, registry) -> None:
        """Expose block-persistence counters on a component's registry."""
        registry.gauge_func(
            "ceems_thanos_blocks_persisted_total",
            lambda: float(self.persisted_blocks),
            help="Block directories written to the store's persist_dir.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_bytes_written_total",
            lambda: float(self.persisted_encoded_bytes),
            help="Encoded chunk bytes written into persisted blocks.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_raw_bytes_total",
            lambda: float(self.persisted_raw_bytes),
            help="Uncompressed (16 B/sample) bytes covered by persisted blocks.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_thanos_block_compression_ratio",
            self.compression_ratio,
            help="Raw bytes per encoded byte across persisted blocks.",
        )
        # Chunk-level alias under the tsdb namespace: dashboards track
        # codec efficiency next to the WAL/head families.
        registry.gauge_func(
            "ceems_tsdb_chunk_compression_ratio",
            self.compression_ratio,
            help="Gorilla chunk compression ratio (raw/encoded bytes).",
        )
        registry.gauge_func(
            "ceems_thanos_blocks_loaded_total",
            lambda: float(self.loaded_blocks),
            help="Persisted blocks reloaded when this store opened.",
            type="counter",
        )
