"""Fan-out querier merging hot-TSDB and object-store data.

Implements the ``select`` contract the PromQL engine expects, so one
engine instance can transparently answer over the full history: the
hot TSDB serves recent samples, the store serves older ones, and
overlap deduplicates in favour of the hot data (it is rawer).

:meth:`FanoutStorage.at_resolution` exposes the downsampled views for
long-range queries — the E8 bench evaluates the same PromQL over raw
and downsampled data to reproduce the latency cliff that motivates
the CEEMS API server.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tsdb.model import Labels, Matcher
from repro.tsdb.storage import Series, TSDB
from repro.thanos.store import ObjectStore


def merge_series(primary: Series | None, secondary: Series | None, labels: Labels) -> Series:
    """Merge two sample streams; primary wins on timestamp collisions."""
    if primary is None and secondary is None:
        return Series(labels=labels)
    if secondary is None:
        return primary  # type: ignore[return-value]
    if primary is None:
        return secondary
    p_ts = np.asarray(primary.timestamps)
    s_ts = np.asarray(secondary.timestamps)
    # Keep secondary samples not present (by timestamp) in primary.
    keep = ~np.isin(s_ts, p_ts)
    ts = np.concatenate([s_ts[keep], p_ts])
    vs = np.concatenate([np.asarray(secondary.values)[keep], np.asarray(primary.values)])
    order = np.argsort(ts, kind="stable")
    merged = Series(labels=labels)
    merged.timestamps = ts[order].tolist()
    merged.values = vs[order].tolist()
    return merged


class ResolutionView:
    """``select`` contract over one store resolution (lazy stores).

    A lazy store's downsampled data lives in chunked blocks, not the
    resolution TSDB, so pointing an engine at ``store.tsdb("5m")``
    would miss it; this view routes through
    :meth:`ObjectStore.select_at`, which merges both.
    """

    def __init__(self, store: ObjectStore, resolution: str) -> None:
        self.store = store
        self.resolution = resolution
        self.name = f"thanos-{resolution}-view"
        self.telemetry = None

    def select(self, matchers: Sequence[Matcher]):
        return self.store.select_at(self.resolution, matchers)

    def label_values(self, name: str) -> list[str]:
        return self.store.label_values_at(self.resolution, name)

    @property
    def num_series(self) -> int:
        return self.store.num_series_at(self.resolution)


class FanoutStorage:
    """Hot + store querier with dedup.

    Merged selector results are memoised keyed by the matcher tuple.
    Unlike the in-TSDB memo (which survives appends because ``Series``
    mutate in place), a merged view is frozen at merge time, so the
    memo entry is validated against the data epochs of both backends
    (plus the store's chunk-index generation) and rebuilt whenever
    either side mutated.  A dashboard burst or a columnar range query
    touching the same selectors between scrapes pays the merge once.

    Overlapping series merge lazily: the memo holds
    :class:`~repro.tsdb.persist.chunkio.MergedSeries` overlays (hot
    wins duplicate timestamps) and queries read them window-pruned, so
    a chunk-backed store side decodes only what a query touches.
    """

    #: Upper bound on memoised fan-out selections before wholesale reset.
    SELECT_CACHE_MAX = 128

    def __init__(self, hot: TSDB, store: ObjectStore) -> None:
        self.hot = hot
        self.store = store
        self._select_cache: dict[tuple[Matcher, ...], tuple[tuple, list]] = {}
        self.select_cache_hits = 0
        self.select_cache_misses = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry` sink; when
        #: set, selects inside an active trace record child spans.
        self.telemetry = None

    # Status endpoints (runtimeinfo) introspect whatever storage the
    # PromAPI wraps; for a fanout the hot head is the authoritative
    # side for live-series accounting and retention policy.
    @property
    def num_series(self) -> int:
        return self.hot.num_series

    @property
    def retention(self) -> float:
        return self.hot.retention

    def _epochs(self) -> tuple:
        store_version = getattr(self.store, "version", None)
        if store_version is not None:
            raw_version = store_version("raw")
        else:
            raw = self.store.tsdb("raw")
            raw_version = (raw.series_epoch, raw.data_epoch)
        return (self.hot.series_epoch, self.hot.data_epoch) + tuple(raw_version)

    def select(self, matchers: Sequence[Matcher]) -> list[Series]:
        if self.telemetry is not None:
            with self.telemetry.child_span("fanout.select") as span:
                result = self._select(matchers)
                if span is not None:
                    span.attrs["series"] = len(result)
                return result
        return self._select(matchers)

    def _select(self, matchers: Sequence[Matcher]) -> list[Series]:
        key = tuple(matchers)
        epochs = self._epochs()
        cached = self._select_cache.get(key)
        if cached is not None and cached[0] == epochs:
            self.select_cache_hits += 1
            return cached[1]
        self.select_cache_misses += 1
        from repro.tsdb.persist.chunkio import MergedSeries

        hot_series = {s.labels: s for s in self.hot.select(matchers)}
        store_series = {s.labels: s for s in self.store.select_at("raw", matchers)}
        keys = sorted(set(hot_series) | set(store_series), key=tuple)
        result = []
        for k in keys:
            primary = hot_series.get(k)
            secondary = store_series.get(k)
            if secondary is None:
                result.append(primary)
            elif primary is None:
                result.append(secondary)
            else:
                result.append(MergedSeries(primary, secondary, k))
        if len(self._select_cache) >= self.SELECT_CACHE_MAX:
            self._select_cache.clear()
        self._select_cache[key] = (epochs, result)
        return result

    def selector_cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the fan-out selector memo."""
        total = self.select_cache_hits + self.select_cache_misses
        return {
            "hits": float(self.select_cache_hits),
            "misses": float(self.select_cache_misses),
            "hit_rate": self.select_cache_hits / total if total else 0.0,
        }

    def at_resolution(self, resolution: str):
        """Direct view of one downsampled resolution.

        Eager stores expose the resolution TSDB itself; lazy stores
        get a :class:`ResolutionView` so chunked block data is seen.
        """
        if getattr(self.store, "lazy_blocks", False):
            return ResolutionView(self.store, resolution)
        return self.store.tsdb(resolution)

    def label_values(self, name: str) -> list[str]:
        values = set(self.hot.label_values(name)) | set(
            self.store.label_values_at("raw", name)
            if hasattr(self.store, "label_values_at")
            else self.store.tsdb("raw").label_values(name)
        )
        return sorted(values)
