"""Fan-out querier merging hot-TSDB and object-store data.

Implements the ``select`` contract the PromQL engine expects, so one
engine instance can transparently answer over the full history: the
hot TSDB serves recent samples, the store serves older ones, and
overlap deduplicates in favour of the hot data (it is rawer).

:meth:`FanoutStorage.at_resolution` exposes the downsampled views for
long-range queries — the E8 bench evaluates the same PromQL over raw
and downsampled data to reproduce the latency cliff that motivates
the CEEMS API server.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tsdb.model import Labels, Matcher
from repro.tsdb.storage import Series, TSDB
from repro.thanos.store import ObjectStore


def merge_series(primary: Series | None, secondary: Series | None, labels: Labels) -> Series:
    """Merge two sample streams; primary wins on timestamp collisions."""
    if primary is None and secondary is None:
        return Series(labels=labels)
    if secondary is None:
        return primary  # type: ignore[return-value]
    if primary is None:
        return secondary
    p_ts = np.asarray(primary.timestamps)
    s_ts = np.asarray(secondary.timestamps)
    # Keep secondary samples not present (by timestamp) in primary.
    keep = ~np.isin(s_ts, p_ts)
    ts = np.concatenate([s_ts[keep], p_ts])
    vs = np.concatenate([np.asarray(secondary.values)[keep], np.asarray(primary.values)])
    order = np.argsort(ts, kind="stable")
    merged = Series(labels=labels)
    merged.timestamps = ts[order].tolist()
    merged.values = vs[order].tolist()
    return merged


class FanoutStorage:
    """Hot + store querier with dedup.

    Merged selector results are memoised keyed by the matcher tuple.
    Unlike the in-TSDB memo (which survives appends because ``Series``
    mutate in place), a merged series is a *copy* frozen at merge time,
    so the memo entry is validated against the data epochs of both
    backends and rebuilt whenever either side mutated.  A dashboard
    burst or a columnar range query touching the same selectors between
    scrapes pays the merge once.
    """

    #: Upper bound on memoised fan-out selections before wholesale reset.
    SELECT_CACHE_MAX = 128

    def __init__(self, hot: TSDB, store: ObjectStore) -> None:
        self.hot = hot
        self.store = store
        self._select_cache: dict[
            tuple[Matcher, ...], tuple[tuple[int, int, int, int], list[Series]]
        ] = {}
        self.select_cache_hits = 0
        self.select_cache_misses = 0
        #: Optional :class:`repro.obs.telemetry.Telemetry` sink; when
        #: set, selects inside an active trace record child spans.
        self.telemetry = None

    def _epochs(self) -> tuple[int, int, int, int]:
        raw = self.store.tsdb("raw")
        return (
            self.hot.series_epoch,
            self.hot.data_epoch,
            raw.series_epoch,
            raw.data_epoch,
        )

    def select(self, matchers: Sequence[Matcher]) -> list[Series]:
        if self.telemetry is not None:
            with self.telemetry.child_span("fanout.select") as span:
                result = self._select(matchers)
                if span is not None:
                    span.attrs["series"] = len(result)
                return result
        return self._select(matchers)

    def _select(self, matchers: Sequence[Matcher]) -> list[Series]:
        key = tuple(matchers)
        epochs = self._epochs()
        cached = self._select_cache.get(key)
        if cached is not None and cached[0] == epochs:
            self.select_cache_hits += 1
            return cached[1]
        self.select_cache_misses += 1
        hot_series = {s.labels: s for s in self.hot.select(matchers)}
        store_series = {s.labels: s for s in self.store.tsdb("raw").select(matchers)}
        keys = sorted(set(hot_series) | set(store_series), key=tuple)
        result = [merge_series(hot_series.get(k), store_series.get(k), k) for k in keys]
        if len(self._select_cache) >= self.SELECT_CACHE_MAX:
            self._select_cache.clear()
        self._select_cache[key] = (epochs, result)
        return result

    def selector_cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the fan-out selector memo."""
        total = self.select_cache_hits + self.select_cache_misses
        return {
            "hits": float(self.select_cache_hits),
            "misses": float(self.select_cache_misses),
            "hit_rate": self.select_cache_hits / total if total else 0.0,
        }

    def at_resolution(self, resolution: str) -> TSDB:
        """Direct view of one downsampled resolution."""
        return self.store.tsdb(resolution)

    def label_values(self, name: str) -> list[str]:
        values = set(self.hot.label_values(name)) | set(self.store.tsdb("raw").label_values(name))
        return sorted(values)
