"""Thanos-style long-term storage.

Paper Fig. 1: the hot Prometheus *"will replicate the data to Thanos,
which provides long-term storage capabilities"*.  This package
reproduces the pieces of Thanos the stack exercises:

* :class:`~repro.thanos.sidecar.Sidecar` — ships completed 2-hour
  blocks from the hot TSDB into the object store;
* :class:`~repro.thanos.store.ObjectStore` — block storage holding
  raw and downsampled data with per-resolution retention;
* :class:`~repro.thanos.compact.Compactor` — merges blocks and
  produces the 5-minute and 1-hour downsampled resolutions that make
  year-long queries tractable (the substrate of bench E8);
* :class:`~repro.thanos.query.FanoutStorage` — a querier that merges
  hot-TSDB and store data behind the same ``select`` interface the
  PromQL engine uses, with automatic resolution selection for long
  ranges.
"""

from repro.thanos.compact import Compactor
from repro.thanos.query import FanoutStorage
from repro.thanos.sidecar import Sidecar
from repro.thanos.store import ObjectStore

__all__ = ["Sidecar", "ObjectStore", "Compactor", "FanoutStorage"]
