"""Thanos sidecar: ships the hot TSDB's completed blocks to the store.

Prometheus cuts a block every 2 hours; the sidecar uploads each
completed block to object storage.  Here the sidecar tracks a
watermark and, on every :meth:`upload` pass, copies all hot samples
in completed 2-hour windows beyond the watermark into the store's raw
resolution, registering one :class:`~repro.thanos.store.BlockMeta`
per window.  Windows are half-open ``[lo, hi)``, the Prometheus block
convention, and each series' window slice is ingested with
:meth:`~repro.tsdb.storage.TSDB.append_array` — one slice extension
per series, not one Python call per sample.

When the store has a ``persist_dir``, each uploaded window is also
written as a real on-disk block (Gorilla chunks + index + meta.json)
via :meth:`ObjectStore.persist_block`, and a persistent hot head is
checkpointed afterwards so its WAL drops everything now durable in
blocks.

The hot TSDB keeps its own (short) retention; together they give the
paper's architecture: recent data answered locally, history answered
by Thanos.
"""

from __future__ import annotations

import math

from repro.obs import prof
from repro.thanos.store import BlockMeta, ObjectStore
from repro.tsdb.storage import TSDB

BLOCK_SECONDS = 2 * 3600.0


class Sidecar:
    """Replicates one hot TSDB into one object store."""

    def __init__(self, hot: TSDB, store: ObjectStore, *, block_seconds: float = BLOCK_SECONDS) -> None:
        self.hot = hot
        self.store = store
        self.block_seconds = block_seconds
        self._watermark: float | None = None
        self.blocks_uploaded = 0
        self.samples_uploaded = 0

    def upload(self, now: float) -> int:
        """Upload every completed block window; returns blocks shipped."""
        if self.hot.min_time is None:
            return 0
        if self._watermark is None:
            self._watermark = math.floor(self.hot.min_time / self.block_seconds) * self.block_seconds
            already_shipped = self.store.blocks_at("raw")
            if already_shipped:
                # A reopened store already holds blocks: resume after
                # them instead of re-uploading recovered windows.
                self._watermark = max(
                    self._watermark, max(b.max_time for b in already_shipped)
                )
        uploaded = 0
        raw = self.store.tsdb("raw")
        # Lazy stores serve uploaded windows straight from the block's
        # chunk files (add_block registers them); copying the samples
        # into the raw TSDB as well would keep the whole history
        # decoded in memory.
        lazy = getattr(self.store, "lazy_blocks", False)
        while self._watermark + self.block_seconds <= now:
            lo = self._watermark
            hi = lo + self.block_seconds
            window_series = []
            samples = 0
            for series in self.hot.all_series():
                ts, vs = series.window_half_open(lo, hi)
                if len(ts) == 0:
                    continue
                window_series.append((series.labels, ts, vs))
                samples += len(ts)
            if samples:
                with prof.profile("sidecar.block_cut"):
                    if not lazy:
                        for labels, ts, vs in window_series:
                            raw.append_array(labels, ts, vs)
                    ulid = self.store.new_ulid()
                    self.store.persist_block(
                        ulid, window_series, min_time=lo, max_time=hi, resolution="raw"
                    )
                    self.store.add_block(
                        BlockMeta(
                            ulid=ulid,
                            min_time=lo,
                            max_time=hi,
                            resolution="raw",
                            num_samples=samples,
                            num_series=len(window_series),
                        )
                    )
                self.blocks_uploaded += 1
                self.samples_uploaded += samples
                uploaded += 1
            self._watermark = hi
        if uploaded and hasattr(self.hot, "checkpoint"):
            # Everything below the watermark is durable in blocks now;
            # the persistent head can truncate its WAL.
            self.hot.checkpoint(self._watermark)
        return uploaded

    def register_timer(self, clock, interval: float = 3600.0) -> None:
        clock.every(interval, lambda now: self.upload(now))
