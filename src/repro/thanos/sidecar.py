"""Thanos sidecar: ships the hot TSDB's completed blocks to the store.

Prometheus cuts a block every 2 hours; the sidecar uploads each
completed block to object storage.  Here the sidecar tracks a
watermark and, on every :meth:`upload` pass, copies all hot samples in
completed 2-hour windows beyond the watermark into the store's raw
resolution, registering one :class:`~repro.thanos.store.BlockMeta`
per window.

The hot TSDB keeps its own (short) retention; together they give the
paper's architecture: recent data answered locally, history answered
by Thanos.
"""

from __future__ import annotations

import math

from repro.thanos.store import BlockMeta, ObjectStore
from repro.tsdb.storage import TSDB

BLOCK_SECONDS = 2 * 3600.0


class Sidecar:
    """Replicates one hot TSDB into one object store."""

    def __init__(self, hot: TSDB, store: ObjectStore, *, block_seconds: float = BLOCK_SECONDS) -> None:
        self.hot = hot
        self.store = store
        self.block_seconds = block_seconds
        self._watermark: float | None = None
        self.blocks_uploaded = 0
        self.samples_uploaded = 0

    def upload(self, now: float) -> int:
        """Upload every completed block window; returns blocks shipped."""
        if self.hot.min_time is None:
            return 0
        if self._watermark is None:
            self._watermark = math.floor(self.hot.min_time / self.block_seconds) * self.block_seconds
        uploaded = 0
        raw = self.store.tsdb("raw")
        while self._watermark + self.block_seconds <= now:
            lo = self._watermark
            hi = lo + self.block_seconds
            samples = 0
            series_count = 0
            for series in self.hot.all_series():
                ts, vs = series.window(lo, hi - 1e-9)
                if len(ts) == 0:
                    continue
                series_count += 1
                for t, v in zip(ts.tolist(), vs.tolist()):
                    raw.append(series.labels, t, v)
                    samples += 1
            if samples:
                self.store.add_block(
                    BlockMeta(
                        ulid=self.store.new_ulid(),
                        min_time=lo,
                        max_time=hi,
                        resolution="raw",
                        num_samples=samples,
                        num_series=series_count,
                    )
                )
                self.blocks_uploaded += 1
                self.samples_uploaded += samples
                uploaded += 1
            self._watermark = hi
        return uploaded

    def register_timer(self, clock, interval: float = 3600.0) -> None:
        clock.every(interval, lambda now: self.upload(now))
