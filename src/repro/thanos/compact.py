"""Thanos compactor: block merging and downsampling.

Two jobs, as in real Thanos:

* **horizontal compaction**: adjacent small raw blocks merge into
  larger ones (2h → 8h → 2d), keeping the block ledger shallow;
* **downsampling**: raw data older than ``downsample_after`` is
  aggregated into 5-minute points, and 5m data older than a larger
  horizon into 1-hour points.  Each downsampled point is the *mean*
  of its bucket plus recorded min/max series (``<name>:min`` /
  ``<name>:max``) so peak-style dashboards stay honest.

Downsampling is what turns the E8 year-long aggregate query from
millions of raw points into thousands — reproducing the systems
argument for the API server (it is still orders slower than the API
server's precomputed rollups).
"""

from __future__ import annotations

import numpy as np

from repro.obs import prof
from repro.thanos.store import BlockMeta, ObjectStore


def _downsample_series(ts: np.ndarray, vs: np.ndarray, bucket: float) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bucket-average a series; returns (bucket_ts, mean, min, max)."""
    if len(ts) == 0:
        return np.array([]), np.array([]), np.array([]), np.array([])
    buckets = np.floor(ts / bucket).astype(np.int64)
    # group contiguous equal bucket ids (ts sorted)
    change = np.concatenate(([True], buckets[1:] != buckets[:-1]))
    starts = np.flatnonzero(change)
    ends = np.concatenate((starts[1:], [len(ts)]))
    out_ts = (buckets[starts] + 1) * bucket  # right edge = sample time
    means = np.array([vs[s:e].mean() for s, e in zip(starts, ends)])
    mins = np.array([vs[s:e].min() for s, e in zip(starts, ends)])
    maxs = np.array([vs[s:e].max() for s, e in zip(starts, ends)])
    return out_ts, means, mins, maxs


class Compactor:
    """Background compaction over one object store."""

    def __init__(
        self,
        store: ObjectStore,
        *,
        downsample_5m_after: float = 2 * 86400.0,
        downsample_1h_after: float = 14 * 86400.0,
        compaction_levels: tuple[float, ...] = (8 * 3600.0, 2 * 86400.0),
    ) -> None:
        self.store = store
        self.downsample_5m_after = downsample_5m_after
        self.downsample_1h_after = downsample_1h_after
        self.compaction_levels = compaction_levels
        self._downsampled_until = {"5m": None, "1h": None}
        # A store reopened from disk already holds downsampled blocks;
        # resume after them instead of re-producing (and re-persisting)
        # the same buckets.
        for key in ("5m", "1h"):
            persisted = store.blocks_at(key)
            if persisted:
                self._downsampled_until[key] = max(b.max_time for b in persisted)
        self.compactions = 0
        self.downsample_passes = 0

    # -- horizontal compaction ---------------------------------------------
    def compact_blocks(self) -> int:
        """Merge adjacent raw blocks into the next level's window size.

        Sample data lives in the shared per-resolution TSDB, so the
        in-memory merge only rewrites the ledger — exactly the
        cheap-metadata / immutable-chunks split of the real design.
        On a persisted store the merged window is additionally
        *rewritten* as one new block directory (written before the
        sources are deleted, so a crash mid-compaction duplicates
        rather than loses data).
        """
        with prof.profile("compactor.compact"):
            return self._compact_blocks()

    def _compact_blocks(self) -> int:
        merged_total = 0
        for level, window in enumerate(self.compaction_levels, start=2):
            blocks = [b for b in self.store.blocks_at("raw") if b.level == level - 1]
            groups: dict[int, list[BlockMeta]] = {}
            for block in blocks:
                groups.setdefault(int(block.min_time // window), []).append(block)
            for slot, members in groups.items():
                span = sum(b.max_time - b.min_time for b in members)
                if span < window:  # window not complete yet
                    continue
                min_time = min(b.min_time for b in members)
                max_time = max(b.max_time for b in members)
                sources = tuple(b.ulid for b in members)
                ulid = self.store.new_ulid()
                self.store.persist_block(
                    ulid,
                    self.store.window_series("raw", min_time, max_time),
                    min_time=min_time,
                    max_time=max_time,
                    resolution="raw",
                    level=level,
                    sources=sources,
                )
                for member in members:
                    self.store.drop_block(member.ulid)
                self.store.add_block(
                    BlockMeta(
                        ulid=ulid,
                        min_time=min_time,
                        max_time=max_time,
                        resolution="raw",
                        num_samples=sum(b.num_samples for b in members),
                        num_series=max(b.num_series for b in members),
                        level=level,
                        source_ulids=sources,
                    )
                )
                merged_total += len(members)
                self.compactions += 1
        return merged_total

    # -- downsampling -------------------------------------------------------------
    def downsample(self, now: float) -> dict[str, int]:
        """Produce 5m and 1h resolutions for data old enough."""
        with prof.profile("compactor.downsample"):
            return self._downsample(now)

    def _downsample(self, now: float) -> dict[str, int]:
        produced = {"5m": 0, "1h": 0}
        produced["5m"] = self._downsample_into(
            src="raw",
            bucket=300.0,
            until=now - self.downsample_5m_after,
            key="5m",
        )
        produced["1h"] = self._downsample_into(
            src="5m",
            bucket=3600.0,
            until=now - self.downsample_1h_after,
            key="1h",
        )
        self.downsample_passes += 1
        return produced

    def _downsample_into(self, src: str, bucket: float, until: float, key: str) -> int:
        start = self._downsampled_until[key]
        # Only whole buckets: stop at the last complete bucket edge.
        until = np.floor(until / bucket) * bucket
        if until <= (start or -np.inf):
            return 0
        dst = self.store.tsdb(key)
        # Lazy stores serve downsampled output from the block it is
        # persisted into (add_block registers the chunks); appending
        # it to the dst TSDB as well would hold every decoded sample
        # in memory forever — exactly what lazy mode exists to avoid.
        lazy = getattr(self.store, "lazy_blocks", False)
        produced = 0
        persist_series: list = []
        lo_global = start if start is not None else -np.inf
        for labels, ts, vs in self.store.window_series(src, lo_global, until):
            # Staleness markers do not survive downsampling (they mark
            # raw-resolution disappearance; downsampled buckets are
            # sparse anyway).
            keep = ~np.isnan(vs)
            ts, vs = ts[keep], vs[keep]
            if len(ts) == 0:
                continue
            # Downsampling data that is already sparser than the bucket
            # produces 3 output series per input point for zero
            # compression — skip such series (coarse scrape configs).
            if len(ts) > 1 and float(np.median(np.diff(ts))) > bucket:
                continue
            base = labels.metric_name
            # Do not re-downsample the min/max helper series.
            if base.endswith((":min", ":max")):
                continue
            b_ts, means, mins, maxs = _downsample_series(ts, vs, bucket)
            min_labels = labels.with_name(base + ":min")
            max_labels = labels.with_name(base + ":max")
            if not lazy:
                for i in range(len(b_ts)):
                    dst.append(labels, float(b_ts[i]), float(means[i]))
                    dst.append(min_labels, float(b_ts[i]), float(mins[i]))
                    dst.append(max_labels, float(b_ts[i]), float(maxs[i]))
            produced += 3 * len(b_ts)
            if self.store.persist_dir:
                persist_series.append((labels, b_ts, means))
                persist_series.append((min_labels, b_ts, mins))
                persist_series.append((max_labels, b_ts, maxs))
        if persist_series and produced:
            # Downsampled output becomes its own on-disk block (and a
            # ledger entry), so a reopened store serves 5m/1h data
            # without re-downsampling.  In-memory stores skip this to
            # keep the seed ledger semantics (raw blocks only).
            min_time = min(float(ts[0]) for _labels, ts, _vs in persist_series)
            ulid = self.store.new_ulid()
            self.store.persist_block(
                ulid,
                persist_series,
                min_time=min_time,
                max_time=until,
                resolution=key,
            )
            self.store.add_block(
                BlockMeta(
                    ulid=ulid,
                    min_time=min_time,
                    max_time=until,
                    resolution=key,
                    num_samples=produced,
                    num_series=len(persist_series),
                )
            )
        self._downsampled_until[key] = until
        return produced

    def run(self, now: float) -> None:
        self.compact_blocks()
        self.downsample(now)
        self.store.apply_retention(now)

    def register_timer(self, clock, interval: float = 6 * 3600.0) -> None:
        clock.every(interval, self.run)
