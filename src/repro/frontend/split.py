"""Range splitting: partition a ``query_range`` step grid by time.

The Thanos/Cortex query-frontend trick: a long range query is split
into interval-aligned sub-ranges that are evaluated independently and
merged.  Because PromQL range evaluation is per-step — the value at
step ``t`` depends only on data at times ``<= t`` — evaluating the
same expression over any partition of the step grid reproduces the
full-range result exactly, *provided every sub-query evaluates the
very same step timestamps*.

That proviso is the subtle part in floating point: the engine
enumerates steps as ``start + i * step`` (see
:func:`repro.tsdb.promql.engine.range_steps`), and
``(start + k*step) + i*step`` is not always bit-equal to
``start + (k+i)*step``.  :func:`split_parts` therefore verifies each
candidate sub-grid against the global grid and reports failure
(``None``) instead of returning a split that would drift — the
frontend then falls back to the unsplit path, trading speed for the
bit-identity contract.  Dashboard traffic (integer timestamps and
steps) always splits cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.tsdb.promql.engine import range_steps

#: Default split interval: one day, the Cortex/Thanos default.
DEFAULT_SPLIT_INTERVAL = 86400.0


def grid_parts(
    steps: np.ndarray, step: float, interval: float
) -> list[tuple[int, int]] | None:
    """Partition grid indices into interval-aligned contiguous runs.

    Returns ``[(i0, i1), ...]`` index ranges (inclusive) such that all
    timestamps of one run fall into the same ``floor(t / interval)``
    bucket — i.e. sub-ranges never straddle a day boundary for the
    default interval.  Returns ``None`` when any sub-grid re-derived
    from its own start would not be bit-identical to the global grid
    (the caller must not split then).
    """
    if len(steps) == 0:
        return []
    if interval <= 0:
        buckets = np.zeros(len(steps))
    else:
        buckets = np.floor(np.asarray(steps) / interval)
    parts: list[tuple[int, int]] = []
    i0 = 0
    for i in range(1, len(steps)):
        if buckets[i] != buckets[i0]:
            parts.append((i0, i - 1))
            i0 = i
    parts.append((i0, len(steps) - 1))
    for i0, i1 in parts:
        sub = range_steps(float(steps[i0]), float(steps[i1]), step)
        if len(sub) != i1 - i0 + 1 or not np.array_equal(sub, steps[i0 : i1 + 1]):
            return None
    return parts


def clamp_runs_to_parts(
    runs: list[tuple[int, int]], parts: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Intersect uncovered index runs with split parts.

    The remainder of a partially cached request is a set of contiguous
    uncovered index runs; each run is further cut at split-interval
    boundaries so one sub-query never exceeds the split interval.
    """
    out: list[tuple[int, int]] = []
    for r0, r1 in runs:
        for p0, p1 in parts:
            lo, hi = max(r0, p0), min(r1, p1)
            if lo <= hi:
                out.append((lo, hi))
    return out


def uncovered_runs(
    steps: np.ndarray, covered: set[float]
) -> list[tuple[int, int]]:
    """Maximal contiguous index runs of grid points not in ``covered``.

    Membership is exact float equality: a cached point that drifted
    by one ulp from this request's grid is treated as uncovered and
    re-evaluated — never served at the wrong timestamp.
    """
    runs: list[tuple[int, int]] = []
    start_idx: int | None = None
    for i, t in enumerate(steps.tolist()):
        if t in covered:
            if start_idx is not None:
                runs.append((start_idx, i - 1))
                start_idx = None
        elif start_idx is None:
            start_idx = i
    if start_idx is not None:
        runs.append((start_idx, len(steps) - 1))
    return runs
