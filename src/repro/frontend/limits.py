"""Admission-side query guardrails (SNIPPETS.md snippet 3 style).

Production Prometheus clients bound three things before a query ever
reaches an evaluator: the query string length, the requested range
duration, and the number of resolved steps (``(end-start)/step``).
Oversized requests fail fast with a *structured* 422 so dashboards
and API clients can show which limit was hit and by how much, instead
of a generic error string.

The same :class:`QueryLimits` object is enforced at the query
frontend and at the direct PromAPI path — the limit must hold no
matter which door a query comes through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.httpx import Response

#: Conservative default on the query text itself; ranges and step
#: counts default to unlimited (deployments opt in via CLI flags).
DEFAULT_MAX_QUERY_LENGTH = 8192


def limit_error(limit: str, actual: float, maximum: float, message: str) -> Response:
    """A structured 422: machine-readable limit name, actual and max."""
    return Response.json(
        {
            "status": "error",
            "errorType": "bad_data",
            "error": message,
            "limit": limit,
            "actual": actual,
            "max": maximum,
        },
        status=422,
    )


@dataclass(frozen=True)
class QueryLimits:
    """Bounds enforced before evaluation; ``0`` disables a bound."""

    max_query_length: int = DEFAULT_MAX_QUERY_LENGTH
    max_range_seconds: float = 0.0
    max_resolved_steps: int = 0

    def check_query(self, query: str) -> Response | None:
        """Length limit (applies to instant and range queries)."""
        if self.max_query_length > 0 and len(query) > self.max_query_length:
            return limit_error(
                "max_query_length",
                len(query),
                self.max_query_length,
                f"query of {len(query)} chars exceeds the "
                f"{self.max_query_length}-char limit",
            )
        return None

    def check_range(self, start: float, end: float, step: float) -> Response | None:
        """Range-duration and resolved-step limits for ``query_range``."""
        duration = end - start
        if self.max_range_seconds > 0 and duration > self.max_range_seconds:
            return limit_error(
                "max_range_seconds",
                duration,
                self.max_range_seconds,
                f"range of {duration:.0f}s exceeds the "
                f"{self.max_range_seconds:.0f}s limit",
            )
        if self.max_resolved_steps > 0 and step > 0 and end >= start:
            steps = int(math.floor(duration / step + 1e-9)) + 1
            if steps > self.max_resolved_steps:
                return limit_error(
                    "max_resolved_steps",
                    steps,
                    self.max_resolved_steps,
                    f"query resolves to {steps} steps, over the "
                    f"{self.max_resolved_steps}-step limit "
                    "(increase the step or narrow the range)",
                )
        return None
