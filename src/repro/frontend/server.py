"""The query frontend: split, cache, coalesce, admit.

Sits between the LB and the PromQL backends (the Thanos/Cortex
query-frontend position in the serving path):

* **range splitting** — long ``query_range`` requests are cut into
  split-interval-aligned (day by default) sub-ranges evaluated
  independently against the backend pool and merged;
* **step-aligned results cache** — evaluated matrix chunks are cached
  per ``(tenant, query, step, grid phase, strategy)`` and later
  requests only evaluate the uncovered remainder (the live tail stays
  uncacheable, see :mod:`repro.frontend.cache`);
* **request coalescing** — concurrent in-flight requests with the
  same fingerprint share one evaluation through a single-flight map;
* **bounded worker pool with per-tenant admission** — a fixed number
  of requests evaluate at once; excess requests queue briefly and are
  rejected with ``503`` + ``Retry-After`` on overflow, per tenant and
  globally (the PR-4 active-query tracker's backpressure, moved to
  the serving edge).

The contract throughout is *bit-identity*: any response produced by
the frontend — split, partially cached, fully cached, or error — must
be byte-for-byte the response the direct backend path would have
produced for the same request.  Requests the frontend cannot prove it
can reproduce exactly (``stats=all``, non-step-exact grids, malformed
parameters) are forwarded verbatim instead.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.common.errors import CEEMSError
from repro.common.httpx import App, Request, Response
from repro.frontend.cache import DEFAULT_FRESHNESS, ResponseMemo, ResultsCache
from repro.frontend.limits import QueryLimits
from repro.frontend.split import (
    DEFAULT_SPLIT_INTERVAL,
    clamp_runs_to_parts,
    grid_parts,
    uncovered_runs,
)
from repro.lb.strategies import Backend, Strategy, make_strategy
from repro.tsdb.promql.engine import range_steps

USER_HEADER = "x-grafana-user"

#: Paths that go through admission + coalescing (+ cache for ranges).
_QUERY_PATHS = ("/api/v1/query", "/api/v1/query_range")

#: Every parameter that distinguishes one evaluation from another —
#: extracted once per request, also the request-fingerprint payload.
_PARAM_NAMES = ("query", "time", "start", "end", "step", "strategy", "stats")


class AdmissionRejected(CEEMSError):
    """Worker pool (global or per-tenant) stayed full past the queue
    timeout — the request must be rejected with 503 + Retry-After."""


class AdmissionGate:
    """Bounded worker slots with per-tenant fairness and a queue.

    ``max_inflight`` requests evaluate concurrently; a tenant may hold
    at most ``max_per_tenant`` of them (0 disables the per-tenant
    bound).  Excess requests wait up to ``queue_timeout`` seconds for
    a slot, then fail — the closed-loop client is told when to come
    back via ``Retry-After``.
    """

    def __init__(
        self,
        max_inflight: int = 16,
        *,
        max_per_tenant: int = 0,
        queue_timeout: float = 5.0,
        retry_after: float = 1.0,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self.max_per_tenant = max_per_tenant
        self.queue_timeout = queue_timeout
        self.retry_after = retry_after
        self._cond = threading.Condition()
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}
        self.waiting = 0
        self.rejected = 0

    def _tenant_full(self, tenant: str) -> bool:
        return (
            self.max_per_tenant > 0
            and self._per_tenant.get(tenant, 0) >= self.max_per_tenant
        )

    def acquire(self, tenant: str) -> None:
        """Take a worker slot, queueing up to ``queue_timeout``.

        Raises :class:`AdmissionRejected` if no slot frees up in time.
        """
        deadline = time.perf_counter() + self.queue_timeout
        with self._cond:
            while self._inflight >= self.max_inflight or self._tenant_full(tenant):
                remaining = deadline - time.perf_counter()
                self.waiting += 1
                try:
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        self.rejected += 1
                        scope = (
                            f"tenant {tenant!r}" if self._tenant_full(tenant) else "pool"
                        )
                        raise AdmissionRejected(
                            f"query frontend {scope} full: "
                            f"{self._inflight}/{self.max_inflight} workers busy "
                            f"for {self.queue_timeout:.1f}s"
                        )
                finally:
                    self.waiting -= 1
            self._inflight += 1
            self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        with self._cond:
            self._inflight -= 1
            left = self._per_tenant.get(tenant, 1) - 1
            if left <= 0:
                self._per_tenant.pop(tenant, None)
            else:
                self._per_tenant[tenant] = left
            if self.waiting:
                self._cond.notify_all()

    @contextmanager
    def admit(self, tenant: str) -> Iterator[None]:
        self.acquire(tenant)
        try:
            yield
        finally:
            self.release(tenant)


class _Flight:
    """One in-flight evaluation other identical requests wait on.

    The event is allocated lazily by the first follower — a request
    nobody coalesces with (the overwhelmingly common case) pays only
    a dict insert/remove.
    """

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event: threading.Event | None = None
        self.response: Response | None = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-fingerprint request coalescing (``singleflight`` pattern)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[tuple, _Flight] = {}
        self.coalesced = 0

    def do(self, key: tuple, fn) -> Response:
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
            elif flight.event is None:
                flight.event = threading.Event()
        if not leader:
            flight.event.wait()
            with self._lock:
                self.coalesced += 1
            if flight.error is not None:
                raise flight.error
            response = flight.response
            # Followers get their own copy: headers are mutated
            # downstream (trace ids, LB backend tag) per caller.
            return Response(
                status=response.status,
                headers=dict(response.headers),
                body=response.body,
            )
        try:
            flight.response = fn()
        except BaseException as exc:  # re-raised in every waiter too
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
                event = flight.event
            if event is not None:
                event.set()
        return flight.response


class QueryFrontend:
    """Query-frontend HTTP app over a pool of PromQL backends."""

    def __init__(
        self,
        backends: list[Backend],
        *,
        name: str = "query-frontend",
        strategy: str = "round-robin",
        split_interval: float = DEFAULT_SPLIT_INTERVAL,
        cache_max_bytes: int = 64 * 1024 * 1024,
        memo_max_bytes: int = 16 * 1024 * 1024,
        freshness_seconds: float = DEFAULT_FRESHNESS,
        clock=None,
        limits: QueryLimits | None = None,
        max_inflight: int = 16,
        max_per_tenant: int = 0,
        queue_timeout: float = 5.0,
        retry_after: float = 1.0,
    ) -> None:
        self.strategy: Strategy = make_strategy(strategy, backends)
        self.split_interval = split_interval
        self.cache = ResultsCache(max_bytes=cache_max_bytes)
        #: Full-response replay for repeats whose whole grid is
        #: settled history (immutable, so never invalidated).
        self.memo = ResponseMemo(max_bytes=memo_max_bytes)
        self.freshness_seconds = freshness_seconds
        #: ``clock.now()`` defines "now" for the uncacheable live
        #: tail; without a clock everything is treated as settled
        #: history (tests construct static storages).
        self.clock = clock
        self.limits = limits
        self.admission = AdmissionGate(
            max_inflight,
            max_per_tenant=max_per_tenant,
            queue_timeout=queue_timeout,
            retry_after=retry_after,
        )
        self.single_flight = SingleFlight()
        self.app = App(name=name)
        self.app.expose_telemetry()
        r = self.app.router
        r.get("/api/v1/query", self._query)
        r.post("/api/v1/query", self._query)
        r.get("/api/v1/query_range", self._query_range)
        r.post("/api/v1/query_range", self._query_range)
        # Everything else — metadata, exemplars, rules, status — is
        # proxied untouched to a backend (single-segment catch-all
        # plus the nested API paths, same trick as the LB router).
        r.add("GET", "/{rest}", self._forward_route)
        r.add("POST", "/{rest}", self._forward_route)
        for path in (
            "/api/v1/query_exemplars",
            "/api/v1/series",
            "/api/v1/rules",
            "/api/v1/alerts",
            "/api/v1/silences",
            "/-/healthy",
        ):
            r.get(path, self._forward_route)
            r.post(path, self._forward_route)
        r.get("/api/v1/status/buildinfo", self._forward_route)
        r.get("/api/v1/status/runtimeinfo", self._forward_route)
        r.get("/api/v1/label/{name}/values", self._forward_route)
        r.get("/api/v1/silence/{id}", self._forward_route)
        r.delete("/api/v1/silence/{id}", self._forward_route)
        self.split_requests = 0
        self.subqueries = 0
        self.passthrough_requests = 0
        self._register_metrics()

    # -- telemetry -------------------------------------------------------
    def _register_metrics(self) -> None:
        registry = self.app.telemetry.registry
        registry.gauge_func(
            "ceems_frontend_cache_hits_total",
            lambda: float(self.cache.hits),
            help="Range requests served at least partially from the results cache.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_cache_misses_total",
            lambda: float(self.cache.misses),
            help="Range requests that needed at least one backend evaluation.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_cache_evictions_total",
            lambda: float(self.cache.evictions),
            help="Results-cache entries evicted by the byte budget.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_cache_bytes",
            lambda: float(self.cache.total_bytes),
            help="Approximate bytes held by the results cache.",
        )
        registry.gauge_func(
            "ceems_frontend_memo_hits_total",
            lambda: float(self.memo.hits),
            help="Range requests replayed whole from the settled-response memo.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_memo_bytes",
            lambda: float(self.memo.total_bytes),
            help="Approximate bytes held by the settled-response memo.",
        )
        registry.gauge_func(
            "ceems_frontend_split_queries_total",
            lambda: float(self.split_requests),
            help="Range requests split into more than one sub-query.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_subqueries_total",
            lambda: float(self.subqueries),
            help="Backend sub-queries issued by the frontend.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_coalesced_total",
            lambda: float(self.single_flight.coalesced),
            help="Requests that shared an identical in-flight evaluation.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_frontend_queue_depth",
            lambda: float(self.admission.waiting),
            help="Requests waiting for a frontend worker slot.",
        )
        registry.gauge_func(
            "ceems_frontend_rejected_total",
            lambda: float(self.admission.rejected),
            help="Requests rejected 503 by worker-pool admission.",
            type="counter",
        )

    # -- plumbing --------------------------------------------------------
    def handle_query(self, request: Request) -> Response:
        """Entry point for an embedding LB: dispatch a query-path
        request straight into the frontend logic, without the extra
        per-hop App middleware the standalone ``self.app`` adds."""
        if request.path == "/api/v1/query":
            return self._query(request)
        return self._query_range(request)

    @staticmethod
    def _param(request: Request, name: str) -> str | None:
        value = request.param(name)
        if value is None:
            values = request.form.get(name)
            value = values[0] if values else None
        return value

    def _forward(self, request: Request) -> Response:
        """Send one request to a backend picked by the LB strategy."""
        backend = self.strategy.choose()
        backend.acquire()
        try:
            return backend.app.handle(request)
        finally:
            backend.release()

    def _forward_route(self, request: Request) -> Response:
        return self._forward(request)

    def _rejected(self, exc: AdmissionRejected) -> Response:
        return Response.json(
            {"status": "error", "errorType": "unavailable", "error": str(exc)},
            status=503,
            retry_after=f"{max(1, math.ceil(self.admission.retry_after))}",
        )

    @staticmethod
    def _params(request: Request) -> tuple[str | None, ...]:
        """All evaluation-relevant parameters, extracted once.

        Indexed by :data:`_PARAM_NAMES` position; also the variable
        part of the request fingerprint.  The POST form is parsed at
        most once, not per missing parameter.
        """
        form: dict[str, list[str]] | None = None
        out = []
        for name in _PARAM_NAMES:
            value = request.param(name)
            if value is None:
                if form is None:
                    form = request.form
                values = form.get(name)
                value = values[0] if values else None
            out.append(value)
        return tuple(out)

    def _coalesced(self, fingerprint: tuple, tenant: str, fn) -> Response:
        """Admission inside single-flight: followers hold no slot."""

        def leader():
            try:
                self.admission.acquire(tenant)
            except AdmissionRejected as exc:
                return self._rejected(exc)
            try:
                return fn()
            finally:
                self.admission.release(tenant)

        return self.single_flight.do(fingerprint, leader)

    def _now_cutoff(self) -> float:
        """Newest timestamp the cache may store (live tail excluded)."""
        if self.clock is None:
            return math.inf
        return self.clock.now() - self.freshness_seconds

    # -- instant queries -------------------------------------------------
    def _query(self, request: Request) -> Response:
        values = self._params(request)
        query = values[0]
        if query and self.limits is not None:
            failed = self.limits.check_query(query)
            if failed is not None:
                return failed
        tenant = request.header(USER_HEADER, "") or ""
        fingerprint = (request.path, tenant) + values
        return self._coalesced(fingerprint, tenant, lambda: self._forward(request))

    # -- range queries ---------------------------------------------------
    def _query_range(self, request: Request) -> Response:
        # Check order mirrors PromAPI._query_range exactly — missing
        # query, then start/end/step parsing, then limits — so a
        # request failing several checks at once gets the same status
        # from both paths (e.g. over-long query + malformed numbers is
        # a 400, not a 422).
        values = self._params(request)
        query = values[0]
        if not query:
            # Missing query: the backend renders the canonical 400,
            # before any float parsing or limit check.
            self.passthrough_requests += 1
            return self._forward(request)
        try:
            start = float(values[2])
            end = float(values[3])
            step = float(values[4])
        except (TypeError, ValueError):
            # Malformed numbers: the backend renders the canonical 400.
            return self._forward(request)
        if self.limits is not None:
            failed = self.limits.check_query(query) or self.limits.check_range(
                start, end, step
            )
            if failed is not None:
                return failed
        tenant = request.header(USER_HEADER, "") or ""
        fingerprint = (request.path, tenant) + values
        body = self.memo.get(fingerprint)
        if body is not None:
            # Whole-response replay: this exact request was answered
            # before and its grid lies entirely in settled history.
            self.cache.record_hit()
            return Response(
                status=200, headers={"content-type": "application/json"}, body=body
            )
        return self._coalesced(
            fingerprint,
            tenant,
            lambda: self._range_inner(
                request, values, tenant, start, end, step, fingerprint
            ),
        )

    def _range_inner(
        self,
        request: Request,
        values: tuple[str | None, ...],
        tenant: str,
        start: float,
        end: float,
        step: float,
        fingerprint: tuple,
    ) -> Response:
        query = values[0] or ""
        if (
            not query
            or step <= 0
            or end < start
            or (values[6] or "") == "all"
        ):
            # Error cases render backend-identically; stats=all embeds
            # per-evaluation timings that a cache hit could not
            # reproduce — both bypass the split/cache machinery.
            self.passthrough_requests += 1
            return self._forward(request)
        grid = range_steps(start, end, step)
        grid_list: list[float] = grid.tolist()
        cutoff = self._now_cutoff()
        settled = grid_list[-1] <= cutoff
        strategy = values[5] or ""
        key = (tenant, query, strategy, repr(step), repr(math.fmod(start, step)))
        # Coverage and the covered points are taken in one locked call:
        # the entry can be evicted at any moment afterwards (a
        # concurrent request's ingest under byte pressure, or this
        # request's own), and served steps are never re-evaluated, so
        # assembly must work from this copy — never a later re-read.
        served, cached_columns = self.cache.snapshot(key, grid_list)

        if not served and (
            self.split_interval <= 0
            or math.floor(grid_list[0] / self.split_interval)
            == math.floor(grid_list[-1] / self.split_interval)
        ):
            # Cold single-bucket fast path: nothing cached and the
            # whole grid fits one split bucket, so forward the
            # original request verbatim — the response bytes are the
            # backend's own — and stash the raw body for lazy ingest
            # (the parse is paid by the next request for this key, or
            # never).
            self.cache.record_miss()
            self.subqueries += 1
            response = self._forward(request)
            if response.status == 200:
                self.cache.stash(key, grid_list, response.body, cutoff)
                if settled:
                    self.memo.put(fingerprint, response.body)
            return response

        runs = uncovered_runs(grid, served)
        if served:
            self.cache.record_hit()
        if not runs:
            # Fully covered: assemble from the snapshot alone, zero
            # backend round-trips.
            response = self._assemble(cached_columns, [])
            if settled:
                self.memo.put(fingerprint, response.body)
            return response
        self.cache.record_miss()
        parts = grid_parts(grid, step, self.split_interval)
        if parts is None:
            # Non-exact float grid: splitting could drift timestamps
            # by an ulp.  Serve unsplit and uncached.
            self.passthrough_requests += 1
            return self._forward(request)
        sub_runs = clamp_runs_to_parts(runs, parts)
        if len(sub_runs) > 1:
            self.split_requests += 1

        # Evaluate every uncovered sub-range; any backend error is
        # returned verbatim (its body is range-independent for parse/
        # authz errors and must reach the client unchanged anyway).
        part_results: list[tuple[int, int, list]] = []
        for i0, i1 in sub_runs:
            self.subqueries += 1
            sub = Request(
                method="GET",
                path="/api/v1/query_range",
                query={
                    "query": [query],
                    "start": [repr(float(grid[i0]))],
                    "end": [repr(float(grid[i1]))],
                    "step": [values[4]],
                    **({"strategy": [strategy]} if strategy else {}),
                },
                headers=dict(request.headers),
            )
            response = self._forward(sub)
            if response.status != 200:
                return response
            try:
                data = json.loads(response.body.decode())["data"]
                result = data["result"]
            except (ValueError, KeyError, TypeError):
                return response
            part_results.append((i0, i1, result))
            self.cache.ingest(key, grid_list[i0 : i1 + 1], result, cutoff)

        response = self._assemble(cached_columns, part_results)
        if settled:
            self.memo.put(fingerprint, response.body)
        return response

    def _assemble(
        self,
        cached_columns: list[tuple[tuple, dict, list[float], list[str]]],
        part_results: list[tuple[int, int, list]],
    ) -> Response:
        """Merge snapshotted cache slices + fresh sub-results into one
        response.

        ``cached_columns`` is the copy :meth:`ResultsCache.snapshot`
        took atomically with the coverage set — re-reading the cache
        here could silently lose served steps to a concurrent eviction.
        Reproduces the PromAPI matrix rendering exactly: series sorted
        by their label items, values in step order, every ``metric``
        object in ``Labels.as_dict()`` (label-name-sorted) key order.
        """
        merged: dict[tuple, tuple[dict, list]] = {}
        for series_key, metric, ts, vals in cached_columns:
            entry = merged.get(series_key)
            if entry is None:
                entry = merged[series_key] = (metric, [])
            entry[1].extend(zip(ts, vals))
        for _i0, _i1, result in part_results:
            for item in result:
                metric = item["metric"]
                series_key = tuple(sorted(metric.items()))
                entry = merged.get(series_key)
                if entry is None:
                    entry = merged[series_key] = (metric, [])
                entry[1].extend((float(t), v) for t, v in item["values"])
        out = []
        for series_key in sorted(merged):
            metric, pairs = merged[series_key]
            pairs.sort(key=lambda tv: tv[0])
            out.append({"metric": metric, "values": [[t, v] for t, v in pairs]})
        return Response.json(
            {"status": "success", "data": {"resultType": "matrix", "result": out}}
        )
