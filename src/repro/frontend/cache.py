"""Step-aligned results cache for the query frontend.

Two cooperating layers, both bounded by byte-budget LRU:

:class:`ResultsCache` caches *evaluated* ``query_range`` output —
rendered ``[t, "v"]`` pairs, exactly as the Prometheus JSON API emits
them — keyed per ``(tenant, query, step, grid phase, strategy)``.  A
cache entry records two things:

* ``covered`` — the set of grid timestamps this key has been
  evaluated at.  Coverage is tracked even where no series produced a
  value: "we evaluated 12:00 and the result was empty" is as
  cacheable as a value.
* per-series sorted ``(timestamp, value-string)`` columns, from which
  any sub-range of a later request is sliced.

Ingest is *lazy* on the cold fast path: :meth:`ResultsCache.stash`
files the raw response body against the key (a reference copy — no
parsing), and the first later request for that key pays the JSON
decode.  A one-shot query therefore funds the cache with a pointer
store, not a parse.

:class:`ResponseMemo` short-circuits *complete* repeats: the full
rendered body of a request whose every grid timestamp lies in settled
history (older than the freshness window) is stored under the request
fingerprint and replayed byte-for-byte.  Settled history is immutable
— scrapes and rule evaluations only append at "now" — so a memoised
body can never go stale; requests touching the live tail are never
memoised.

Correctness model.  Serving a cached point substitutes a *previously
rendered* value for a fresh evaluation, which is sound because (a)
the evaluators are deterministic and bit-identical (PR-1/PR-6
differential contracts), (b) history outside the freshness window is
immutable, and (c) lookups are by exact float timestamp equality, so
a request whose grid drifts by even one ulp from the cached grid
simply misses and re-evaluates.  The live tail (the most recent
``freshness_seconds``) is never stored: samples may still be arriving
there, so those steps are re-evaluated on every request and dashboards
are never served stale "now" data.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Any, Iterator

#: Default live-tail window kept uncacheable (Cortex's
#: ``max_cache_freshness``): 10 minutes.
DEFAULT_FRESHNESS = 600.0

#: Approximate per-point overhead (float timestamp + list slots).
_POINT_BYTES = 24


class _SeriesColumn:
    """One cached series: sorted timestamps + rendered value strings."""

    __slots__ = ("metric", "ts", "vals")

    def __init__(self, metric: dict[str, str]) -> None:
        #: The ``metric`` JSON object exactly as the backend rendered
        #: it (label-name-sorted, the ``Labels.as_dict()`` order) —
        #: reused verbatim so re-rendered JSON is byte-identical.
        self.metric = metric
        self.ts: list[float] = []
        self.vals: list[str] = []


class _Entry:
    """All cached state for one (tenant, query, step, phase) key."""

    __slots__ = ("covered", "series", "bytes", "pending")

    def __init__(self) -> None:
        self.covered: set[float] = set()
        self.series: dict[tuple, _SeriesColumn] = {}
        self.bytes = 0
        #: Raw response bodies stashed by the cold fast path, parsed
        #: and folded in on the entry's next access.
        self.pending: list[tuple[list[float], bytes, float]] = []


class ResultsCache:
    """Extent cache over rendered range-query results (thread-safe)."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    # -- lookup ----------------------------------------------------------
    def covered_of(self, key: tuple, grid: list[float]) -> set[float]:
        """Grid timestamps of ``grid`` this key already has evaluated."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return set()
            self._entries.move_to_end(key)
            if entry.pending:
                self._drain_locked(key, entry)
            return {t for t in grid if t in entry.covered}

    def snapshot(
        self, key: tuple, grid: list[float]
    ) -> tuple[set[float], list[tuple[tuple, dict[str, str], list[float], list[str]]]]:
        """Atomically resolve coverage AND copy out the covered points.

        Returns ``(served, columns)``: the subset of ``grid`` this key
        has already evaluated, plus the cached ``(series_key, metric,
        ts, vals)`` slices at exactly those timestamps.  Both come from
        a single lock hold — a concurrent ingest (or the caller's own,
        via the byte-budget eviction) may drop the entry at any moment
        after this returns, and served steps are never re-evaluated, so
        the points backing the coverage claim must leave the cache
        together with the claim itself.  Answering from the copy keeps
        the response complete (and safe to memoise) no matter what the
        cache does afterwards.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return set(), []
            self._entries.move_to_end(key)
            if entry.pending:
                self._drain_locked(key, entry)
            served = {t for t in grid if t in entry.covered}
            if not served:
                return served, []
            lo, hi = grid[0], grid[-1]
            columns = []
            for series_key, col in entry.series.items():
                a = bisect_left(col.ts, lo)
                b = bisect_right(col.ts, hi)
                if a >= b:
                    continue
                ts = [t for t in col.ts[a:b] if t in served]
                if not ts:
                    continue
                vals = [
                    v for t, v in zip(col.ts[a:b], col.vals[a:b]) if t in served
                ]
                columns.append((series_key, col.metric, ts, vals))
            return served, columns

    def slice(
        self, key: tuple, served: set[float], lo: float, hi: float
    ) -> Iterator[tuple[tuple, dict[str, str], list[float], list[str]]]:
        """Yield ``(series_key, metric, ts, vals)`` for cached points.

        Only points whose timestamp is in ``served`` (the exact grid
        subset this request is being answered from) are returned.
        Unlike :meth:`snapshot` this is not atomic with the coverage
        lookup — the serving path must use :meth:`snapshot`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            if entry.pending:
                self._drain_locked(key, entry)
            columns = list(entry.series.items())
        for series_key, col in columns:
            a = bisect_left(col.ts, lo)
            b = bisect_right(col.ts, hi)
            if a >= b:
                continue
            ts = [t for t in col.ts[a:b] if t in served]
            if not ts:
                continue
            vals = [v for t, v in zip(col.ts[a:b], col.vals[a:b]) if t in served]
            yield series_key, col.metric, ts, vals

    # -- ingest ----------------------------------------------------------
    def stash(
        self, key: tuple, part_steps: list[float], body: bytes, cutoff: float
    ) -> None:
        """File a raw 200 response body for lazy ingestion.

        The cold fast path calls this instead of :meth:`ingest`: the
        body reference is stored as-is (no JSON decode), and the next
        request touching this key pays the parse.  A query asked only
        once never pays it at all.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry()
            self._entries.move_to_end(key)
            entry.pending.append((part_steps, body, cutoff))
            entry.bytes += len(body)
            self.total_bytes += len(body)
            self._evict_locked(keep=key)

    def _drain_locked(self, key: tuple, entry: _Entry) -> None:
        pending, entry.pending = entry.pending, []
        for part_steps, body, cutoff in pending:
            entry.bytes -= len(body)
            self.total_bytes -= len(body)
            try:
                result = json.loads(body.decode())["data"]["result"]
            except (ValueError, KeyError, TypeError):
                continue
            self._ingest_locked(key, entry, part_steps, result, cutoff)

    def ingest(
        self,
        key: tuple,
        part_steps: list[float],
        result: list[dict[str, Any]],
        cutoff: float,
    ) -> None:
        """Store one already-parsed evaluated sub-range.

        ``part_steps`` is the full step grid the sub-query evaluated
        (coverage, including empty steps); ``result`` the parsed JSON
        ``result`` array; points newer than ``cutoff`` (the live tail)
        are discarded.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry()
            self._entries.move_to_end(key)
            self._ingest_locked(key, entry, part_steps, result, cutoff)

    def _ingest_locked(
        self,
        key: tuple,
        entry: _Entry,
        part_steps: list[float],
        result: list[dict[str, Any]],
        cutoff: float,
    ) -> None:
        fresh_cov = {t for t in part_steps if t <= cutoff and t not in entry.covered}
        if not fresh_cov:
            return
        entry.covered |= fresh_cov
        added = len(fresh_cov) * 8
        for item in result:
            pairs = [
                (float(t), v) for t, v in item["values"] if float(t) in fresh_cov
            ]
            if not pairs:
                continue
            metric = item["metric"]
            series_key = tuple(sorted(metric.items()))
            col = entry.series.get(series_key)
            if col is None:
                col = entry.series[series_key] = _SeriesColumn(metric)
                added += sum(len(k) + len(v) for k, v in series_key)
            if not col.ts or pairs[0][0] > col.ts[-1]:
                col.ts.extend(t for t, _v in pairs)
                col.vals.extend(v for _t, v in pairs)
            else:
                merged = sorted(list(zip(col.ts, col.vals)) + pairs)
                col.ts = [t for t, _v in merged]
                col.vals = [v for _t, v in merged]
            added += sum(_POINT_BYTES + len(v) for _t, v in pairs)
        entry.bytes += added
        self.total_bytes += added
        self._evict_locked(keep=key)

    def _evict_locked(self, keep: tuple) -> None:
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            old_key, old = next(iter(self._entries.items()))
            if old_key == keep:
                self._entries.move_to_end(old_key)
                old_key, old = next(iter(self._entries.items()))
            del self._entries[old_key]
            self.total_bytes -= old.bytes
            self.evictions += 1
        if self.total_bytes > self.max_bytes and len(self._entries) == 1:
            # A single oversized entry: drop it rather than pin it.
            _key, old = self._entries.popitem()
            self.total_bytes -= old.bytes
            self.evictions += 1

    def record_hit(self) -> None:
        """Count a request served at least partially from cache.

        Request threads race on these counters under closed-loop load;
        a bare ``+= 1`` from the server would drop increments.
        """
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        """Count a request that needed at least one backend evaluation."""
        with self._lock:
            self.misses += 1

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "bytes": float(self.total_bytes),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
            }


class ResponseMemo:
    """Byte-bounded LRU of complete rendered responses.

    Only responses whose whole step grid is settled (older than the
    freshness cutoff) are stored — see the module docstring for why
    that makes invalidation unnecessary.  Keys are full request
    fingerprints (tenant + path + every query parameter), so a memo
    hit is a byte-for-byte replay of this exact request.
    """

    def __init__(self, max_bytes: int = 16 * 1024 * 1024) -> None:
        self.max_bytes = max_bytes
        self._bodies: OrderedDict[tuple, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._bodies)

    def get(self, fingerprint: tuple) -> bytes | None:
        with self._lock:
            body = self._bodies.get(fingerprint)
            if body is not None:
                self._bodies.move_to_end(fingerprint)
                self.hits += 1
            return body

    def put(self, fingerprint: tuple, body: bytes) -> None:
        with self._lock:
            old = self._bodies.pop(fingerprint, None)
            if old is not None:
                self.total_bytes -= len(old)
            self._bodies[fingerprint] = body
            self.total_bytes += len(body)
            while self.total_bytes > self.max_bytes and len(self._bodies) > 1:
                _fp, evicted = self._bodies.popitem(last=False)
                self.total_bytes -= len(evicted)
            if self.total_bytes > self.max_bytes and self._bodies:
                _fp, evicted = self._bodies.popitem()
                self.total_bytes -= len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._bodies.clear()
            self.total_bytes = 0
