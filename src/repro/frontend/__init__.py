"""Query frontend: range splitting, results caching, coalescing,
admission — the serving-tier layer between the LB and the PromQL
backends (PR 10)."""

from repro.frontend.cache import DEFAULT_FRESHNESS, ResultsCache
from repro.frontend.limits import DEFAULT_MAX_QUERY_LENGTH, QueryLimits, limit_error
from repro.frontend.server import (
    AdmissionGate,
    AdmissionRejected,
    QueryFrontend,
    SingleFlight,
)
from repro.frontend.split import (
    DEFAULT_SPLIT_INTERVAL,
    clamp_runs_to_parts,
    grid_parts,
    uncovered_runs,
)

__all__ = [
    "DEFAULT_FRESHNESS",
    "DEFAULT_MAX_QUERY_LENGTH",
    "DEFAULT_SPLIT_INTERVAL",
    "AdmissionGate",
    "AdmissionRejected",
    "QueryFrontend",
    "QueryLimits",
    "ResultsCache",
    "SingleFlight",
    "clamp_runs_to_parts",
    "grid_parts",
    "limit_error",
    "uncovered_runs",
]
