"""Typed configuration for the whole stack, loaded from one YAML file.

The paper: *"All the CEEMS components can be configured in a single
YAML file where each component will read its relevant configuration."*
This module defines that file's schema as dataclasses and the loader
that each component uses to pick out its own section.

Example document::

    exporter:
      port: 9010
      collectors: [cgroup, rapl, ipmi, node]
      basic_auth:
        username: scraper
        password: hunter2
    tsdb:
      scrape_interval: 15s
      retention: 30d
    api_server:
      update_interval: 15m
      db_path: ceems.db
    lb:
      strategy: round-robin
      backends: [tsdb-0, tsdb-1]
    emissions:
      country: FR
      providers: [rte, owid]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import yamlite
from repro.common.errors import ConfigError
from repro.common.units import parse_duration

VALID_COLLECTORS = ("cgroup", "rapl", "ipmi", "node", "gpu_map", "self", "ebpf_net", "perf")
VALID_STRATEGIES = ("round-robin", "least-connection")
VALID_PROVIDERS = ("owid", "rte", "electricity_maps")


def _duration(value: Any, name: str, default: float) -> float:
    """Coerce a config value into seconds (number or '15s'-style)."""
    if value is None:
        return default
    if isinstance(value, (int, float)):
        if value <= 0:
            raise ConfigError(f"{name} must be positive")
        return float(value)
    try:
        seconds = parse_duration(str(value))
    except ValueError as exc:
        raise ConfigError(f"invalid duration for {name}: {value!r}") from exc
    if seconds <= 0:
        raise ConfigError(f"{name} must be positive")
    return seconds


@dataclass
class BasicAuthConfig:
    username: str = ""
    password: str = ""

    @property
    def enabled(self) -> bool:
        return bool(self.username)

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "BasicAuthConfig":
        if not raw:
            return cls()
        return cls(username=str(raw.get("username", "")), password=str(raw.get("password", "")))


@dataclass
class ExporterConfig:
    """CEEMS exporter section."""

    port: int = 9010
    collectors: tuple[str, ...] = ("cgroup", "rapl", "ipmi", "node")
    basic_auth: BasicAuthConfig = field(default_factory=BasicAuthConfig)
    tls_enabled: bool = False

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "ExporterConfig":
        raw = raw or {}
        collectors = tuple(raw.get("collectors") or cls.collectors)
        for name in collectors:
            if name not in VALID_COLLECTORS:
                raise ConfigError(f"unknown collector {name!r}; valid: {VALID_COLLECTORS}")
        port = int(raw.get("port", 9010))
        if not (0 < port < 65536):
            raise ConfigError(f"exporter port out of range: {port}")
        return cls(
            port=port,
            collectors=collectors,
            basic_auth=BasicAuthConfig.from_dict(raw.get("basic_auth")),
            tls_enabled=bool(raw.get("tls_enabled", False)),
        )


@dataclass
class TSDBConfig:
    """Hot Prometheus instance section."""

    scrape_interval: float = 15.0
    retention: float = 30 * 86400.0
    replicate_to_thanos: bool = True
    #: Root of the durable storage engine ("" = in-memory only).
    persist_dir: str = ""

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "TSDBConfig":
        raw = raw or {}
        return cls(
            scrape_interval=_duration(raw.get("scrape_interval"), "tsdb.scrape_interval", 15.0),
            retention=_duration(raw.get("retention"), "tsdb.retention", 30 * 86400.0),
            replicate_to_thanos=bool(raw.get("replicate_to_thanos", True)),
            persist_dir=str(raw.get("persist_dir", "")),
        )


@dataclass
class APIServerConfig:
    """CEEMS API server section."""

    update_interval: float = 900.0
    db_path: str = ":memory:"
    backup_interval: float = 86400.0
    #: Workloads shorter than this are purged from the TSDB (cardinality
    #: cleanup); 0 disables cleanup.
    cleanup_cutoff: float = 0.0
    basic_auth: BasicAuthConfig = field(default_factory=BasicAuthConfig)

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "APIServerConfig":
        raw = raw or {}
        cutoff_raw = raw.get("cleanup_cutoff")
        cutoff = 0.0 if cutoff_raw in (None, 0, "0") else _duration(cutoff_raw, "api_server.cleanup_cutoff", 0.0)
        return cls(
            update_interval=_duration(raw.get("update_interval"), "api_server.update_interval", 900.0),
            db_path=str(raw.get("db_path", ":memory:")),
            backup_interval=_duration(raw.get("backup_interval"), "api_server.backup_interval", 86400.0),
            cleanup_cutoff=cutoff,
            basic_auth=BasicAuthConfig.from_dict(raw.get("basic_auth")),
        )


@dataclass
class LBConfig:
    """CEEMS load balancer section."""

    strategy: str = "round-robin"
    backends: tuple[str, ...] = ()
    #: "db" = introspect the API server's SQLite directly; "api" = ask
    #: the API server over HTTP (paper §II.C / §II.C architecture).
    authz_mode: str = "db"

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "LBConfig":
        raw = raw or {}
        strategy = str(raw.get("strategy", "round-robin"))
        if strategy not in VALID_STRATEGIES:
            raise ConfigError(f"unknown LB strategy {strategy!r}; valid: {VALID_STRATEGIES}")
        authz_mode = str(raw.get("authz_mode", "db"))
        if authz_mode not in ("db", "api"):
            raise ConfigError(f"unknown LB authz_mode {authz_mode!r}")
        return cls(
            strategy=strategy,
            backends=tuple(str(b) for b in (raw.get("backends") or ())),
            authz_mode=authz_mode,
        )


@dataclass
class EmissionsConfig:
    """Emission-factor section."""

    country: str = "FR"
    providers: tuple[str, ...] = ("rte", "owid")
    refresh_interval: float = 1800.0

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "EmissionsConfig":
        raw = raw or {}
        providers = tuple(raw.get("providers") or cls.providers)
        for name in providers:
            if name not in VALID_PROVIDERS:
                raise ConfigError(f"unknown emissions provider {name!r}; valid: {VALID_PROVIDERS}")
        return cls(
            country=str(raw.get("country", "FR")).upper(),
            providers=providers,
            refresh_interval=_duration(raw.get("refresh_interval"), "emissions.refresh_interval", 1800.0),
        )


@dataclass
class StackConfig:
    """The full single-file configuration for all components."""

    exporter: ExporterConfig = field(default_factory=ExporterConfig)
    tsdb: TSDBConfig = field(default_factory=TSDBConfig)
    api_server: APIServerConfig = field(default_factory=APIServerConfig)
    lb: LBConfig = field(default_factory=LBConfig)
    emissions: EmissionsConfig = field(default_factory=EmissionsConfig)

    KNOWN_SECTIONS = ("exporter", "tsdb", "api_server", "lb", "emissions")

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "StackConfig":
        raw = raw or {}
        if not isinstance(raw, dict):
            raise ConfigError("top-level config must be a mapping")
        unknown = set(raw) - set(cls.KNOWN_SECTIONS)
        if unknown:
            raise ConfigError(f"unknown config sections: {sorted(unknown)}")
        return cls(
            exporter=ExporterConfig.from_dict(raw.get("exporter")),
            tsdb=TSDBConfig.from_dict(raw.get("tsdb")),
            api_server=APIServerConfig.from_dict(raw.get("api_server")),
            lb=LBConfig.from_dict(raw.get("lb")),
            emissions=EmissionsConfig.from_dict(raw.get("emissions")),
        )

    @classmethod
    def loads(cls, text: str) -> "StackConfig":
        return cls.from_dict(yamlite.loads(text))

    @classmethod
    def load_file(cls, path: str) -> "StackConfig":
        return cls.from_dict(yamlite.load_file(path))
