"""Shared infrastructure for the CEEMS reproduction.

Hosts the pieces every component of the stack relies on: the exception
hierarchy, physical-unit helpers, the simulation clock, the YAML-subset
configuration loader (the whole stack is configured from a single YAML
file, as in the paper), an in-process HTTP abstraction used by the
exporter / API server / load balancer, and basic-auth support.
"""

from repro.common.clock import SimClock, WallClock
from repro.common.errors import (
    AuthError,
    CEEMSError,
    ConfigError,
    NotFoundError,
    QueryError,
    StorageError,
)
from repro.common.units import Energy, Power

__all__ = [
    "SimClock",
    "WallClock",
    "CEEMSError",
    "ConfigError",
    "AuthError",
    "NotFoundError",
    "QueryError",
    "StorageError",
    "Energy",
    "Power",
]
