"""Exception hierarchy for the CEEMS reproduction.

All stack-specific failures derive from :class:`CEEMSError` so callers
can catch the whole family with a single ``except`` clause while tests
can assert on precise subclasses.
"""

from __future__ import annotations


class CEEMSError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(CEEMSError):
    """Raised when a configuration file or value is invalid."""


class AuthError(CEEMSError):
    """Raised when authentication or authorization fails.

    The HTTP layers map this to 401 (bad/missing credentials) or 403
    (authenticated but not allowed), depending on :attr:`status`.
    """

    def __init__(self, message: str, status: int = 401) -> None:
        super().__init__(message)
        self.status = status


class NotFoundError(CEEMSError):
    """Raised when a requested entity (unit, user, target…) is absent."""


class QueryError(CEEMSError):
    """Raised for malformed or unevaluable PromQL / API queries."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class StorageError(CEEMSError):
    """Raised for TSDB / SQLite storage failures (ingest, retention…)."""


class ScrapeError(CEEMSError):
    """Raised when a scrape target cannot be collected or parsed."""


class CollectorError(CEEMSError):
    """Raised inside an exporter collector.

    Mirrors CEEMS behaviour: a failing collector marks itself unhealthy
    in the ``ceems_exporter_collector_success`` metric instead of
    failing the whole scrape.
    """


class ProviderError(CEEMSError):
    """Raised by emission-factor providers (API down, unknown zone…)."""


class SimulationError(CEEMSError):
    """Raised for inconsistencies in the hardware/cluster simulation."""
