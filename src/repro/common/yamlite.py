"""A minimal YAML-subset parser for the single-file stack configuration.

The paper configures every CEEMS component from one YAML file.  PyYAML
is not available in this offline environment, so this module implements
the subset of YAML the stack's configuration actually needs:

* block mappings and nested mappings via indentation,
* block sequences (``- item``) of scalars or mappings,
* flow sequences (``[a, b, c]``) of scalars,
* scalars: integers, floats, booleans (``true``/``false``), ``null``,
  single- and double-quoted strings, plain strings,
* full-line and trailing ``#`` comments,
* document separators (``---``) are tolerated at the top.

Anchors, aliases, multi-line block scalars and flow mappings are out of
scope and raise :class:`~repro.common.errors.ConfigError`.

The emitter (:func:`dumps`) produces output that round-trips through
:func:`loads`, which the config tests rely on.
"""

from __future__ import annotations

import re
from typing import Any

from repro.common.errors import ConfigError

_BOOue = {"true": True, "True": True, "false": False, "False": False}
_NULLS = {"null", "~", "None", ""}

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def _parse_scalar(token: str) -> Any:
    """Interpret a scalar token with YAML 1.2 core-schema-ish rules."""
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1].replace("''", "'")
    if token in _BOOue:
        return _BOOue[token]
    if token in _NULLS:
        return None
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token) and token not in {"+", "-"}:
        return float(token)
    return token


def _strip_comment(line: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    out = []
    quote: str | None = None
    for ch in line:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            out.append(ch)
            continue
        if ch == "#":
            break
        out.append(ch)
    return "".join(out).rstrip()


class _Line:
    __slots__ = ("indent", "content", "lineno")

    def __init__(self, indent: int, content: str, lineno: int) -> None:
        self.indent = indent
        self.content = content
        self.lineno = lineno


def _tokenize(text: str) -> list[_Line]:
    lines: list[_Line] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ConfigError(f"line {lineno}: tabs are not allowed in indentation")
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        if stripped.strip() == "---" and not lines:
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip(), lineno))
    return lines


def _split_key(content: str, lineno: int) -> tuple[str, str]:
    """Split ``key: value`` respecting quoted keys."""
    if content.startswith(("'", '"')):
        quote = content[0]
        end = content.find(quote, 1)
        if end == -1 or not content[end + 1 :].lstrip().startswith(":"):
            raise ConfigError(f"line {lineno}: malformed quoted key")
        key = content[1:end]
        rest = content[end + 1 :].lstrip()[1:]
        return key, rest.strip()
    idx = content.find(":")
    if idx == -1:
        raise ConfigError(f"line {lineno}: expected 'key: value', got {content!r}")
    # Reject "url: http://x" being split at the wrong colon: YAML requires
    # ': ' or line-final ':'; find the first colon followed by space/EOL.
    m = re.search(r":(\s|$)", content)
    if m is None:
        raise ConfigError(f"line {lineno}: expected 'key: value', got {content!r}")
    key = content[: m.start()]
    rest = content[m.end() :]
    return key.strip(), rest.strip()


def _parse_flow_seq(token: str, lineno: int) -> list[Any]:
    inner = token[1:-1].strip()
    if not inner:
        return []
    items: list[str] = []
    depth = 0
    quote: str | None = None
    current = []
    for ch in inner:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    items.append("".join(current))
    out: list[Any] = []
    for item in items:
        item = item.strip()
        if item.startswith("[") and item.endswith("]"):
            out.append(_parse_flow_seq(item, lineno))
        else:
            out.append(_parse_scalar(item))
    return out


class _Parser:
    def __init__(self, lines: list[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- "):
            return self.parse_sequence(line.indent)
        if line.content == "-":
            return self.parse_sequence(line.indent)
        return self.parse_mapping(line.indent)

    def parse_mapping(self, indent: int) -> dict[str, Any]:
        result: dict[str, Any] = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return result
            if line.indent > indent:
                raise ConfigError(f"line {line.lineno}: unexpected indentation")
            if line.content.startswith("- ") or line.content == "-":
                raise ConfigError(f"line {line.lineno}: sequence item in mapping context")
            key, rest = _split_key(line.content, line.lineno)
            if key in result:
                raise ConfigError(f"line {line.lineno}: duplicate key {key!r}")
            self.pos += 1
            if rest:
                if rest.startswith("[") and rest.endswith("]"):
                    result[key] = _parse_flow_seq(rest, line.lineno)
                elif rest.startswith("{"):
                    raise ConfigError(f"line {line.lineno}: flow mappings are not supported")
                elif rest.startswith(("&", "*")):
                    raise ConfigError(f"line {line.lineno}: anchors/aliases are not supported")
                elif rest in ("|", ">") or rest.startswith(("|", ">")):
                    raise ConfigError(f"line {line.lineno}: block scalars are not supported")
                else:
                    result[key] = _parse_scalar(rest)
            else:
                child = self.peek()
                if child is None or child.indent <= indent:
                    result[key] = None
                else:
                    result[key] = self.parse_block(child.indent)

    def parse_sequence(self, indent: int) -> list[Any]:
        result: list[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return result
            if line.indent > indent:
                raise ConfigError(f"line {line.lineno}: unexpected indentation in sequence")
            if not (line.content.startswith("- ") or line.content == "-"):
                return result
            rest = line.content[1:].strip()
            self.pos += 1
            if not rest:
                child = self.peek()
                if child is None or child.indent <= indent:
                    result.append(None)
                else:
                    result.append(self.parse_block(child.indent))
                continue
            if ":" in rest and re.search(r":(\s|$)", rest):
                # "- key: value" starts an inline mapping whose remaining
                # keys sit two columns deeper (aligned with `key`).
                key, value = _split_key(rest, line.lineno)
                item: dict[str, Any] = {}
                if value:
                    if value.startswith("[") and value.endswith("]"):
                        item[key] = _parse_flow_seq(value, line.lineno)
                    else:
                        item[key] = _parse_scalar(value)
                else:
                    child = self.peek()
                    item_indent = indent + 2
                    if child is not None and child.indent > item_indent:
                        item[key] = self.parse_block(child.indent)
                    else:
                        item[key] = None
                # Continuation keys of the same item.
                while True:
                    nxt = self.peek()
                    if nxt is None or nxt.indent != indent + 2 or nxt.content.startswith("- "):
                        break
                    sub = self.parse_mapping(indent + 2)
                    for k, v in sub.items():
                        if k in item:
                            raise ConfigError(f"line {nxt.lineno}: duplicate key {k!r} in sequence item")
                        item[k] = v
                result.append(item)
            elif rest.startswith("[") and rest.endswith("]"):
                result.append(_parse_flow_seq(rest, line.lineno))
            else:
                result.append(_parse_scalar(rest))


def loads(text: str) -> Any:
    """Parse a YAML-subset document into Python objects.

    Returns ``None`` for an empty document, otherwise a dict, list or
    scalar.  Raises :class:`ConfigError` for unsupported constructs.
    """
    lines = _tokenize(text)
    if not lines:
        return None
    parser = _Parser(lines)
    result = parser.parse_block(lines[0].indent)
    leftover = parser.peek()
    if leftover is not None:
        raise ConfigError(f"line {leftover.lineno}: trailing content {leftover.content!r}")
    return result


def load_file(path: str) -> Any:
    """Parse a YAML-subset file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())


def _needs_quotes(s: str) -> bool:
    if s == "" or s != s.strip():
        return True
    if s in _BOOue or s in _NULLS:
        return True
    if _INT_RE.match(s) or _FLOAT_RE.match(s):
        return True
    return any(ch in s for ch in ":#[]{},&*'\"\n-") or s.startswith(("-", "?"))


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    s = str(value)
    if _needs_quotes(s):
        return '"' + s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n") + '"'
    return s


def dumps(value: Any, _indent: int = 0) -> str:
    """Emit a YAML-subset document that round-trips through :func:`loads`."""
    pad = " " * _indent
    if isinstance(value, dict):
        if not value:
            raise ConfigError("cannot emit an empty mapping in block style")
        lines = []
        for k, v in value.items():
            key = _dump_scalar(str(k))
            if isinstance(v, dict) and v:
                lines.append(f"{pad}{key}:")
                lines.append(dumps(v, _indent + 2))
            elif isinstance(v, list) and v:
                lines.append(f"{pad}{key}:")
                lines.append(dumps(v, _indent + 2))
            elif isinstance(v, (dict, list)):  # empty containers -> flow
                lines.append(f"{pad}{key}: []" if isinstance(v, list) else f"{pad}{key}: null")
            else:
                lines.append(f"{pad}{key}: {_dump_scalar(v)}")
        return "\n".join(lines)
    if isinstance(value, list):
        lines = []
        for item in value:
            if isinstance(item, dict) and item:
                body = dumps(item, _indent + 2)
                first, _, rest = body.partition("\n")
                lines.append(f"{pad}- {first.strip()}")
                if rest:
                    lines.append(rest)
            elif isinstance(item, list):
                inner = ", ".join(_dump_scalar(x) for x in item)
                lines.append(f"{pad}- [{inner}]")
            else:
                lines.append(f"{pad}- {_dump_scalar(item)}")
        return "\n".join(lines)
    return pad + _dump_scalar(value)
