"""Simulation and wall clocks.

Everything in the stack that needs "now" — scrape loops, RAPL counter
integration, the API-server updater, emission-factor refreshes — takes
a :class:`Clock` so the entire system can run on logical time.  This is
what makes a 90-day Jean-Zay history reproducible in milliseconds of
real time, and what keeps every test deterministic.

:class:`SimClock` additionally provides a timer queue, so components
can register periodic callbacks (a scrape every 15 s, an updater sync
every 15 min) and the simulation driver advances everything in
timestamp order with stable tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol


class Clock(Protocol):
    """Minimal time source interface used across the stack."""

    def now(self) -> float:
        """Current time as a UNIX timestamp in seconds."""
        ...


class WallClock:
    """Real time.  Used when running components against live sockets."""

    def now(self) -> float:
        return time.time()


@dataclass(order=True)
class _Timer:
    """A scheduled callback in the simulation timer queue."""

    when: float
    seq: int
    interval: float = field(compare=False)
    callback: Callable[[float], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class TimerHandle:
    """Handle returned by :meth:`SimClock.every` / :meth:`SimClock.at`.

    Calling :meth:`cancel` stops future firings; an in-flight callback
    is never interrupted (the simulation is single-threaded).
    """

    def __init__(self, timer: _Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._timer.cancelled


class SimClock:
    """A logical clock with a deterministic timer queue.

    Parameters
    ----------
    start:
        Initial UNIX timestamp.  Defaults to 2024-01-01T00:00:00Z so
        histories line up with the paper's deployment period.
    """

    #: 2024-01-01T00:00:00 UTC
    DEFAULT_START = 1704067200.0

    def __init__(self, start: float = DEFAULT_START) -> None:
        self._now = float(start)
        self._queue: list[_Timer] = []
        self._seq = itertools.count()

    def now(self) -> float:
        return self._now

    # -- timer registration -------------------------------------------
    def every(
        self,
        interval: float,
        callback: Callable[[float], None],
        *,
        first_at: float | None = None,
    ) -> TimerHandle:
        """Register ``callback(now)`` every ``interval`` seconds.

        The first firing happens at ``first_at`` (default: now +
        interval).  Periodic timers reschedule themselves from their
        *scheduled* time, not their execution time, so long histories
        do not drift.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        when = self._now + interval if first_at is None else float(first_at)
        timer = _Timer(when=when, seq=next(self._seq), interval=interval, callback=callback)
        heapq.heappush(self._queue, timer)
        return TimerHandle(timer)

    def at(self, when: float, callback: Callable[[float], None]) -> TimerHandle:
        """Register a one-shot ``callback(now)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        timer = _Timer(when=float(when), seq=next(self._seq), interval=0.0, callback=callback)
        heapq.heappush(self._queue, timer)
        return TimerHandle(timer)

    # -- advancing -----------------------------------------------------
    def advance(self, seconds: float) -> int:
        """Advance logical time by ``seconds``, firing due timers.

        Timers fire in timestamp order (ties broken by registration
        order).  Returns the number of callbacks executed.  A callback
        may register new timers; new timers due within the window fire
        in the same call.
        """
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        return self.advance_to(self._now + seconds)

    def advance_to(self, deadline: float) -> int:
        """Advance logical time to ``deadline``, firing due timers."""
        if deadline < self._now:
            raise ValueError("cannot advance backwards")
        fired = 0
        while self._queue and self._queue[0].when <= deadline:
            timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            # Move time to the firing instant so callbacks observing
            # `clock.now()` see the scheduled timestamp.
            self._now = max(self._now, timer.when)
            timer.callback(self._now)
            fired += 1
            if timer.interval > 0 and not timer.cancelled:
                timer.when += timer.interval
                heapq.heappush(self._queue, timer)
        self._now = deadline
        return fired

    def pending(self) -> int:
        """Number of live timers in the queue (cancelled ones excluded)."""
        return sum(1 for t in self._queue if not t.cancelled)
