"""Basic authentication and TLS configuration shared by all components.

The paper notes that *all CEEMS components support basic auth and TLS*.
This module reproduces that: a :class:`BasicAuth` verifier with
constant-time comparison and salted password hashing, and a
:class:`TLSConfig` record.  Since the simulation runs in-process, TLS
is modelled as configuration validation plus a transport-level marker
(requests carry a ``secure`` flag the server can require), which is
exactly the part of TLS the stack's *logic* depends on.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import hmac
import os
from dataclasses import dataclass, field

from repro.common.errors import AuthError, ConfigError

_HASH_ITERATIONS = 1000  # low on purpose: simulation, not production secrets


def hash_password(password: str, salt: bytes | None = None) -> str:
    """Hash a password as ``salthex$digesthex`` (PBKDF2-HMAC-SHA256)."""
    if salt is None:
        salt = os.urandom(8)
    digest = hashlib.pbkdf2_hmac("sha256", password.encode(), salt, _HASH_ITERATIONS)
    return f"{salt.hex()}${digest.hex()}"


def verify_password(password: str, hashed: str) -> bool:
    """Constant-time verification of a password against its hash."""
    try:
        salt_hex, digest_hex = hashed.split("$", 1)
        salt = bytes.fromhex(salt_hex)
        expected = bytes.fromhex(digest_hex)
    except (ValueError, binascii.Error):
        return False
    candidate = hashlib.pbkdf2_hmac("sha256", password.encode(), salt, _HASH_ITERATIONS)
    return hmac.compare_digest(candidate, expected)


@dataclass
class BasicAuth:
    """HTTP basic-auth verifier.

    ``users`` maps username → password hash (see :func:`hash_password`).
    An empty user table means authentication is disabled, matching the
    CEEMS default.
    """

    users: dict[str, str] = field(default_factory=dict)

    @classmethod
    def single_user(cls, username: str, password: str) -> "BasicAuth":
        return cls(users={username: hash_password(password)})

    @property
    def enabled(self) -> bool:
        return bool(self.users)

    def add_user(self, username: str, password: str) -> None:
        self.users[username] = hash_password(password)

    def check_header(self, header: str | None) -> str:
        """Validate an ``Authorization`` header, returning the username.

        Raises :class:`AuthError` (401) when auth is enabled and the
        header is missing, malformed, or the credentials are wrong.
        When auth is disabled, returns the empty string.
        """
        if not self.enabled:
            return ""
        if not header:
            raise AuthError("missing Authorization header", status=401)
        parts = header.split(None, 1)
        if len(parts) != 2 or parts[0].lower() != "basic":
            raise AuthError("unsupported authorization scheme", status=401)
        try:
            decoded = base64.b64decode(parts[1], validate=True).decode()
            username, _, password = decoded.partition(":")
        except (binascii.Error, UnicodeDecodeError) as exc:
            raise AuthError("malformed basic-auth payload", status=401) from exc
        stored = self.users.get(username)
        # Always run a verification to keep timing independent of
        # whether the username exists.
        ok = verify_password(password, stored if stored else hash_password(""))
        if stored is None or not ok:
            raise AuthError("invalid credentials", status=401)
        return username


def make_basic_auth_header(username: str, password: str) -> str:
    """Build the ``Authorization`` header value for a user/password."""
    token = base64.b64encode(f"{username}:{password}".encode()).decode()
    return f"Basic {token}"


@dataclass(frozen=True)
class TLSConfig:
    """TLS settings for a component endpoint.

    In the simulation, enabling TLS means the server refuses requests
    whose transport is not marked secure — the behavioural contract the
    rest of the stack observes.
    """

    enabled: bool = False
    cert_file: str | None = None
    key_file: str | None = None
    min_version: str = "TLS1.2"

    def validate(self) -> None:
        if not self.enabled:
            return
        if not self.cert_file or not self.key_file:
            raise ConfigError("TLS enabled but cert_file/key_file missing")
        if self.min_version not in ("TLS1.2", "TLS1.3"):
            raise ConfigError(f"unsupported TLS min_version {self.min_version!r}")
