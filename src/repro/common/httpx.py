"""In-process HTTP abstraction used by every stack component.

The CEEMS components speak HTTP to each other (exporter ← Prometheus
scrapes, Grafana → LB → Prometheus, API server ← LB / Grafana).  For a
deterministic simulation we model HTTP as plain function calls over
:class:`Request`/:class:`Response` values routed by a :class:`Router`.
Components expose an :class:`App`; clients call :meth:`App.handle`.

A thin adapter (:func:`serve_threading`) mounts the very same ``App``
on a real :class:`http.server.ThreadingHTTPServer`, which the
integration tests use to prove the components genuinely speak HTTP —
the routing, auth, and handler code is identical in both modes.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator

from repro.common.auth import BasicAuth, TLSConfig
from repro.common.errors import AuthError
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    Span,
    TraceContext,
    activate,
    current_trace,
    deactivate,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

#: Exposition content type served by ``/metrics`` endpoints.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class Request:
    """An HTTP request in the in-process model."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Transport security marker; stands in for "arrived over TLS".
    secure: bool = False
    #: Filled by the router from the path pattern (e.g. ``{uuid}``).
    path_params: dict[str, str] = field(default_factory=dict)
    #: The route pattern that matched (set by the router) — the
    #: bounded-cardinality ``handler`` label of the HTTP metrics.
    matched_route: str = ""

    @classmethod
    def from_url(
        cls,
        method: str,
        url: str,
        *,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
        secure: bool = False,
    ) -> "Request":
        """Build a request from a path-with-querystring URL.

        Trace propagation: a request built while a trace context is
        active (i.e. from inside a handler or an instrumented periodic
        activity) automatically carries the ``traceparent`` header, so
        every in-process hop — LB → backend, scrape manager →
        exporter — continues the caller's trace without each call site
        knowing about tracing.
        """
        parsed = urllib.parse.urlsplit(url)
        query = urllib.parse.parse_qs(parsed.query, keep_blank_values=True)
        hdrs = {k.lower(): v for k, v in (headers or {}).items()}
        if TRACEPARENT_HEADER not in hdrs:
            ambient = current_trace()
            if ambient is not None:
                hdrs[TRACEPARENT_HEADER] = ambient.header_value()
        return cls(
            method=method.upper(),
            path=parsed.path or "/",
            query=query,
            headers=hdrs,
            body=body,
            secure=secure,
        )

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def param(self, name: str, default: str | None = None) -> str | None:
        """First value of a query parameter."""
        values = self.query.get(name)
        return values[0] if values else default

    def params(self, name: str) -> list[str]:
        """All values of a repeated query parameter (e.g. ``match[]``)."""
        return self.query.get(name, [])

    def json(self) -> Any:
        return json.loads(self.body.decode() or "null")

    @property
    def form(self) -> dict[str, list[str]]:
        """Parse an ``application/x-www-form-urlencoded`` body.

        Prometheus accepts query parameters via POST forms; the LB must
        introspect those too.
        """
        ctype = self.header("content-type", "")
        if ctype and "application/x-www-form-urlencoded" in ctype:
            return urllib.parse.parse_qs(self.body.decode(), keep_blank_values=True)
        return {}


@dataclass
class Response:
    """An HTTP response in the in-process model."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(cls, payload: Any, status: int = 200, **headers: str) -> "Response":
        hdrs = {"content-type": "application/json"}
        hdrs.update({k.replace("_", "-").lower(): v for k, v in headers.items()})
        return cls(status=status, headers=hdrs, body=json.dumps(payload).encode())

    @classmethod
    def text(cls, payload: str, status: int = 200, content_type: str = "text/plain; charset=utf-8") -> "Response":
        return cls(status=status, headers={"content-type": content_type}, body=payload.encode())

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"status": "error", "error": message}, status=status)

    def decode_json(self) -> Any:
        return json.loads(self.body.decode() or "null")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]


class Router:
    """Method+path router with ``{param}`` captures.

    Routes are matched in registration order; path parameters capture a
    single segment and are stored in ``request.path_params``.
    """

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern[str], str, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$"
        )
        self._routes.append((method.upper(), regex, pattern, handler))

    def has_route(self, method: str, pattern: str) -> bool:
        return any(
            m == method.upper() and p == pattern for m, _rx, p, _h in self._routes
        )

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def delete(self, pattern: str, handler: Handler) -> None:
        self.add("DELETE", pattern, handler)

    def dispatch(self, request: Request) -> Response:
        path_matched = False
        for method, regex, pattern, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            request.path_params = {k: urllib.parse.unquote(v) for k, v in match.groupdict().items()}
            request.matched_route = pattern
            return handler(request)
        if path_matched:
            return Response.error(405, "method not allowed")
        return Response.error(404, f"no route for {request.path}")


class App:
    """A routable HTTP application with optional basic auth and TLS.

    This is the single code path shared by the in-process transport and
    the real socket server: auth enforcement, TLS requirement, error
    mapping — and, since the self-telemetry subsystem, the uniform
    observability middleware — all live here.  Every request is
    counted (total, latency histogram by handler pattern, status code,
    in-flight gauge) and recorded as a span continuing the caller's
    ``traceparent`` trace (or rooting a new one at the edge).
    """

    def __init__(
        self,
        name: str,
        *,
        auth: BasicAuth | None = None,
        tls: TLSConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.name = name
        self.router = Router()
        self.auth = auth or BasicAuth()
        self.tls = tls or TLSConfig()
        self.tls.validate()
        self._requests_total = 0
        self._errors_total = 0
        self._in_flight = 0
        self.telemetry = telemetry or Telemetry(name)
        reg = self.telemetry.registry
        self._http_requests = reg.counter(
            "ceems_http_requests_total",
            "HTTP requests handled, by method/handler/status code.",
        )
        self._http_latency = reg.histogram(
            "ceems_http_request_duration_seconds",
            "HTTP request latency by handler pattern.",
        )
        reg.gauge_func(
            "ceems_http_requests_in_flight",
            lambda: float(self._in_flight),
            "Requests currently being handled.",
        )

    # Stats used by the exporter self-metrics and the LB bench.
    @property
    def requests_total(self) -> int:
        return self._requests_total

    @property
    def errors_total(self) -> int:
        return self._errors_total

    def handle(self, request: Request) -> Response:
        """Observability middleware around the auth/dispatch pipeline.

        Trace context resolution order: an incoming ``traceparent``
        header wins (forwarded hop), then an ambient in-process
        context (instrumented periodic activity), then a fresh trace
        (this component is the edge).  The request's header is
        rewritten to this span before dispatch, so anything the
        handler forwards — the same request object or a new one built
        with :meth:`Request.from_url` — carries this span as parent.
        """
        incoming = parse_traceparent(request.header(TRACEPARENT_HEADER))
        if incoming is None:
            incoming = current_trace()
        ctx = TraceContext(
            trace_id=incoming.trace_id if incoming else new_trace_id(),
            span_id=new_span_id(),
        )
        request.headers[TRACEPARENT_HEADER] = ctx.header_value()
        token = activate(ctx)
        self._in_flight += 1
        started = time.perf_counter()
        status = 500
        try:
            response = self._handle_inner(request)
            status = response.status
        finally:
            self._in_flight -= 1
            duration = time.perf_counter() - started
            handler = request.matched_route or "(unrouted)"
            self._http_requests.inc(
                method=request.method, handler=handler, code=str(status)
            )
            self._http_latency.observe(duration, handler=handler)
            self.telemetry.spans.record(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id,
                    parent_id=incoming.span_id if incoming else "",
                    name=f"{request.method} {handler}",
                    component=self.name,
                    start=time.time() - duration,
                    duration=duration,
                    status="ok" if status < 500 else "error",
                    attrs={"path": request.path, "status": status},
                )
            )
            if status >= 500:
                # Logged before deactivate() so the structured log
                # entry auto-correlates with this request's trace.
                self.telemetry.log.error(
                    "request failed",
                    method=request.method,
                    path=request.path,
                    status=status,
                )
            deactivate(token)
        response.headers.setdefault("x-trace-id", ctx.trace_id)
        return response

    def _handle_inner(self, request: Request) -> Response:
        self._requests_total += 1
        if self.tls.enabled and not request.secure:
            self._errors_total += 1
            return Response.error(400, "TLS required")
        try:
            request.headers.setdefault("x-auth-user", self.auth.check_header(request.header("authorization")))
        except AuthError as exc:
            self._errors_total += 1
            return Response(
                status=exc.status,
                headers={"www-authenticate": f'Basic realm="{self.name}"'},
                body=json.dumps({"status": "error", "error": str(exc)}).encode(),
            )
        try:
            response = self.router.dispatch(request)
        except AuthError as exc:
            response = Response.error(exc.status, str(exc))
        if response.status >= 400:
            self._errors_total += 1
        return response

    # -- telemetry endpoints ------------------------------------------------
    def expose_telemetry(
        self, *, metrics: bool = True, traces: bool = True, prof: bool = True
    ) -> None:
        """Mount ``/metrics``, ``/debug/traces`` and ``/debug/prof``.

        Call *before* registering catch-all routes (the router matches
        in registration order).  The exporter mounts only the trace
        endpoint and merges telemetry families into its own scrape
        payload instead.  ``/debug/prof`` serves (and can toggle) the
        process-wide phase profiler of :mod:`repro.obs.prof`.
        """
        if metrics and not self.router.has_route("GET", "/metrics"):
            self.router.get("/metrics", self._serve_metrics)
        if traces and not self.router.has_route("GET", "/debug/traces"):
            self.router.get("/debug/traces", self._serve_traces)
        if prof and not self.router.has_route("GET", "/debug/prof"):
            self.router.get("/debug/prof", self._serve_prof)

    def _serve_metrics(self, request: Request) -> Response:
        return Response.text(
            self.telemetry.render(), content_type=EXPOSITION_CONTENT_TYPE
        )

    def _serve_traces(self, request: Request) -> Response:
        trace_id = request.param("trace_id")
        try:
            limit = int(request.param("limit", "100"))
        except ValueError:
            return Response.error(400, "limit must be an integer")
        try:
            min_ms = float(request.param("min_ms", "0"))
        except ValueError:
            return Response.error(400, "min_ms must be a number")
        store = self.telemetry.spans
        if trace_id:
            spans = store.for_trace(trace_id)
        else:
            spans = store.spans()
        if min_ms > 0:
            # Slow-span filter: the exemplar drill-down's "show me
            # only the expensive part of this trace" knob.
            spans = [s for s in spans if s.duration * 1000.0 >= min_ms]
        if not trace_id:
            spans = spans[-limit:]
        return Response.json(
            {
                "status": "success",
                "component": self.name,
                "total_recorded": store.total_recorded,
                "spans": [s.to_dict() for s in spans],
            }
        )

    def _serve_prof(self, request: Request) -> Response:
        """The process-wide flat profile; ``?enable=1/0`` toggles it,
        ``?reset=1`` clears accumulated phases."""
        from repro.obs.prof import PROFILER

        enable = request.param("enable")
        if enable is not None:
            PROFILER.enabled = enable not in ("0", "false", "off")
        if request.param("reset") in ("1", "true"):
            PROFILER.reset()
        return Response.json(
            {
                "status": "success",
                "enabled": PROFILER.enabled,
                "profile": PROFILER.snapshot(),
            }
        )

    # Convenience client methods for in-process calls.
    def get(self, url: str, **kwargs: Any) -> Response:
        return self.handle(Request.from_url("GET", url, **kwargs))

    def post(self, url: str, **kwargs: Any) -> Response:
        return self.handle(Request.from_url("POST", url, **kwargs))


class _AppHTTPHandler(BaseHTTPRequestHandler):
    """Adapter from the stdlib HTTP server onto an :class:`App`."""

    app: App  # injected by serve_threading

    def _serve(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        request = Request.from_url(
            self.command,
            self.path,
            headers={k: v for k, v in self.headers.items()},
            body=body,
        )
        response = self.app.handle(request)
        self.send_response(response.status)
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    do_GET = do_POST = do_DELETE = do_PUT = _serve

    def log_message(self, fmt: str, *args: Any) -> None:  # silence
        pass


@dataclass
class RunningServer:
    """Handle for a live socket server started by :func:`serve_threading`."""

    server: ThreadingHTTPServer
    thread: threading.Thread

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


def serve_threading(app: App, port: int = 0) -> RunningServer:
    """Mount ``app`` on a real threaded HTTP server (ephemeral port)."""
    handler = type("Handler", (_AppHTTPHandler,), {"app": app})
    server = ThreadingHTTPServer(("127.0.0.1", port), handler)
    thread = threading.Thread(target=server.serve_forever, name=f"http-{app.name}", daemon=True)
    thread.start()
    return RunningServer(server=server, thread=thread)


def http_get(url: str, headers: dict[str, str] | None = None, timeout: float = 5.0) -> tuple[int, bytes]:
    """Tiny urllib GET helper for integration tests (no external deps)."""
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def iter_chunks(data: bytes, size: int) -> Iterator[bytes]:
    """Yield ``data`` in ``size``-byte chunks (backup streaming helper)."""
    for i in range(0, len(data), size):
        yield data[i : i + size]
