"""Physical-unit helpers: energy, power, and emission quantities.

The stack moves between several unit systems — RAPL counters count
microjoules, IPMI reports watts, dashboards show kWh and grams of CO2e.
These small value types make the conversions explicit and keep unit
mistakes out of the estimation pipeline.

Both :class:`Energy` and :class:`Power` are immutable value objects
that support arithmetic within their own type plus the physically
meaningful cross-type operations (energy / time = power, power * time
= energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

#: Seconds per hour, used in kWh conversions.
SECONDS_PER_HOUR = 3600.0
#: Joules in one kilowatt-hour.
JOULES_PER_KWH = 3.6e6

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class Energy:
    """An amount of energy, stored internally in joules."""

    joules: float

    # -- constructors -------------------------------------------------
    @classmethod
    def from_microjoules(cls, uj: Number) -> "Energy":
        """Build from a RAPL-style microjoule count."""
        return cls(float(uj) * 1e-6)

    @classmethod
    def from_kwh(cls, kwh: Number) -> "Energy":
        """Build from kilowatt-hours (dashboard / billing unit)."""
        return cls(float(kwh) * JOULES_PER_KWH)

    @classmethod
    def zero(cls) -> "Energy":
        return cls(0.0)

    # -- conversions ---------------------------------------------------
    @property
    def microjoules(self) -> float:
        return self.joules * 1e6

    @property
    def kwh(self) -> float:
        return self.joules / JOULES_PER_KWH

    @property
    def wh(self) -> float:
        return self.joules / SECONDS_PER_HOUR

    def emissions(self, factor_g_per_kwh: Number) -> float:
        """Equivalent emissions in grams of CO2e for a given factor.

        ``factor_g_per_kwh`` is the emission factor in gCO2e/kWh, the
        unit used by OWID, RTE and Electricity Maps alike.
        """
        return self.kwh * float(factor_g_per_kwh)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        return Energy(self.joules + other.joules)

    def __sub__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        return Energy(self.joules - other.joules)

    def __mul__(self, scalar: Number) -> "Energy":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return Energy(self.joules * scalar)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Energy", Number]) -> Union[float, "Energy"]:
        if isinstance(other, Energy):
            return self.joules / other.joules
        if isinstance(other, (int, float)):
            return Energy(self.joules / other)
        return NotImplemented

    def over(self, seconds: Number) -> "Power":
        """Average power when this energy is spent over ``seconds``."""
        return Power(self.joules / float(seconds))

    def __lt__(self, other: "Energy") -> bool:
        return self.joules < other.joules

    def __le__(self, other: "Energy") -> bool:
        return self.joules <= other.joules

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_energy(self.joules)


@dataclass(frozen=True, slots=True)
class Power:
    """An instantaneous power draw, stored internally in watts."""

    watts: float

    @classmethod
    def from_milliwatts(cls, mw: Number) -> "Power":
        return cls(float(mw) * 1e-3)

    @classmethod
    def zero(cls) -> "Power":
        return cls(0.0)

    @property
    def milliwatts(self) -> float:
        return self.watts * 1e3

    @property
    def kilowatts(self) -> float:
        return self.watts * 1e-3

    def times(self, seconds: Number) -> Energy:
        """Energy consumed sustaining this power for ``seconds``."""
        return Energy(self.watts * float(seconds))

    def __add__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        return Power(self.watts + other.watts)

    def __sub__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        return Power(self.watts - other.watts)

    def __mul__(self, scalar: Number) -> "Power":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return Power(self.watts * scalar)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Power", Number]) -> Union[float, "Power"]:
        if isinstance(other, Power):
            return self.watts / other.watts
        if isinstance(other, (int, float)):
            return Power(self.watts / other)
        return NotImplemented

    def __lt__(self, other: "Power") -> bool:
        return self.watts < other.watts

    def __le__(self, other: "Power") -> bool:
        return self.watts <= other.watts

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_power(self.watts)


def format_energy(joules: float) -> str:
    """Human-readable energy string, matching Grafana's unit scaling.

    >>> format_energy(1500.0)
    '1.50 kJ'
    >>> format_energy(7.2e6)
    '2.00 kWh'
    """
    if not math.isfinite(joules):
        return str(joules)
    absval = abs(joules)
    if absval >= JOULES_PER_KWH:
        return f"{joules / JOULES_PER_KWH:.2f} kWh"
    if absval >= 1e6:
        return f"{joules / 1e6:.2f} MJ"
    if absval >= 1e3:
        return f"{joules / 1e3:.2f} kJ"
    return f"{joules:.2f} J"


def format_power(watts: float) -> str:
    """Human-readable power string.

    >>> format_power(1234.0)
    '1.23 kW'
    """
    if not math.isfinite(watts):
        return str(watts)
    absval = abs(watts)
    if absval >= 1e6:
        return f"{watts / 1e6:.2f} MW"
    if absval >= 1e3:
        return f"{watts / 1e3:.2f} kW"
    if absval < 1.0 and absval > 0:
        return f"{watts * 1e3:.2f} mW"
    return f"{watts:.2f} W"


def format_co2(grams: float) -> str:
    """Human-readable CO2e mass string.

    >>> format_co2(2500.0)
    '2.50 kgCO2e'
    """
    if not math.isfinite(grams):
        return str(grams)
    absval = abs(grams)
    if absval >= 1e6:
        return f"{grams / 1e6:.2f} tCO2e"
    if absval >= 1e3:
        return f"{grams / 1e3:.2f} kgCO2e"
    return f"{grams:.2f} gCO2e"


def format_bytes(n: float) -> str:
    """IEC byte formatting used by the memory panels.

    >>> format_bytes(2 * 1024 * 1024)
    '2.00 MiB'
    """
    absval = abs(n)
    for unit, threshold in (
        ("TiB", 1024**4),
        ("GiB", 1024**3),
        ("MiB", 1024**2),
        ("KiB", 1024),
    ):
        if absval >= threshold:
            return f"{n / threshold:.2f} {unit}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Compact duration string (``1d2h3m4s`` style, like Prometheus).

    >>> format_duration(93784)
    '1d2h3m4s'
    >>> format_duration(45.0)
    '45s'
    """
    seconds = int(round(seconds))
    if seconds == 0:
        return "0s"
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    parts = []
    for label, size in (("d", 86400), ("h", 3600), ("m", 60), ("s", 1)):
        qty, seconds = divmod(seconds, size)
        if qty:
            parts.append(f"{qty}{label}")
    return sign + "".join(parts)


def parse_duration(text: str) -> float:
    """Parse a Prometheus-style duration (``5m``, ``1h30m``, ``90s``…).

    Returns seconds.  Raises ``ValueError`` on malformed input.

    >>> parse_duration("1h30m")
    5400.0
    """
    units = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0, "y": 31536000.0}
    text = text.strip()
    if not text:
        raise ValueError("empty duration")
    total = 0.0
    i = 0
    matched = False
    while i < len(text):
        j = i
        while j < len(text) and (text[j].isdigit() or text[j] == "."):
            j += 1
        if j == i:
            raise ValueError(f"bad duration {text!r}")
        value = float(text[i:j])
        # Longest-match the unit suffix ("ms" before "m").
        for unit in ("ms", "w", "d", "h", "m", "s", "y"):
            if text.startswith(unit, j):
                total += value * units[unit]
                i = j + len(unit)
                matched = True
                break
        else:
            raise ValueError(f"bad duration unit in {text!r}")
    if not matched:
        raise ValueError(f"bad duration {text!r}")
    return total
