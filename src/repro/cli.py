"""Command-line interface: ``python -m repro <command>``.

Commands:

``simulate``
    Build a deployment (small or Jean-Zay topology), run N hours of
    cluster life and print the operator report (stats, top consumers,
    per-class power).
``serve``
    Run a simulation, then expose the three HTTP services (Prometheus
    API via the LB, the CEEMS API server, one exporter) on real local
    ports until interrupted — for poking at the stack with curl.
``dashboards``
    Export the Grafana dashboard provisioning bundle as JSON.
``validate-config``
    Parse and validate a stack YAML configuration file.
``persist-info``
    Inspect a ``--persist-dir`` directory: WAL replay outcome, block
    inventory, chunk compression — proof a killed run lost nothing
    beyond the unflushed tail.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import StackSimulation, jean_zay_topology, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.config import StackConfig
from repro.common.errors import ConfigError
from repro.common.units import format_co2, format_energy


def _build_sim(args: argparse.Namespace) -> StackSimulation:
    if args.topology == "jean-zay":
        topology = jean_zay_topology(scale=args.scale)
    else:
        topology = small_topology(cpu_nodes=3, gpu_nodes=1)
    return StackSimulation(
        topology,
        SimulationConfig(
            seed=args.seed,
            update_interval=600.0,
            persist_dir=getattr(args, "persist_dir", ""),
            slow_query_ms=getattr(args, "slow_query_ms", 100.0),
            query_log=getattr(args, "query_log", ""),
            active_query_journal=getattr(args, "active_query_journal", ""),
            scrape_workers=getattr(args, "scrape_workers", 0),
            scrape_cache=not getattr(args, "no_scrape_cache", False),
            head_layout=getattr(args, "head_layout", "columnar"),
            lazy_blocks=getattr(args, "lazy_blocks", False),
            decode_cache_chunks=getattr(args, "decode_cache_chunks", 0),
            alert_interval=getattr(args, "alert_interval", 60.0),
            probe_interval=getattr(args, "probe_interval", 60.0),
            notify_log=getattr(args, "notify_log", ""),
            governor=getattr(args, "governor", False),
            carbon_policy=getattr(args, "carbon_policy", ""),
            carbon_threshold=getattr(args, "carbon_threshold", 75.0),
            carbon_cap_w=getattr(args, "carbon_cap_w", 0.0),
            power_cap_w=getattr(args, "power_cap_w", 0.0),
            trace_sample_rate=getattr(args, "trace_sample_rate", 1.0),
            trace_keep_slow_ms=getattr(args, "trace_keep_slow_ms", 250.0),
            exemplars_per_series=getattr(args, "exemplars_per_series", 10),
            frontend=getattr(args, "frontend", False),
            split_interval=getattr(args, "split_interval", 86400.0),
            results_cache_mb=getattr(args, "results_cache_mb", 64.0),
            max_query_range=getattr(args, "max_query_range", 0.0),
            max_query_steps=getattr(args, "max_query_steps", 0),
            max_query_length=getattr(args, "max_query_length", 8192),
        ),
    )


def _print_report(sim: StackSimulation, out) -> None:
    stats = sim.stats()
    print("deployment:", file=out)
    for key in ("nodes", "gpus", "tsdb_series", "tsdb_samples"):
        print(f"  {key}: {stats[key]:.0f}", file=out)
    print("jobs:", file=out)
    for key in ("jobs_submitted", "jobs_completed", "jobs_running"):
        print(f"  {key}: {stats[key]:.0f}", file=out)
    admin = sim.ceems_datasource("admin")
    print("top consumers:", file=out)
    for row in admin.global_usage()[:5]:
        print(
            f"  {row['user']:<10} {row['project']:<11} {row['num_units']:>4} units  "
            f"{format_energy(row['total_energy_joules']):>12}  "
            f"{format_co2(row['total_emissions_g']):>12}",
            file=out,
        )
    result = sim.engine.query("sum by (nodegroup) (ceems:node:power_watts)", at=sim.now)
    if result.vector:
        print("node power by class:", file=out)
        for el in sorted(result.vector, key=lambda e: -e.value):
            print(f"  {el.labels.get('nodegroup'):<16} {el.value / 1000:8.2f} kW", file=out)
    if sim.governor is not None:
        gov = sim.governor
        print("governor:", file=out)
        print(f"  accumulated energy: {format_energy(sum(a.joules for a in gov.accumulators.values()))}", file=out)
        print(f"  counter wraps folded: {sum(a.wraps for a in gov.accumulators.values())}", file=out)
        print(f"  cap writes: {gov.cap_writes_total}", file=out)
        print(f"  jobs deferred/released: {gov.jobs_deferred_total}/{gov.jobs_released_total}", file=out)
        print(f"  co2e avoided vs uncontrolled: {format_co2(gov.co2e_avoided_g)}", file=out)


def cmd_simulate(args: argparse.Namespace, out=sys.stdout) -> int:
    sim = _build_sim(args)
    if getattr(args, "persist_dir", ""):
        head = sim.hot_tsdb
        if head.replay_result.records:
            print(
                f"recovered {head.replayed_samples} samples from "
                f"{head.replay_result.records} WAL records"
                + (" (stopped at torn frame)" if head.replay_result.torn else "")
                + f"; resuming at t={sim.now:.0f}",
                file=out,
            )
    print(f"simulating {args.hours:.1f} h on topology '{args.topology}'...", file=out)
    sim.run(args.hours * 3600.0)
    _print_report(sim, out)
    if getattr(args, "persist_dir", ""):
        sim.hot_tsdb.close()
        print(f"state persisted under {args.persist_dir}", file=out)
    return 0


def cmd_serve(args: argparse.Namespace, out=sys.stdout) -> int:
    from repro.common.httpx import serve_threading

    sim = _build_sim(args)
    sim.run(args.hours * 3600.0)
    servers = [
        ("prometheus (via LB)", serve_threading(sim.lb.app, port=args.port or 0)),
        ("ceems api server", serve_threading(sim.api_server.app, port=0)),
        ("exporter (node 0)", serve_threading(sim.exporters[0].app, port=0)),
    ]
    for name, server in servers:
        print(f"{name}: {server.url}", file=out)
    print("press Ctrl-C to stop", file=out)
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        for _name, server in servers:
            server.close()
    return 0


def cmd_dashboards(args: argparse.Namespace, out=sys.stdout) -> int:
    from repro.dashboard.grafana_json import export_provisioning_bundle

    bundle = export_provisioning_bundle()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(bundle)
        print(f"wrote {args.output}", file=out)
    else:
        print(bundle, file=out)
    return 0


#: Default location of the checked-in rules artifact (relative to the
#: repo root; ``export-rules --check`` compares against it).
DEFAULT_RULES_PATH = "etc/prometheus-rules.yml"


def generate_rules_text() -> str:
    """The canonical Prometheus rules file: Eq. (1) recording groups,
    SLO burn-rate series, the CEEMS alert pack, SLO burn alerts and
    the governor control-plane alerts."""
    from repro.energy import standard_rule_groups
    from repro.energy.export import alerting_rules_to_dict, rules_file
    from repro.governor.rules import governor_alert_rules
    from repro.obs.slo import slo_alert_group, slo_recording_group, standard_slos
    from repro.tsdb.alerts import ceems_alert_rules

    slos = standard_slos()
    slo_alerts = slo_alert_group(slos)
    return rules_file(
        standard_rule_groups() + [slo_recording_group(slos)],
        alert_groups=[
            alerting_rules_to_dict("ceems-alerts", ceems_alert_rules()),
            alerting_rules_to_dict(
                slo_alerts.name, slo_alerts.rules, interval=slo_alerts.interval
            ),
            alerting_rules_to_dict("governor-alerts", governor_alert_rules()),
        ],
    )


def cmd_export_rules(args: argparse.Namespace, out=sys.stdout) -> int:
    """Write the recording+alerting rules as a Prometheus rules file.

    The artifact the paper points to ("example recording rules … in
    the etc/prometheus folder"), generated from the executable rule
    library so it cannot drift.  ``--check`` compares the generated
    text against the checked-in file and exits 1 on drift (CI guard).
    """
    text = generate_rules_text()
    if getattr(args, "check", False):
        path = args.output or DEFAULT_RULES_PATH
        try:
            with open(path, encoding="utf-8") as fh:
                on_disk = fh.read()
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=out)
            return 1
        if on_disk != text:
            print(
                f"{path} has drifted from the rule library; "
                "regenerate with: repro export-rules --output " + path,
                file=out,
            )
            return 1
        print(f"{path} matches the rule library", file=out)
        return 0
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_persist_info(args: argparse.Namespace, out=sys.stdout) -> int:
    """Inspect a persisted storage directory without running anything.

    Opens the head (replaying its WAL) and the block store read-only,
    then prints what survived — the quickstart's proof that a killed
    simulation lost nothing beyond the unflushed tail.
    """
    import os

    from repro.thanos.store import ObjectStore
    from repro.tsdb.persist import PersistentTSDB

    hot_dir = os.path.join(args.path, "hot")
    store_dir = os.path.join(args.path, "store")
    if not os.path.isdir(hot_dir) and not os.path.isdir(store_dir):
        print(f"no persisted state under {args.path}", file=out)
        return 1
    head = PersistentTSDB(hot_dir)
    replay = head.replay_result
    print("head:", file=out)
    print(f"  wal records replayed: {replay.records}", file=out)
    print(f"  wal segments: {replay.segments}  torn: {'yes' if replay.torn else 'no'}", file=out)
    print(f"  series recovered: {head.num_series}", file=out)
    print(f"  samples recovered: {head.num_samples}", file=out)
    head.close()
    store = ObjectStore(persist_dir=store_dir)
    print("store:", file=out)
    print(f"  blocks: {len(store.blocks)}", file=out)
    for resolution in ("raw", "5m", "1h"):
        blocks = store.blocks_at(resolution)
        if blocks:
            print(
                f"  {resolution}: {len(blocks)} blocks, "
                f"{sum(b.num_samples for b in blocks)} samples, "
                f"span [{min(b.min_time for b in blocks):.0f}, "
                f"{max(b.max_time for b in blocks):.0f})",
                file=out,
            )
    from repro.tsdb.persist import list_block_ulids, read_meta

    raw_bytes = encoded_bytes = 0
    for ulid in list_block_ulids(store_dir):
        codec = read_meta(store_dir, ulid).get("codec", {})
        raw_bytes += codec.get("rawBytes", 0)
        encoded_bytes += codec.get("encodedBytes", 0)
    if encoded_bytes:
        print(
            f"  chunk bytes: {encoded_bytes} "
            f"({raw_bytes / encoded_bytes:.2f}x compression vs raw float64)",
            file=out,
        )
    return 0


def cmd_validate_config(args: argparse.Namespace, out=sys.stdout) -> int:
    try:
        config = StackConfig.load_file(args.path)
    except (ConfigError, OSError) as exc:
        print(f"invalid: {exc}", file=out)
        return 1
    print(f"ok: {args.path}", file=out)
    print(f"  exporter port {config.exporter.port}, collectors {list(config.exporter.collectors)}", file=out)
    print(f"  scrape interval {config.tsdb.scrape_interval:.0f}s, retention {config.tsdb.retention / 86400:.0f}d", file=out)
    print(f"  lb strategy {config.lb.strategy}, authz {config.lb.authz_mode}", file=out)
    print(f"  emissions zone {config.emissions.country}, providers {list(config.emissions.providers)}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", choices=("small", "jean-zay"), default="small")
        p.add_argument("--scale", type=float, default=0.01, help="Jean-Zay scale factor")
        p.add_argument("--hours", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument(
            "--persist-dir",
            default="",
            dest="persist_dir",
            help="durable storage root (WAL + blocks); reopening resumes the run",
        )
        p.add_argument(
            "--slow-query-ms",
            type=float,
            default=100.0,
            dest="slow_query_ms",
            help="slow-query log threshold in ms (0 logs every query, <0 disables)",
        )
        p.add_argument(
            "--query-log",
            default="",
            dest="query_log",
            help="JSONL file receiving slow-query log entries",
        )
        p.add_argument(
            "--active-query-journal",
            default="",
            dest="active_query_journal",
            help="base path for the crash-surviving active-query journals "
            "(one file per Prometheus backend)",
        )
        p.add_argument(
            "--scrape-workers",
            type=int,
            default=0,
            dest="scrape_workers",
            help="scrape fetch-phase worker threads (<=1 scrapes serially; "
            "results are identical for any value)",
        )
        p.add_argument(
            "--no-scrape-cache",
            action="store_true",
            dest="no_scrape_cache",
            help="disable the per-target scrape cache (reference ingest path)",
        )
        p.add_argument(
            "--head-layout",
            choices=("columnar", "list"),
            default="columnar",
            dest="head_layout",
            help="head series layout: numpy ring buffers (columnar, default) "
            "or the list-based reference implementation",
        )
        p.add_argument(
            "--lazy-blocks",
            action="store_true",
            dest="lazy_blocks",
            help="serve persisted store blocks decode-on-demand from mmap'd "
            "chunk files (query-over-chunks); needs --persist-dir",
        )
        p.add_argument(
            "--decode-cache-chunks",
            type=int,
            default=0,
            dest="decode_cache_chunks",
            help="decoded-chunk LRU capacity in chunks (0 keeps the default 4096)",
        )
        p.add_argument(
            "--alert-interval",
            type=float,
            default=60.0,
            dest="alert_interval",
            help="alerting rule evaluation cadence in seconds",
        )
        p.add_argument(
            "--probe-interval",
            type=float,
            default=60.0,
            dest="probe_interval",
            help="blackbox prober cadence in seconds (<=0 disables probing)",
        )
        p.add_argument(
            "--notify-log",
            default="",
            dest="notify_log",
            help="JSONL file receiving grouped Alertmanager notifications",
        )
        p.add_argument(
            "--governor",
            action="store_true",
            help="run the carbon-aware governor daemon (10 Hz RAPL "
            "accumulators, power capping, ceems_governor_* metrics)",
        )
        p.add_argument(
            "--carbon-policy",
            choices=("threshold", "percentile"),
            default="",
            dest="carbon_policy",
            help="carbon admission policy: defer deferrable jobs while grid "
            "intensity is above a fixed threshold or a trailing-24h percentile",
        )
        p.add_argument(
            "--carbon-threshold",
            type=float,
            default=75.0,
            dest="carbon_threshold",
            help="gCO2e/kWh cut-off for --carbon-policy threshold",
        )
        p.add_argument(
            "--carbon-cap-w",
            type=float,
            default=0.0,
            dest="carbon_cap_w",
            help="per-socket package cap (W) applied during high-carbon "
            "windows (0 = defer only)",
        )
        p.add_argument(
            "--power-cap-w",
            type=float,
            default=0.0,
            dest="power_cap_w",
            help="static per-socket package power cap in watts (0 = off)",
        )
        p.add_argument(
            "--trace-sample-rate",
            type=float,
            default=1.0,
            dest="trace_sample_rate",
            help="tail-sampling keep probability for fast, successful spans "
            "(errors and slow spans are always kept; 1.0 keeps everything)",
        )
        p.add_argument(
            "--trace-keep-slow-ms",
            type=float,
            default=250.0,
            dest="trace_keep_slow_ms",
            help="spans at least this slow (ms) are always retained by the "
            "tail sampler",
        )
        p.add_argument(
            "--exemplars-per-series",
            type=int,
            default=10,
            dest="exemplars_per_series",
            help="exemplar ring slots per series in the hot TSDB",
        )
        p.add_argument(
            "--frontend",
            action="store_true",
            help="put the query frontend (range splitting, results cache, "
            "request coalescing, worker-pool admission) between the LB "
            "and the PromQL backends",
        )
        p.add_argument(
            "--split-interval",
            type=float,
            default=86400.0,
            dest="split_interval",
            help="frontend range-splitting interval in seconds (default: 1 day)",
        )
        p.add_argument(
            "--results-cache-mb",
            type=float,
            default=64.0,
            dest="results_cache_mb",
            help="frontend results-cache budget in MiB",
        )
        p.add_argument(
            "--max-query-range",
            type=float,
            default=0.0,
            dest="max_query_range",
            help="reject range queries spanning more than this many seconds "
            "with a structured 422 (0 = unlimited)",
        )
        p.add_argument(
            "--max-query-steps",
            type=int,
            default=0,
            dest="max_query_steps",
            help="reject range queries resolving to more steps than this "
            "with a structured 422 (0 = unlimited)",
        )
        p.add_argument(
            "--max-query-length",
            type=int,
            default=8192,
            dest="max_query_length",
            help="reject queries longer than this many characters with a "
            "structured 422 (0 = unlimited)",
        )

    p_sim = sub.add_parser("simulate", help="run a deployment and print the operator report")
    add_sim_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_serve = sub.add_parser("serve", help="expose the stack over local HTTP")
    add_sim_args(p_serve)
    p_serve.add_argument("--port", type=int, default=0, help="LB port (0 = ephemeral)")
    p_serve.set_defaults(func=cmd_serve)

    p_dash = sub.add_parser("dashboards", help="export Grafana dashboard JSON")
    p_dash.add_argument("--output", default="", help="file path (default: stdout)")
    p_dash.set_defaults(func=cmd_dashboards)

    p_rules = sub.add_parser("export-rules", help="export the Prometheus rules file")
    p_rules.add_argument("--output", default="", help="file path (default: stdout)")
    p_rules.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if the file (--output or {DEFAULT_RULES_PATH}) "
        "has drifted from the rule library",
    )
    p_rules.set_defaults(func=cmd_export_rules)

    p_cfg = sub.add_parser("validate-config", help="validate a stack YAML config")
    p_cfg.add_argument("path")
    p_cfg.set_defaults(func=cmd_validate_config)

    p_info = sub.add_parser("persist-info", help="inspect a durable storage directory")
    p_info.add_argument("path")
    p_info.set_defaults(func=cmd_persist_info)

    return parser


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args, out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
