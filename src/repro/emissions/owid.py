"""OWID static emission-factor provider.

The always-available fallback of the provider chain: answers for any
zone in the embedded table, and (optionally) with the world average
for unknown zones, so the emissions pipeline never loses data — it
just degrades to a coarser factor, exactly the CEEMS design.
"""

from __future__ import annotations

from repro.common.errors import ProviderError
from repro.emissions.owid_data import OWID_FACTORS, WORLD_AVERAGE
from repro.emissions.provider import EmissionFactor, EmissionFactorProvider


class OWIDProvider(EmissionFactorProvider):
    """Static country-level factors from the OWID dataset."""

    name = "owid"
    realtime = False

    def __init__(self, *, world_fallback: bool = False) -> None:
        self.world_fallback = world_fallback

    def factor(self, zone: str, now: float) -> EmissionFactor:
        zone = zone.upper()
        value = OWID_FACTORS.get(zone)
        if value is None:
            if not self.world_fallback:
                raise ProviderError(f"OWID has no data for zone {zone!r}")
            value = WORLD_AVERAGE
        return EmissionFactor(zone=zone, value=value, provider=self.name, timestamp=now)

    def zones(self) -> list[str]:
        return sorted(OWID_FACTORS)
