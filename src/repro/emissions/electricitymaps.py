"""Electricity Maps provider: multi-zone real-time factors.

Reproduces the behavioural contract of the Electricity Maps API that
CEEMS integrates (paper §II.A.c): many zones, hourly resolution,
token authentication, and a free-tier rate limit for non-commercial
use.  Each zone's signal is a parametric perturbation around its OWID
annual average — fossil-heavy grids swing hard with daily demand,
hydro/nuclear grids barely move — so cross-provider comparisons (bench
E12) show realistic divergences.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ProviderError
from repro.emissions.owid_data import OWID_FACTORS
from repro.emissions.provider import EmissionFactor, EmissionFactorProvider

_WINDOW = 3600.0  # hourly publication grid

#: Relative diurnal swing per zone class: how much the factor moves
#: with demand.  Fossil-marginal grids swing the most.
_SWING_BY_LEVEL = ((100.0, 0.10), (250.0, 0.22), (450.0, 0.30), (float("inf"), 0.18))


class ElectricityMapsProvider(EmissionFactorProvider):
    """The Electricity Maps API facade."""

    name = "electricity_maps"
    realtime = True

    def __init__(
        self,
        token: str = "free-tier",
        seed: int = 0,
        *,
        rate_limit_per_hour: int = 0,
    ) -> None:
        if not token:
            raise ProviderError("Electricity Maps requires an API token")
        self.token = token
        self.seed = seed
        self.rate_limit_per_hour = rate_limit_per_hour
        self._calls_in_window: dict[int, int] = {}

    def factor(self, zone: str, now: float) -> EmissionFactor:
        zone = zone.upper()
        base = OWID_FACTORS.get(zone)
        if base is None:
            raise ProviderError(f"zone {zone!r} not covered by Electricity Maps")
        self._check_rate_limit(now)
        window_start = math.floor(now / _WINDOW) * _WINDOW
        return EmissionFactor(
            zone=zone,
            value=self._zone_model(zone, base, window_start),
            provider=self.name,
            timestamp=window_start,
        )

    def zones(self) -> list[str]:
        return sorted(OWID_FACTORS)

    # -- API behaviour ---------------------------------------------------
    def _check_rate_limit(self, now: float) -> None:
        if self.rate_limit_per_hour <= 0:
            return
        window = int(now // 3600)
        self._calls_in_window = {w: c for w, c in self._calls_in_window.items() if w == window}
        count = self._calls_in_window.get(window, 0)
        if count >= self.rate_limit_per_hour:
            raise ProviderError("free-tier rate limit exceeded (HTTP 429)")
        self._calls_in_window[window] = count + 1

    # -- signal model --------------------------------------------------------
    def _zone_model(self, zone: str, base: float, t: float) -> float:
        for level, swing in _SWING_BY_LEVEL:
            if base <= level:
                break
        hour = (t % 86400.0) / 3600.0
        # Demand curve: single broad daytime hump plus evening shoulder.
        demand = 0.6 * math.sin(math.pi * max(hour - 6.0, 0.0) / 17.0) + 0.4 * math.exp(
            -((hour - 19.5) ** 2) / 4.0
        )
        block = int(t // _WINDOW)
        rng = np.random.default_rng((hash(zone) & 0xFFFF) * 2_000_003 + self.seed + block)
        noise = float(rng.normal(0.0, 0.04))
        return max(base * (1.0 + swing * (demand - 0.3) + noise), 5.0)
