"""Emission-factor provider interface and registry."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.errors import ProviderError


@dataclass(frozen=True)
class EmissionFactor:
    """One emission-factor reading.

    ``value`` is in gCO2e/kWh, the unit shared by OWID, RTE and
    Electricity Maps.  ``timestamp`` is when the factor was valid;
    static providers report the request time.
    """

    zone: str
    value: float
    provider: str
    timestamp: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ProviderError(f"negative emission factor from {self.provider}: {self.value}")


class EmissionFactorProvider(abc.ABC):
    """A source of emission factors for one or more grid zones."""

    #: Registry key ("owid", "rte", "electricity_maps").
    name: str = "provider"
    #: Whether the factor varies with time.
    realtime: bool = False

    @abc.abstractmethod
    def factor(self, zone: str, now: float) -> EmissionFactor:
        """Current emission factor for ``zone`` at time ``now``.

        Raises :class:`ProviderError` for unknown zones or provider
        outage conditions.
        """

    @abc.abstractmethod
    def zones(self) -> list[str]:
        """Zones this provider can answer for."""


class ProviderRegistry:
    """Ordered set of providers with fallback resolution.

    Mirrors the CEEMS emissions collector: when the preferred
    (real-time) provider cannot answer — API down, unknown zone, rate
    limit — the next provider in order is consulted, ending with the
    static OWID table.  The answer records which provider produced it,
    so dashboards can expose data provenance.
    """

    def __init__(self) -> None:
        self._providers: list[EmissionFactorProvider] = []

    def register(self, provider: EmissionFactorProvider) -> None:
        if any(p.name == provider.name for p in self._providers):
            raise ProviderError(f"duplicate provider {provider.name!r}")
        self._providers.append(provider)

    @property
    def providers(self) -> list[EmissionFactorProvider]:
        return list(self._providers)

    def factor(self, zone: str, now: float) -> EmissionFactor:
        """Resolve a factor through the fallback chain."""
        errors: list[str] = []
        for provider in self._providers:
            try:
                return provider.factor(zone, now)
            except ProviderError as exc:
                errors.append(f"{provider.name}: {exc}")
        raise ProviderError(f"no provider could answer for zone {zone!r}: {'; '.join(errors)}")

    def all_factors(self, zone: str, now: float) -> list[EmissionFactor]:
        """Every provider's answer (for the comparison bench E12)."""
        out = []
        for provider in self._providers:
            try:
                out.append(provider.factor(zone, now))
            except ProviderError:
                continue
        return out
