"""Energy → CO2e conversion and the emissions metric collector.

Two consumers need emission factors:

* **recording rules** multiply live per-job power by the current
  factor, so the factor must exist *as a series in the TSDB* — that is
  :class:`EmissionsCollector`, a CEEMS-exporter collector publishing
  ``ceems_emissions_gCo2_kWh{country,provider}``;
* **the API server** converts each unit's aggregate energy into
  emissions at rollup time — :class:`EmissionsCalculator`, which also
  supports integrating a time-varying factor over an energy series
  (the honest way to account a job that ran across a factor swing).
"""

from __future__ import annotations

import numpy as np

from repro.common.httpx import App, Request, Response
from repro.common.units import JOULES_PER_KWH
from repro.emissions.provider import ProviderRegistry
from repro.exporter.collector import Collector
from repro.tsdb import exposition
from repro.tsdb.exposition import MetricFamily


class EmissionsCollector(Collector):
    """Exports emission factors as a metric family.

    One sample per (zone, provider) pair that can currently answer,
    plus the resolved fallback-chain answer labelled
    ``provider="resolved"`` — what the recording rules consume.
    """

    name = "emissions"

    def __init__(self, registry: ProviderRegistry, zone: str) -> None:
        self.registry = registry
        self.zone = zone

    def collect(self, now: float) -> list[MetricFamily]:
        family = MetricFamily(
            "ceems_emissions_gCo2_kWh",
            help="Grid emission factor in gCO2e per kWh.",
            type="gauge",
        )
        for factor in self.registry.all_factors(self.zone, now):
            family.add(factor.value, country=factor.zone, provider=factor.provider)
        resolved = self.registry.factor(self.zone, now)
        family.add(resolved.value, country=resolved.zone, provider="resolved")
        return [family]


class EmissionsExporter:
    """A standalone scrape target exposing the emissions collector.

    CEEMS runs one emissions collector per deployment (grid factors
    are site-wide, not per-node); this app is its scrape endpoint.
    """

    def __init__(self, registry: ProviderRegistry, zone: str, clock) -> None:
        self.collector = EmissionsCollector(registry, zone)
        self.clock = clock
        self.app = App(name="ceems-emissions")
        self.app.router.get("/metrics", self._metrics)

    def _metrics(self, request: Request) -> Response:
        families = self.collector.collect(self.clock.now())
        return Response.text(
            exposition.render(families), content_type="text/plain; version=0.0.4"
        )


class EmissionsCalculator:
    """Converts energy to equivalent emissions."""

    def __init__(self, registry: ProviderRegistry, zone: str) -> None:
        self.registry = registry
        self.zone = zone

    def emissions_g(self, energy_joules: float, at: float) -> float:
        """Point conversion with the factor valid at ``at``."""
        factor = self.registry.factor(self.zone, at)
        return energy_joules / JOULES_PER_KWH * factor.value

    def integrate(self, timestamps: np.ndarray, power_watts: np.ndarray) -> float:
        """Integrate a power series against the time-varying factor.

        Trapezoidal integration of ``power × factor`` over the series;
        returns grams of CO2e.  Used for long-running units that span
        factor changes (a job running through the evening gas peak
        emits more per joule than one at solar noon).
        """
        if len(timestamps) != len(power_watts):
            raise ValueError("timestamps and power arrays must align")
        if len(timestamps) < 2:
            return 0.0
        factors = np.array(
            [self.registry.factor(self.zone, float(t)).value for t in timestamps]
        )
        rate_g_per_s = power_watts * factors / JOULES_PER_KWH  # W * g/kWh / (J/kWh) = g/s
        return float(np.trapezoid(rate_g_per_s, timestamps))
