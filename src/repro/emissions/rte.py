"""RTE éco2mix real-time emission factor for France.

RTE publishes France's CO2 intensity at 15-minute resolution.  This
provider reproduces the *shape* of that signal with a deterministic
physical mix model:

* a nuclear-dominated baseload keeps the factor low (~40–80 g/kWh);
* solar output depresses the factor around midday (more in summer);
* demand peaks (morning, evening, colder months) are served by gas
  peakers, raising the factor;
* wind output varies slowly and pseudo-randomly (hash-seeded per
  6-hour block, so the series is reproducible yet irregular).

The factor is quantised to RTE's 15-minute publication grid: two
queries inside the same window return the identical value, as against
the real API.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ProviderError
from repro.emissions.provider import EmissionFactor, EmissionFactorProvider

_WINDOW = 900.0  # 15 minutes


class RTEProvider(EmissionFactorProvider):
    """France-only real-time factors, éco2mix style."""

    name = "rte"
    realtime = True

    #: Mix-model parameters (gCO2e/kWh contributions).
    BASE = 45.0
    DEMAND_PEAK = 38.0
    SOLAR_DIP = 22.0
    WIND_SWING = 18.0
    SEASON_SWING = 20.0

    def __init__(self, seed: int = 0, *, available: bool = True) -> None:
        self.seed = seed
        #: Simulates API outage for fallback-chain tests.
        self.available = available

    def factor(self, zone: str, now: float) -> EmissionFactor:
        if zone.upper() != "FR":
            raise ProviderError(f"RTE only covers FR, not {zone!r}")
        if not self.available:
            raise ProviderError("éco2mix API unavailable")
        window_start = math.floor(now / _WINDOW) * _WINDOW
        return EmissionFactor(
            zone="FR",
            value=self._mix_model(window_start),
            provider=self.name,
            timestamp=window_start,
        )

    def zones(self) -> list[str]:
        return ["FR"]

    # -- the mix model -----------------------------------------------------
    def _mix_model(self, t: float) -> float:
        day_seconds = t % 86400.0
        hour = day_seconds / 3600.0
        day_of_year = (t / 86400.0) % 365.25

        # Seasonal demand: peaks mid-winter (electric heating).
        season = math.cos(2 * math.pi * (day_of_year - 15.0) / 365.25)
        seasonal = self.SEASON_SWING * max(season, 0.0)

        # Daily demand: morning (8h) and evening (19h) peaks.
        morning = math.exp(-((hour - 8.0) ** 2) / 4.0)
        evening = math.exp(-((hour - 19.0) ** 2) / 3.0)
        demand = self.DEMAND_PEAK * (0.6 * morning + evening) / 1.6

        # Solar: midday production lowers the factor, stronger in summer.
        solar_strength = 0.5 + 0.5 * max(-season, 0.0)
        solar = -self.SOLAR_DIP * solar_strength * max(math.cos((hour - 13.0) / 5.5), 0.0) ** 2

        # Wind: slowly varying, reproducible via a per-block generator.
        block = int(t // (6 * 3600.0))
        rng = np.random.default_rng(self.seed * 1_000_003 + block)
        wind = self.WIND_SWING * (float(rng.uniform()) - 0.5)

        return max(self.BASE + seasonal + demand + solar + wind, 15.0)
