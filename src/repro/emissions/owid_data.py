"""Embedded subset of the OWID carbon-intensity dataset.

Values are annual-average grid carbon intensity in gCO2e/kWh, rounded
from the Our World In Data *Carbon intensity of electricity* series
(2023 vintage).  The real CEEMS ships this data the same way — as a
static table bundled with the binary — because OWID publishes
historical yearly data, not an API.

Zones use ISO 3166-1 alpha-2 codes, matching what RTE ("FR") and
Electricity Maps use, so the fallback chain can hand the same zone
string to any provider.
"""

from __future__ import annotations

#: zone -> gCO2e/kWh (2023 annual average)
OWID_FACTORS: dict[str, float] = {
    "FR": 56.0,  # nuclear-dominated
    "DE": 381.0,
    "GB": 238.0,
    "ES": 174.0,
    "IT": 331.0,
    "NL": 268.0,
    "BE": 167.0,
    "CH": 34.0,
    "AT": 110.0,
    "PT": 150.0,
    "PL": 633.0,
    "CZ": 415.0,
    "SE": 45.0,
    "NO": 28.0,  # hydro
    "FI": 79.0,
    "DK": 180.0,
    "IE": 282.0,
    "US": 369.0,
    "CA": 128.0,
    "BR": 98.0,
    "MX": 423.0,
    "CN": 582.0,
    "IN": 713.0,
    "JP": 462.0,
    "KR": 436.0,
    "AU": 501.0,
    "NZ": 112.0,
    "ZA": 708.0,
    "RU": 441.0,
    "SA": 557.0,
}

#: The OWID "world" average, used as the last-resort factor.
WORLD_AVERAGE = 438.0
