"""Emission-factor providers and the energy → CO2e pipeline.

Paper §II.A.c: equivalent emissions are energy × *emission factor*
(gCO2e per kWh), where the factor tracks the grid's current energy
mix.  CEEMS gathers static factors from OWID and real-time factors
from RTE (France's grid operator) and Electricity Maps.  All three
sources are reproduced here:

* :mod:`repro.emissions.owid` — the static country table (embedded
  subset of the OWID carbon-intensity dataset);
* :mod:`repro.emissions.rte` — a deterministic éco2mix model of the
  French grid (nuclear baseload, solar midday dip, winter gas peaks)
  at 15-minute resolution;
* :mod:`repro.emissions.electricitymaps` — a multi-zone API facade
  with token auth and a free-tier rate limit, backed by per-zone
  parametric mix models.

The factor providers feed both the emissions *collector* (a metric
family the TSDB scrapes, so recording rules can multiply power by the
live factor) and the API-server aggregation that turns per-unit energy
into per-unit emissions.
"""

from repro.emissions.electricitymaps import ElectricityMapsProvider
from repro.emissions.owid import OWIDProvider
from repro.emissions.pipeline import EmissionsCalculator, EmissionsCollector
from repro.emissions.provider import EmissionFactor, EmissionFactorProvider, ProviderRegistry
from repro.emissions.rte import RTEProvider

__all__ = [
    "EmissionFactor",
    "EmissionFactorProvider",
    "ProviderRegistry",
    "OWIDProvider",
    "RTEProvider",
    "ElectricityMapsProvider",
    "EmissionsCalculator",
    "EmissionsCollector",
]
