"""CEEMS reproduction — Compute Energy & Emissions Monitoring Stack.

A from-scratch Python reproduction of the CEEMS monitoring stack
(Paipuri, SC 2024): a resource-manager-agnostic system that attributes
node-level energy consumption (RAPL + IPMI-DCMI) to individual compute
workloads (SLURM jobs, OpenStack VMs, Kubernetes pods) and converts
energy to equivalent CO2 emissions using static and real-time emission
factors.

Every substrate the original Go implementation relies on — cgroup
pseudo-filesystems, RAPL counters, BMC/IPMI power readings, GPU
telemetry, resource managers, a Prometheus-style TSDB with a PromQL
subset and recording rules, and a Thanos-style long-term store — is
implemented here as a deterministic simulation, so the full stack runs
on a laptop with no hardware access.

Top-level subpackages
---------------------
``repro.hwsim``
    Simulated node hardware: power model, RAPL, IPMI-DCMI, GPUs,
    cgroupfs and procfs pseudo-filesystems.
``repro.resourcemgr``
    SLURM / OpenStack / Kubernetes resource-manager simulators plus
    workload generators.
``repro.tsdb``
    Miniature Prometheus: storage, scraping, exposition format, a
    PromQL subset, and recording rules.
``repro.thanos``
    Long-term storage: block upload, compaction, downsampling and a
    store gateway.
``repro.exporter``
    The CEEMS exporter (per-node collectors + HTTP endpoint) and the
    companion DCGM / AMD-SMI GPU exporters.
``repro.apiserver``
    The CEEMS API server: unified SQLite schema, updater, aggregator,
    HTTP API, TSDB cleanup, backups.
``repro.lb``
    The CEEMS load balancer: query introspection, ownership checks and
    round-robin / least-connection balancing.
``repro.energy``
    The recording-rule library implementing the paper's Eq. (1) and its
    per-node-group variants.
``repro.emissions``
    Emission-factor providers (OWID static, RTE, Electricity Maps) and
    the energy → CO2e pipeline.
``repro.dashboard``
    Grafana-like data sources and panels regenerating the data behind
    the paper's Fig. 2.
``repro.cluster``
    Deterministic cluster simulation harness, including the Jean-Zay
    topology used for the scale experiments.
"""

from repro.common.clock import SimClock
from repro.common.units import Energy, Power

__version__ = "1.0.0"

__all__ = ["SimClock", "Energy", "Power", "__version__"]
