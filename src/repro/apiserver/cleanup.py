"""TSDB cardinality cleanup.

Paper Fig. 1 discussion: *"It is possible to configure the CEEMS API
server to clean up TSDB by removing metrics of workloads that did not
last more than the configured cutoff time.  This helps in reducing
the cardinality of metrics."*

Every ``uuid``-labelled series of a finished unit shorter than the
cutoff is deleted from the hot TSDB (and optionally the long-term
store).  The unit's *accounting record stays in SQLite* — only its
time series vanish, which is the design's entire point: short jobs
dominate series counts but carry negligible dashboard value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apiserver.db import Database
from repro.tsdb.http import delete_series_matchers
from repro.tsdb.storage import TSDB


@dataclass
class CleanupStats:
    runs: int = 0
    units_cleaned: int = 0
    series_deleted: int = 0
    cleaned_uuids: set[str] = field(default_factory=set)


class CardinalityCleaner:
    """Deletes TSDB series of short-lived finished units."""

    def __init__(
        self,
        db: Database,
        tsdbs: list[TSDB],
        cutoff: float,
    ) -> None:
        self.db = db
        self.tsdbs = tsdbs
        self.cutoff = cutoff
        self.stats = CleanupStats()

    def run(self, now: float) -> CleanupStats:
        if self.cutoff <= 0:
            return self.stats
        self.stats.runs += 1
        for row in self.db.short_lived_finished_units(self.cutoff):
            uuid = row["uuid"]
            if uuid in self.stats.cleaned_uuids:
                continue
            deleted = 0
            for tsdb in self.tsdbs:
                deleted += tsdb.delete_series(delete_series_matchers(uuid))
            self.stats.cleaned_uuids.add(uuid)
            if deleted:
                self.stats.units_cleaned += 1
                self.stats.series_deleted += deleted
        return self.stats
