"""The CEEMS API server's HTTP API.

Endpoints mirror the documented CEEMS API (ref. [18] of the paper):

* ``GET /api/v1/units`` — compute units, filterable by cluster /
  project / state / time range.  Regular users only see their own
  units (identity from the ``X-Grafana-User`` header, the same
  mechanism §II.B.c describes); admin users may pass ``user=`` to see
  anyone's.
* ``GET /api/v1/units/{uuid}`` — one unit.
* ``GET /api/v1/usage/current`` — the caller's rollups.
* ``GET /api/v1/usage/global`` — all rollups (admin only).
* ``GET /api/v1/users/{user}/usage`` / ``/api/v1/projects/{project}/usage``.
* ``GET /api/v1/verify`` — ownership check (``uuid`` + user header):
  the endpoint the CEEMS LB calls in ``api`` authz mode.
* ``GET /api/v1/clusters`` — known clusters.
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.apiserver.db import Database
from repro.common.auth import BasicAuth, TLSConfig
from repro.common.errors import NotFoundError
from repro.common.httpx import App, Request, Response

USER_HEADER = "x-grafana-user"


def _unit_to_json(row: sqlite3.Row) -> dict[str, Any]:
    d = dict(row)
    d["nodelist"] = d["nodelist"].split(",") if d["nodelist"] else []
    return d


class APIServer:
    """HTTP facade over the API server's database."""

    def __init__(
        self,
        db: Database,
        *,
        admin_users: tuple[str, ...] = ("admin",),
        auth: BasicAuth | None = None,
        tls: TLSConfig | None = None,
    ) -> None:
        self.db = db
        self.admin_users = set(admin_users)
        self.app = App(name="ceems-api-server", auth=auth, tls=tls)
        self.app.expose_telemetry()
        r = self.app.router
        r.get("/api/v1/units", self._units)
        r.get("/api/v1/units/{uuid}", self._unit)
        r.get("/api/v1/usage/current", self._usage_current)
        r.get("/api/v1/usage/global", self._usage_global)
        r.get("/api/v1/users/{user}/usage", self._user_usage)
        r.get("/api/v1/projects/{project}/usage", self._project_usage)
        r.get("/api/v1/verify", self._verify)
        r.get("/api/v1/clusters", self._clusters)
        r.get("/api/v1/projects", self._projects)
        r.get("/-/healthy", lambda _req: Response.text("ok"))

    # -- identity ------------------------------------------------------------
    def _identity(self, request: Request) -> str:
        return request.header(USER_HEADER, "") or ""

    def _is_admin(self, user: str) -> bool:
        return user in self.admin_users

    # -- handlers ---------------------------------------------------------------
    def _units(self, request: Request) -> Response:
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        requested_user = request.param("user")
        if requested_user and requested_user != caller and not self._is_admin(caller):
            return Response.error(403, "only admins may query other users' units")
        if requested_user:
            user_filter: str | None = requested_user
        elif self._is_admin(caller) and request.param("all") == "true":
            user_filter = None
        else:
            user_filter = caller
        try:
            started_after = float(request.param("from")) if request.param("from") else None
            started_before = float(request.param("to")) if request.param("to") else None
            limit = int(request.param("limit", "1000"))
            offset = int(request.param("offset", "0"))
        except ValueError:
            return Response.error(400, "from/to/limit/offset must be numbers")
        rows = self.db.list_units(
            cluster=request.param("cluster"),
            user=user_filter,
            project=request.param("project"),
            state=request.param("state"),
            started_after=started_after,
            started_before=started_before,
            limit=limit,
            offset=offset,
        )
        return Response.json({"status": "success", "data": [_unit_to_json(r) for r in rows]})

    def _unit(self, request: Request) -> Response:
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        uuid = request.path_params["uuid"]
        cluster = request.param("cluster")
        clusters = [cluster] if cluster else self.db.clusters()
        for c in clusters:
            try:
                row = self.db.get_unit(c, uuid)
            except NotFoundError:
                continue
            if row["user"] != caller and not self._is_admin(caller):
                return Response.error(403, "not the owner of this unit")
            return Response.json({"status": "success", "data": _unit_to_json(row)})
        return Response.error(404, f"unit {uuid} not found")

    def _usage_current(self, request: Request) -> Response:
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        rows = self.db.usage_rows(cluster=request.param("cluster"), user=caller)
        return Response.json({"status": "success", "data": [vars(r) for r in rows]})

    def _usage_global(self, request: Request) -> Response:
        caller = self._identity(request)
        if not self._is_admin(caller):
            return Response.error(403, "admin only")
        rows = self.db.usage_rows(cluster=request.param("cluster"))
        return Response.json({"status": "success", "data": [vars(r) for r in rows]})

    def _user_usage(self, request: Request) -> Response:
        caller = self._identity(request)
        user = request.path_params["user"]
        if caller != user and not self._is_admin(caller):
            return Response.error(403, "cannot read another user's usage")
        rows = self.db.usage_rows(cluster=request.param("cluster"), user=user)
        return Response.json({"status": "success", "data": [vars(r) for r in rows]})

    def _project_usage(self, request: Request) -> Response:
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        project = request.path_params["project"]
        rows = self.db.usage_rows(cluster=request.param("cluster"), project=project)
        if not self._is_admin(caller):
            # Project members can see project rollups: membership =
            # the caller has at least one unit in the project.
            member_rows = self.db.list_units(user=caller, project=project, limit=1)
            if not member_rows:
                return Response.error(403, "not a member of this project")
        return Response.json({"status": "success", "data": [vars(r) for r in rows]})

    def _verify(self, request: Request) -> Response:
        """Ownership verification for the LB (api authz mode)."""
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        uuids = request.params("uuid")
        if not uuids:
            return Response.error(400, "missing uuid parameter")
        if self._is_admin(caller):
            return Response.json({"status": "success", "data": {"allowed": True}})
        for uuid in uuids:
            owner = self.db.find_unit_owner(uuid)
            if owner is None or owner[0] != caller:
                return Response.error(403, f"unit {uuid} not owned by {caller}")
        return Response.json({"status": "success", "data": {"allowed": True}})

    def _clusters(self, request: Request) -> Response:
        return Response.json({"status": "success", "data": self.db.clusters()})

    def _projects(self, request: Request) -> Response:
        caller = self._identity(request)
        if not caller:
            return Response.error(401, f"missing {USER_HEADER} header")
        projects = self.db.projects(cluster=request.param("cluster"))
        if not self._is_admin(caller):
            member_rows = self.db.list_units(user=caller, limit=1000)
            mine = {row["project"] for row in member_rows}
            projects = [p for p in projects if p in mine]
        return Response.json({"status": "success", "data": projects})
