"""SQLite access layer for the API server.

The paper's design argument (§II.D): SQLite suffices because *"there
is only one go routine that writes to DB at a configured interval"* —
a single writer (the updater) with many readers (API handlers, the
LB's direct-DB authorizer).  This layer enforces that shape: all
writes funnel through explicit transaction methods; reads are plain
queries.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.errors import NotFoundError, StorageError
from repro.resourcemgr.base import ComputeUnit, UnitState
from repro.apiserver.schema import MIGRATIONS, SCHEMA_VERSION


@dataclass
class UsageRow:
    """One user/project rollup row."""

    cluster: str
    user: str
    project: str
    num_units: int
    total_walltime: float
    total_cpu_hours: float
    total_gpu_hours: float
    total_energy_joules: float
    total_emissions_g: float


class Database:
    """The API server's SQLite database."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self.conn = sqlite3.connect(path, check_same_thread=False)
        self.conn.row_factory = sqlite3.Row
        self.conn.execute("PRAGMA journal_mode=WAL") if path != ":memory:" else None
        self.migrate()
        self.writes = 0

    # -- migrations -------------------------------------------------------
    def schema_version(self) -> int:
        try:
            row = self.conn.execute("SELECT value FROM meta WHERE key='schema_version'").fetchone()
        except sqlite3.OperationalError:
            return 0
        return int(row["value"]) if row else 0

    def migrate(self) -> None:
        current = self.schema_version()
        with self.conn:
            for version in range(current + 1, SCHEMA_VERSION + 1):
                for statement in MIGRATIONS[version]:
                    self.conn.execute(statement)
                self.conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (str(version),),
                )

    # -- unit writes (updater only) ------------------------------------------
    def upsert_units(self, units: Iterable[ComputeUnit], now: float) -> int:
        """Insert or refresh unit records from the resource manager.

        ``elapsed`` for still-running units is measured up to ``now``
        so usage rollups stay meaningful between syncs.
        """

        def elapsed(u: ComputeUnit) -> float:
            if u.started_at is None:
                return 0.0
            end = u.ended_at if u.ended_at is not None else now
            return max(end - u.started_at, 0.0)

        rows = [
            (
                u.cluster,
                u.uuid,
                u.manager,
                u.name,
                u.user,
                u.project,
                u.created_at,
                u.started_at,
                u.ended_at,
                u.state.value,
                u.cpus,
                u.memory_bytes,
                u.gpus,
                ",".join(u.nodelist),
                u.exit_code,
                elapsed(u),
                now,
            )
            for u in units
        ]
        with self.conn:
            self.conn.executemany(
                """
                INSERT INTO units (cluster, uuid, manager, name, user, project,
                                   created_at, started_at, ended_at, state, cpus,
                                   memory_bytes, gpus, nodelist, exit_code, elapsed,
                                   last_updated)
                VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)
                ON CONFLICT (cluster, uuid) DO UPDATE SET
                    started_at=excluded.started_at,
                    ended_at=excluded.ended_at,
                    state=excluded.state,
                    nodelist=excluded.nodelist,
                    exit_code=excluded.exit_code,
                    elapsed=excluded.elapsed,
                    last_updated=excluded.last_updated
                """,
                rows,
            )
        self.writes += 1
        return len(rows)

    def add_unit_usage(
        self,
        cluster: str,
        usage_by_uuid: dict[str, Any],
        now: float,
    ) -> int:
        """Accumulate window aggregates into unit totals.

        ``usage_by_uuid`` maps uuid → ``UnitUsage``; energy/emissions
        add up across windows, averages fold in weighted by samples,
        peaks take the max.
        """
        updated = 0
        with self.conn:
            for uuid, usage in usage_by_uuid.items():
                cursor = self.conn.execute(
                    """
                    UPDATE units SET
                        energy_joules = energy_joules + ?,
                        emissions_g = emissions_g + ?,
                        avg_power_watts = ?,
                        avg_cpu_usage = ?,
                        avg_memory_bytes = ?,
                        peak_memory_bytes = MAX(peak_memory_bytes, ?),
                        avg_gpu_power_watts = ?,
                        last_updated = ?
                    WHERE cluster = ? AND uuid = ?
                    """,
                    (
                        usage.energy_joules,
                        usage.emissions_g,
                        usage.avg_power_watts,
                        usage.avg_cpu_usage,
                        usage.avg_memory_bytes,
                        usage.peak_memory_bytes,
                        usage.avg_gpu_power_watts,
                        now,
                        cluster,
                        uuid,
                    ),
                )
                updated += cursor.rowcount
        self.writes += 1
        return updated

    def rebuild_usage_rollups(self, cluster: str, now: float) -> int:
        """Recompute the usage table for one cluster from units."""
        with self.conn:
            self.conn.execute("DELETE FROM usage WHERE cluster = ?", (cluster,))
            cursor = self.conn.execute(
                """
                INSERT INTO usage (cluster, user, project, num_units, total_walltime,
                                   total_cpu_hours, total_gpu_hours,
                                   total_energy_joules, total_emissions_g, last_updated)
                SELECT cluster, user, project,
                       COUNT(*),
                       COALESCE(SUM(elapsed), 0),
                       COALESCE(SUM(elapsed * cpus / 3600.0), 0),
                       COALESCE(SUM(elapsed * gpus / 3600.0), 0),
                       COALESCE(SUM(energy_joules), 0),
                       COALESCE(SUM(emissions_g), 0),
                       ?
                FROM units WHERE cluster = ?
                GROUP BY cluster, user, project
                """,
                (now, cluster),
            )
        self.writes += 1
        return cursor.rowcount

    def set_last_sync(self, cluster: str, at: float) -> None:
        with self.conn:
            self.conn.execute(
                "INSERT INTO sync_state (cluster, last_sync) VALUES (?, ?) "
                "ON CONFLICT(cluster) DO UPDATE SET last_sync=excluded.last_sync",
                (cluster, at),
            )
        self.writes += 1

    def last_sync(self, cluster: str) -> float:
        row = self.conn.execute(
            "SELECT last_sync FROM sync_state WHERE cluster = ?", (cluster,)
        ).fetchone()
        return float(row["last_sync"]) if row else 0.0

    # -- reads ------------------------------------------------------------------
    def get_unit(self, cluster: str, uuid: str) -> sqlite3.Row:
        row = self.conn.execute(
            "SELECT * FROM units WHERE cluster = ? AND uuid = ?", (cluster, uuid)
        ).fetchone()
        if row is None:
            raise NotFoundError(f"unit {uuid} not found in cluster {cluster}")
        return row

    def find_unit_owner(self, uuid: str) -> tuple[str, str] | None:
        """(user, project) of a unit, any cluster — the LB's hot path."""
        row = self.conn.execute(
            "SELECT user, project FROM units WHERE uuid = ? LIMIT 1", (uuid,)
        ).fetchone()
        return (row["user"], row["project"]) if row else None

    def list_units(
        self,
        cluster: str | None = None,
        user: str | None = None,
        project: str | None = None,
        state: str | None = None,
        started_after: float | None = None,
        started_before: float | None = None,
        limit: int = 1000,
        offset: int = 0,
    ) -> list[sqlite3.Row]:
        clauses, params = [], []
        for column, value in (
            ("cluster", cluster),
            ("user", user),
            ("project", project),
            ("state", state),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if started_after is not None:
            clauses.append("started_at >= ?")
            params.append(started_after)
        if started_before is not None:
            clauses.append("started_at <= ?")
            params.append(started_before)
        where = ("WHERE " + " AND ".join(clauses)) if clauses else ""
        params.extend([limit, offset])
        return self.conn.execute(
            f"SELECT * FROM units {where} ORDER BY created_at DESC LIMIT ? OFFSET ?",
            params,
        ).fetchall()

    def projects(self, cluster: str | None = None) -> list[str]:
        if cluster is None:
            rows = self.conn.execute("SELECT DISTINCT project FROM units ORDER BY project").fetchall()
        else:
            rows = self.conn.execute(
                "SELECT DISTINCT project FROM units WHERE cluster = ? ORDER BY project",
                (cluster,),
            ).fetchall()
        return [r["project"] for r in rows]

    def usage_rows(
        self, cluster: str | None = None, user: str | None = None, project: str | None = None
    ) -> list[UsageRow]:
        clauses, params = [], []
        for column, value in (("cluster", cluster), ("user", user), ("project", project)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = ("WHERE " + " AND ".join(clauses)) if clauses else ""
        rows = self.conn.execute(
            f"SELECT * FROM usage {where} ORDER BY total_energy_joules DESC", params
        ).fetchall()
        return [
            UsageRow(
                cluster=r["cluster"],
                user=r["user"],
                project=r["project"],
                num_units=r["num_units"],
                total_walltime=r["total_walltime"],
                total_cpu_hours=r["total_cpu_hours"],
                total_gpu_hours=r["total_gpu_hours"],
                total_energy_joules=r["total_energy_joules"],
                total_emissions_g=r["total_emissions_g"],
            )
            for r in rows
        ]

    def short_lived_finished_units(self, cutoff: float) -> list[sqlite3.Row]:
        """Finished units shorter than ``cutoff`` (cleanup candidates)."""
        terminal = tuple(s.value for s in UnitState if s.terminal)
        placeholders = ",".join("?" for _ in terminal)
        return self.conn.execute(
            f"SELECT cluster, uuid, elapsed FROM units "
            f"WHERE state IN ({placeholders}) AND elapsed < ? AND elapsed >= 0",
            (*terminal, cutoff),
        ).fetchall()

    def clusters(self) -> list[str]:
        rows = self.conn.execute("SELECT DISTINCT cluster FROM units ORDER BY cluster").fetchall()
        return [r["cluster"] for r in rows]

    def count_units(self, cluster: str | None = None) -> int:
        if cluster is None:
            return int(self.conn.execute("SELECT COUNT(*) AS n FROM units").fetchone()["n"])
        return int(
            self.conn.execute(
                "SELECT COUNT(*) AS n FROM units WHERE cluster = ?", (cluster,)
            ).fetchone()["n"]
        )

    # -- serialization (backups) -----------------------------------------------
    def serialize(self) -> bytes:
        """Full DB image (SQLite serialize API)."""
        return self.conn.serialize()

    @classmethod
    def restore(cls, image: bytes) -> "Database":
        """Rebuild a Database from a serialized image."""
        db = cls.__new__(cls)
        db.path = ":memory:"
        db.conn = sqlite3.connect(":memory:", check_same_thread=False)
        db.conn.row_factory = sqlite3.Row
        db.conn.deserialize(image)
        db.writes = 0
        db.migrate()
        return db

    def close(self) -> None:
        self.conn.close()

    def integrity_check(self) -> bool:
        row = self.conn.execute("PRAGMA integrity_check").fetchone()
        if row[0] != "ok":
            raise StorageError(f"integrity check failed: {row[0]}")
        return True
