"""The API-server updater: resource manager + TSDB → SQLite.

Paper §II.B.b / Fig. 1: *"the CEEMS API server fetches the job data
from SLURM DBD periodically and populates its own DB … At the same
time, the CEEMS API server estimates the aggregate metrics by
querying Thanos."*

Each pass over each registered resource manager:

1. pull units active since the last sync (overlapping one interval so
   late accounting updates are not missed) and upsert them;
2. run one batched :class:`~repro.energy.estimator.UnitEnergyEstimator`
   window over the same span and fold the aggregates into unit totals;
3. rebuild the user/project rollup table;
4. optionally trigger the cardinality cleanup and backups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apiserver.db import Database
from repro.energy.estimator import UnitEnergyEstimator
from repro.resourcemgr.base import ResourceManager


@dataclass
class UpdaterStats:
    passes: int = 0
    units_synced: int = 0
    units_updated: int = 0
    last_pass_duration_units: int = 0


class Updater:
    """Periodic sync from resource managers + TSDB into the DB."""

    def __init__(
        self,
        db: Database,
        estimator: UnitEnergyEstimator,
        managers: list[ResourceManager],
        *,
        interval: float = 900.0,
        cleaner=None,
        backup_manager=None,
        telemetry=None,
    ) -> None:
        self.db = db
        self.estimator = estimator
        self.managers = managers
        self.interval = interval
        self.cleaner = cleaner
        self.backup_manager = backup_manager
        self.stats = UpdaterStats()
        #: Optional :class:`repro.obs.telemetry.Telemetry`; each pass
        #: roots an ``updater.pass`` trace so the TSDB selects the
        #: estimator makes are attributable to the pass that ran them.
        self.telemetry = telemetry
        if telemetry is not None:
            self._register_metrics(telemetry.registry)

    def _register_metrics(self, registry) -> None:
        registry.gauge_func(
            "ceems_updater_passes_total",
            lambda: float(self.stats.passes),
            help="Completed updater passes.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_updater_units_synced_total",
            lambda: float(self.stats.units_synced),
            help="Units upserted from resource managers.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_updater_units_updated_total",
            lambda: float(self.stats.units_updated),
            help="Units whose usage aggregates were updated.",
            type="counter",
        )

    def run_once(self, now: float) -> UpdaterStats:
        """One full update pass at logical time ``now``."""
        if self.telemetry is not None:
            with self.telemetry.span("updater.pass", managers=len(self.managers)):
                return self._run_once(now)
        return self._run_once(now)

    def _run_once(self, now: float) -> UpdaterStats:
        for manager in self.managers:
            cluster = manager.cluster_name
            last = self.db.last_sync(cluster)
            window_start = max(last - self.interval, 0.0) if last else max(now - 2 * self.interval, 0.0)
            units = manager.list_units(window_start, now)
            self.stats.units_synced += self.db.upsert_units(units, now)
            # Energy/emissions accumulate across passes, so their
            # window must tile exactly: integrate [last, now], never
            # re-integrating the overlap used for the unit sync above.
            usage = self.estimator.usage_window(last if last else window_start, now)
            self.stats.units_updated += self.db.add_unit_usage(cluster, usage, now)
            self.db.rebuild_usage_rollups(cluster, now)
            self.db.set_last_sync(cluster, now)
            self.stats.last_pass_duration_units = len(units)
        if self.cleaner is not None:
            self.cleaner.run(now)
        if self.backup_manager is not None:
            self.backup_manager.maybe_backup(now)
        self.stats.passes += 1
        if self.telemetry is not None:
            # Inside run_once's updater.pass span, so the entry carries
            # the pass's trace id.
            self.telemetry.log.info(
                "updater pass complete",
                now=now,
                managers=len(self.managers),
                units_synced=self.stats.units_synced,
                units_updated=self.stats.units_updated,
            )
        return self.stats

    def register_timer(self, clock) -> None:
        clock.every(self.interval, self.run_once)
