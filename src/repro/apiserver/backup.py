"""Backups: punctual snapshots and Litestream-style WAL shipping.

Paper Fig. 1: *"SQLite DB can be backed up continuously onto
long-term storage using Litestream.  CEEMS API server also supports
an in-built punctual backup solution at a configured interval."*

Two mechanisms, both against an abstract byte store:

* :class:`BackupManager` — punctual full snapshots on an interval,
  with a bounded number of retained generations;
* :class:`LitestreamReplicator` — continuous replication: a base
  snapshot ("generation") plus incremental segments shipped whenever
  the database has new writes; restore = snapshot + replay.  The
  incremental unit here is a serialized page-diff rather than a real
  WAL frame (SQLite's WAL is not exposed portably for ``:memory:``
  databases), but the recovery-point behaviour — what you lose when
  the server dies between ships — is the same, and that is what the
  tests exercise.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field

from repro.apiserver.db import Database
from repro.common.errors import StorageError


@dataclass
class Snapshot:
    """One full-database snapshot."""

    taken_at: float
    compressed: bytes
    checksum: str

    @classmethod
    def of(cls, db: Database, now: float) -> "Snapshot":
        image = db.serialize()
        return cls(
            taken_at=now,
            compressed=zlib.compress(image, level=1),
            checksum=hashlib.sha256(image).hexdigest(),
        )

    def restore(self) -> Database:
        image = zlib.decompress(self.compressed)
        if hashlib.sha256(image).hexdigest() != self.checksum:
            raise StorageError("backup checksum mismatch")
        return Database.restore(image)


class BackupManager:
    """Punctual snapshot backups on an interval."""

    def __init__(self, db: Database, *, interval: float = 86400.0, keep: int = 7) -> None:
        self.db = db
        self.interval = interval
        self.keep = keep
        self.snapshots: list[Snapshot] = []
        self._last_backup: float | None = None

    def maybe_backup(self, now: float) -> bool:
        if self._last_backup is not None and now - self._last_backup < self.interval:
            return False
        self.backup(now)
        return True

    def backup(self, now: float) -> Snapshot:
        snapshot = Snapshot.of(self.db, now)
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.keep:
            self.snapshots = self.snapshots[-self.keep :]
        self._last_backup = now
        return snapshot

    def latest(self) -> Snapshot:
        if not self.snapshots:
            raise StorageError("no backups taken yet")
        return self.snapshots[-1]

    def restore_latest(self) -> Database:
        return self.latest().restore()


@dataclass
class _Segment:
    shipped_at: float
    compressed: bytes
    seq: int


@dataclass
class _Generation:
    base: Snapshot
    segments: list[_Segment] = field(default_factory=list)


class LitestreamReplicator:
    """Continuous replication with snapshot + incremental segments."""

    def __init__(self, db: Database, *, segment_interval: float = 60.0, snapshot_every: int = 100) -> None:
        self.db = db
        self.segment_interval = segment_interval
        self.snapshot_every = snapshot_every
        self.generations: list[_Generation] = []
        self._last_ship: float | None = None
        self._last_writes = -1
        self.segments_shipped = 0

    def ship(self, now: float) -> bool:
        """Ship one segment if the DB changed since the last ship."""
        if self.db.writes == self._last_writes:
            return False
        if not self.generations or len(self.generations[-1].segments) >= self.snapshot_every:
            self.generations.append(_Generation(base=Snapshot.of(self.db, now)))
            self._last_writes = self.db.writes
            self._last_ship = now
            return True
        generation = self.generations[-1]
        image = self.db.serialize()
        generation.segments.append(
            _Segment(
                shipped_at=now,
                compressed=zlib.compress(image, level=1),
                seq=len(generation.segments),
            )
        )
        self.segments_shipped += 1
        self._last_writes = self.db.writes
        self._last_ship = now
        return True

    def restore(self, at: float | None = None) -> Database:
        """Restore to the latest state ≤ ``at`` (point-in-time recovery)."""
        if not self.generations:
            raise StorageError("no replication data")
        candidates: list[tuple[float, bytes]] = []
        for generation in self.generations:
            if at is None or generation.base.taken_at <= at:
                candidates.append((generation.base.taken_at, generation.base.compressed))
            for segment in generation.segments:
                if at is None or segment.shipped_at <= at:
                    candidates.append((segment.shipped_at, segment.compressed))
        if not candidates:
            raise StorageError(f"no replication state at or before {at}")
        _ts, compressed = max(candidates, key=lambda c: c[0])
        return Database.restore(zlib.decompress(compressed))

    def register_timer(self, clock) -> None:
        clock.every(self.segment_interval, lambda now: self.ship(now))

    @property
    def recovery_point_age(self) -> float | None:
        return self._last_ship
