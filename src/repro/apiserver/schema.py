"""The unified SQLite schema.

One ``units`` table holds compute units of *every* resource manager —
the abstraction-layer role the paper assigns the API server.  Rollup
tables (``usage``) hold per-user-per-project aggregates so the
year-scale queries that motivate the API server are single indexed
lookups.

Schema-version bookkeeping lives in ``meta``; migrations run
programmatically (see :class:`repro.apiserver.db.Database`), so a DB
restored from a Litestream backup of an older deployment upgrades in
place.
"""

SCHEMA_VERSION = 2

#: DDL per version step.  Version N's statements migrate N-1 → N.
MIGRATIONS: dict[int, list[str]] = {
    1: [
        """
        CREATE TABLE IF NOT EXISTS meta (
            key TEXT PRIMARY KEY,
            value TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS units (
            cluster TEXT NOT NULL,
            uuid TEXT NOT NULL,
            manager TEXT NOT NULL,
            name TEXT NOT NULL DEFAULT '',
            user TEXT NOT NULL,
            project TEXT NOT NULL,
            created_at REAL NOT NULL,
            started_at REAL,
            ended_at REAL,
            state TEXT NOT NULL,
            cpus INTEGER NOT NULL DEFAULT 0,
            memory_bytes INTEGER NOT NULL DEFAULT 0,
            gpus INTEGER NOT NULL DEFAULT 0,
            nodelist TEXT NOT NULL DEFAULT '',
            exit_code INTEGER NOT NULL DEFAULT 0,
            elapsed REAL NOT NULL DEFAULT 0,
            energy_joules REAL NOT NULL DEFAULT 0,
            emissions_g REAL NOT NULL DEFAULT 0,
            avg_power_watts REAL NOT NULL DEFAULT 0,
            avg_cpu_usage REAL NOT NULL DEFAULT 0,
            avg_memory_bytes REAL NOT NULL DEFAULT 0,
            peak_memory_bytes REAL NOT NULL DEFAULT 0,
            avg_gpu_power_watts REAL NOT NULL DEFAULT 0,
            last_updated REAL NOT NULL DEFAULT 0,
            PRIMARY KEY (cluster, uuid)
        )
        """,
        "CREATE INDEX IF NOT EXISTS idx_units_user ON units (cluster, user)",
        "CREATE INDEX IF NOT EXISTS idx_units_project ON units (cluster, project)",
        "CREATE INDEX IF NOT EXISTS idx_units_state ON units (cluster, state)",
        "CREATE INDEX IF NOT EXISTS idx_units_started ON units (started_at)",
        """
        CREATE TABLE IF NOT EXISTS usage (
            cluster TEXT NOT NULL,
            user TEXT NOT NULL,
            project TEXT NOT NULL,
            num_units INTEGER NOT NULL DEFAULT 0,
            total_walltime REAL NOT NULL DEFAULT 0,
            total_cpu_hours REAL NOT NULL DEFAULT 0,
            total_gpu_hours REAL NOT NULL DEFAULT 0,
            total_energy_joules REAL NOT NULL DEFAULT 0,
            total_emissions_g REAL NOT NULL DEFAULT 0,
            last_updated REAL NOT NULL DEFAULT 0,
            PRIMARY KEY (cluster, user, project)
        )
        """,
    ],
    2: [
        # v2: track per-unit updater bookkeeping for incremental syncs.
        """
        CREATE TABLE IF NOT EXISTS sync_state (
            cluster TEXT PRIMARY KEY,
            last_sync REAL NOT NULL DEFAULT 0
        )
        """,
        # Ownership lookups by the LB are hot; cover them.
        "CREATE INDEX IF NOT EXISTS idx_units_uuid ON units (uuid)",
    ],
}
