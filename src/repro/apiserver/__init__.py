"""The CEEMS API server.

Paper §II.B.b: Prometheus is poor at queries spanning long durations
(e.g. *"total energy usage of a given user … during the last year"*),
so CEEMS maintains an SQLite database of compute units with
**pre-aggregated** metrics, synced from two sources: the resource
manager (the unit list) and the TSDB (the units' metrics).

Components:

* :mod:`repro.apiserver.schema` / :mod:`repro.apiserver.db` — the
  unified SQLite schema (one table of compute units regardless of
  resource manager, plus user/project rollups) and its access layer;
* :mod:`repro.apiserver.updater` — the periodic sync pass;
* :mod:`repro.apiserver.api` — the HTTP API (units, usage, ownership
  verification for the LB);
* :mod:`repro.apiserver.cleanup` — TSDB cardinality cleanup of
  short-lived units;
* :mod:`repro.apiserver.backup` — punctual snapshots and the
  Litestream-style continuous WAL backup.
"""

from repro.apiserver.api import APIServer
from repro.apiserver.backup import BackupManager, LitestreamReplicator
from repro.apiserver.cleanup import CardinalityCleaner
from repro.apiserver.db import Database
from repro.apiserver.updater import Updater

__all__ = [
    "Database",
    "Updater",
    "APIServer",
    "CardinalityCleaner",
    "BackupManager",
    "LitestreamReplicator",
]
